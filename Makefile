PYTHON ?= python
export PYTHONPATH := src

.PHONY: test analyze bench bench-quick chaos heal profile service bench-service clean

test:
	$(PYTHON) -m pytest -x -q

## Static-analysis gate: fails on non-baselined error diagnostics.
analyze:
	$(PYTHON) -m repro.cli analyze examples/campus.nmsl examples/paper_internet.nmsl \
		--baseline examples/analysis-baseline.json
	$(PYTHON) -m repro.cli analyze examples/campus.nmsl examples/paper_internet.nmsl \
		--baseline examples/analysis-baseline.json --format sarif > analysis.sarif

## Full engine comparison: scan vs indexed vs incremental, all sizes.
bench:
	$(PYTHON) benchmarks/bench_consistency.py --output BENCH_consistency.json

## CI smoke: small workloads only.
bench-quick:
	$(PYTHON) benchmarks/bench_consistency.py --quick --output BENCH_consistency.json

## Fault-injected rollout campaigns across 3 fixed seeds (see docs/ROLLOUT.md).
chaos:
	$(PYTHON) benchmarks/chaos_rollout.py --output BENCH_chaos.json \
		--trace TRACE_chaos.jsonl --metrics METRICS_chaos.prom

## Self-healing demo: chaos-injected heal loop over the paper internet
## (bit-rot on one element, 10% loss) until zero drift (see docs/HEALING.md).
heal:
	$(PYTHON) -m repro.cli heal examples/paper_internet.nmsl \
		--install --rounds 8 --chaos-loss 0.1 \
		--chaos-corrupt-store romano.cs.wisc.edu:0 \
		--report text --report-file HEAL_report.json

## Daemon smoke cycle: boot nmsld --workers 2, check + diff + gated
## rollout over the socket, kill -9 a worker mid-check (must replay),
## graceful SIGTERM drain (see docs/SERVICE.md).
service:
	$(PYTHON) benchmarks/service_smoke.py

## Open-loop service load: per-class latency + shed rate on the simulated
## runtime, sustained req/s against the real daemon, worker-pool scaling
## at 1/2/4 workers and a kill -9 supervision row.
bench-service:
	$(PYTHON) benchmarks/bench_service.py --quick --output BENCH_service.json

## Where does the time go?  Per-phase/per-rule breakdown + Perfetto trace.
profile:
	$(PYTHON) -m repro.cli profile examples/campus.nmsl --engine datalog \
		--output consistency --trace TRACE_profile.json

clean:
	rm -rf .pytest_cache .benchmarks analysis.sarif BENCH_chaos.json \
		TRACE_chaos.jsonl METRICS_chaos.prom TRACE_profile.json \
		TRACE_consistency.json METRICS_consistency.prom HEAL_report.json \
		SERVICE_metrics.prom SERVICE_smoke.json
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
