PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick clean

test:
	$(PYTHON) -m pytest -x -q

## Full engine comparison: scan vs indexed vs incremental, all sizes.
bench:
	$(PYTHON) benchmarks/bench_consistency.py --output BENCH_consistency.json

## CI smoke: small workloads only.
bench-quick:
	$(PYTHON) benchmarks/bench_consistency.py --quick --output BENCH_consistency.json

clean:
	rm -rf .pytest_cache .benchmarks
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
