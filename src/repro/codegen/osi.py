"""The ``osi`` output type: an OSI-organisational-model rendering.

The OSI management architecture (paper Section 2.1) models management as
nested domains communicating through *ports*, with internal features
hidden.  This generator renders each NMSL domain as an OSI management
domain: its member elements, the ports it opens (one per exporting agent
process), and the object classes visible through each port.
"""

from __future__ import annotations

from typing import List, Optional

from repro.nmsl.actions import OutputContext, OutputRegistry
from repro.nmsl.outputs import _facts
from repro.nmsl.specs import DomainSpec

OSI_TAG = "osi"


def osi_domain_action(context: OutputContext, spec: DomainSpec) -> Optional[str]:
    facts = _facts(context)
    lines: List[str] = [f"managementDomain {spec.name} {{"]
    for subdomain in spec.subdomains:
        lines.append(f"  subDomain {subdomain};")
    for system_name in spec.systems:
        lines.append(f"  managedSystem {system_name};")
    containment = facts.transitive_containment()
    port_number = 0
    for permission in facts.permissions:
        owned = permission.grantor == f"domain:{spec.name}" or (
            permission.grantor.startswith("instance:")
            and f"domain:{spec.name}"
            in containment.get(permission.grantor, set())
        )
        if not owned:
            continue
        port_number += 1
        lines.append(f"  port p{port_number} {{")
        lines.append(f"    peerDomain {permission.grantee_domain};")
        for path in permission.variables:
            lines.append(f"    visibleObjectClass {path};")
        lines.append(f"    accessMode {permission.access.value};")
        lines.append(
            f"    minInterOperationTime {permission.frequency.min_period:g};"
        )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def register_osi_outputs(registry: OutputRegistry) -> None:
    registry.register(OSI_TAG, "domain", osi_domain_action)
