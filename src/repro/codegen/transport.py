"""Shipping generated configuration to network elements.

Paper Section 5 lists three delivery methods: via the management protocol
itself (the ideal), copying a file to the element, or electronic mail to
the element's administrator.  The protocol method is implemented live in
:mod:`repro.netsim.processes`; this module provides the other two as
spool-directory simulations plus an in-memory callback transport for
tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable


@dataclass(frozen=True)
class ShipmentRecord:
    """One delivered configuration."""

    element: str
    method: str
    destination: str
    octets: int


class Transport:
    """Interface for configuration delivery."""

    method = "abstract"

    def deliver(self, element: str, text: str) -> ShipmentRecord:
        raise NotImplementedError


def _safe_name(element: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9._-]", "_", element)
    return cleaned or "unnamed"


class FileDropTransport(Transport):
    """Write ``<spool>/<element>.conf`` — the "copied, in the form of a
    file, to the affected network element" method."""

    method = "file"

    def __init__(self, spool_dir: Path):
        self._spool = Path(spool_dir)
        self._spool.mkdir(parents=True, exist_ok=True)

    def deliver(self, element: str, text: str) -> ShipmentRecord:
        path = self._spool / f"{_safe_name(element)}.conf"
        path.write_text(text, encoding="utf-8")
        return ShipmentRecord(element, self.method, str(path), len(text))


class MailSpoolTransport(Transport):
    """Write an RFC-822-style message per element — the "sent via
    electronic mail to the administrator" method, simulated."""

    method = "mail"

    def __init__(self, spool_dir: Path, sender: str = "nmsl-compiler@noc"):
        self._spool = Path(spool_dir)
        self._spool.mkdir(parents=True, exist_ok=True)
        self._sender = sender
        self._sequence = 0

    def deliver(self, element: str, text: str) -> ShipmentRecord:
        self._sequence += 1
        recipient = f"postmaster@{element}"
        message = (
            f"From: {self._sender}\n"
            f"To: {recipient}\n"
            f"Subject: NMSL configuration update for {element}\n"
            "\n"
            f"{text}\n"
        )
        path = self._spool / f"msg-{self._sequence:04d}-{_safe_name(element)}.eml"
        path.write_text(message, encoding="utf-8")
        return ShipmentRecord(element, self.method, recipient, len(message))


class CallbackTransport(Transport):
    """Hand each configuration to a callable — used by tests and by the
    simulator glue that installs configuration into running agents."""

    method = "callback"

    def __init__(self, receiver: Callable[[str, str], None]):
        self._receiver = receiver

    def deliver(self, element: str, text: str) -> ShipmentRecord:
        self._receiver(element, text)
        return ShipmentRecord(element, self.method, "callback", len(text))
