"""Shipping generated configuration to network elements.

Paper Section 5 lists three delivery methods: via the management protocol
itself (the ideal), copying a file to the element, or electronic mail to
the element's administrator.  The protocol method is implemented live in
:mod:`repro.netsim.processes` (hardened by :mod:`repro.rollout`); this
module provides the other two as spool-directory simulations plus an
in-memory callback transport for tests.

All transports report sizes in encoded UTF-8 octets (what actually goes
on the wire or disk), the file transport writes atomically (temp file +
``os.replace``) so a crash never leaves a torn ``.conf`` on the spool,
and :class:`ReliableTransport` wraps any of them with the same
retry/backoff/acknowledgement plumbing the protocol rollout uses.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional

from repro.errors import TransportError


@dataclass(frozen=True)
class ShipmentRecord:
    """One delivered configuration."""

    element: str
    method: str
    destination: str
    octets: int
    attempts: int = 1


class Transport:
    """Interface for configuration delivery."""

    method = "abstract"

    def deliver(self, element: str, text: str) -> ShipmentRecord:
        raise NotImplementedError

    def acknowledge(self, record: ShipmentRecord, text: str) -> bool:
        """Post-delivery verification (the transport's read-back check).

        Default: trust the delivery.  Spool transports override this to
        re-read what landed on disk, mirroring the protocol path's
        fingerprint verification.
        """
        return True


def _safe_name(element: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9._-]", "_", element)
    return cleaned or "unnamed"


def _atomic_write(path: Path, data: bytes) -> None:
    """Write *data* to *path* without ever exposing a torn file."""
    temporary = path.with_name(path.name + ".tmp")
    temporary.write_bytes(data)
    os.replace(temporary, path)


class FileDropTransport(Transport):
    """Write ``<spool>/<element>.conf`` — the "copied, in the form of a
    file, to the affected network element" method."""

    method = "file"

    def __init__(self, spool_dir: Path):
        self._spool = Path(spool_dir)
        self._spool.mkdir(parents=True, exist_ok=True)

    def _path_for(self, element: str) -> Path:
        return self._spool / f"{_safe_name(element)}.conf"

    def deliver(self, element: str, text: str) -> ShipmentRecord:
        path = self._path_for(element)
        data = text.encode("utf-8")
        _atomic_write(path, data)
        return ShipmentRecord(element, self.method, str(path), len(data))

    def acknowledge(self, record: ShipmentRecord, text: str) -> bool:
        try:
            return Path(record.destination).read_bytes() == text.encode("utf-8")
        except OSError:
            return False


class MailSpoolTransport(Transport):
    """Write an RFC-822-style message per element — the "sent via
    electronic mail to the administrator" method, simulated."""

    method = "mail"

    def __init__(self, spool_dir: Path, sender: str = "nmsl-compiler@noc"):
        self._spool = Path(spool_dir)
        self._spool.mkdir(parents=True, exist_ok=True)
        self._sender = sender
        self._sequence = 0
        self._spooled: dict = {}  # element -> last spool path

    def deliver(self, element: str, text: str) -> ShipmentRecord:
        self._sequence += 1
        recipient = f"postmaster@{element}"
        message = (
            f"From: {self._sender}\n"
            f"To: {recipient}\n"
            f"Subject: NMSL configuration update for {element}\n"
            "\n"
            f"{text}\n"
        )
        path = self._spool / f"msg-{self._sequence:04d}-{_safe_name(element)}.eml"
        data = message.encode("utf-8")
        _atomic_write(path, data)
        self._spooled[element] = path
        return ShipmentRecord(element, self.method, recipient, len(data))

    def acknowledge(self, record: ShipmentRecord, text: str) -> bool:
        path = self._spooled.get(record.element)
        if path is None:
            return False
        try:
            return text in path.read_text(encoding="utf-8")
        except OSError:
            return False


class CallbackTransport(Transport):
    """Hand each configuration to a callable — used by tests and by the
    simulator glue that installs configuration into running agents."""

    method = "callback"

    def __init__(self, receiver: Callable[[str, str], None]):
        self._receiver = receiver

    def deliver(self, element: str, text: str) -> ShipmentRecord:
        self._receiver(element, text)
        return ShipmentRecord(
            element, self.method, "callback", len(text.encode("utf-8"))
        )


class ReliableTransport(Transport):
    """Retry/acknowledgement wrapper sharing the rollout's backoff policy.

    Wraps any :class:`Transport`: each shipment is delivered, then
    acknowledged (read back); failures and unacknowledged deliveries are
    retried under the :class:`~repro.rollout.retry.RetryPolicy` backoff
    schedule (deterministic jitter, same semantics as the protocol
    path).  Elements that exhaust the budget land in
    :attr:`dead_letter` and raise :class:`TransportError`.
    """

    def __init__(
        self,
        inner: Transport,
        policy=None,
        seed: int = 1989,
        sleep: Callable[[float], None] = time.sleep,
    ):
        from repro.rollout.retry import RetryPolicy

        self._inner = inner
        self._policy = policy or RetryPolicy(
            base_backoff_s=0.01, max_backoff_s=0.1
        )
        self._seed = seed
        self._sleep = sleep
        self.dead_letter: List[str] = []

    @property
    def method(self):  # type: ignore[override]
        return self._inner.method

    def deliver(self, element: str, text: str) -> ShipmentRecord:
        last_error: Optional[str] = None
        for attempt in range(1, self._policy.max_attempts + 1):
            try:
                record = self._inner.deliver(element, text)
            except (OSError, TransportError) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
            else:
                if self._inner.acknowledge(record, text):
                    return ShipmentRecord(
                        record.element,
                        record.method,
                        record.destination,
                        record.octets,
                        attempts=attempt,
                    )
                last_error = "delivery not acknowledged"
            if attempt < self._policy.max_attempts:
                self._sleep(
                    self._policy.backoff(attempt, key=element, seed=self._seed)
                )
        self.dead_letter.append(element)
        raise TransportError(
            f"delivery to {element!r} failed after "
            f"{self._policy.max_attempts} attempt(s): {last_error}"
        )

    def acknowledge(self, record: ShipmentRecord, text: str) -> bool:
        return self._inner.acknowledge(record, text)
