"""The ``acl-table`` output type: a protocol-independent access table.

One row per (grantor, grantee, variable subtree): the most portable
rendering of the permission relations, suitable for managers that are not
SNMP daemons.  Columns are tab-separated::

    grantor	grantee	variables	access	min-period-seconds
"""

from __future__ import annotations

from typing import List, Optional

from repro.nmsl.actions import OutputContext, OutputRegistry
from repro.nmsl.outputs import _facts
from repro.nmsl.specs import DomainSpec, ProcessSpec

ACL_TAG = "acl-table"

HEADER = "grantor\tgrantee\tvariables\taccess\tmin-period-seconds"


def _rows_for_grantor(context: OutputContext, grantor_prefix: str) -> List[str]:
    facts = _facts(context)
    rows = []
    for permission in facts.permissions:
        if not permission.grantor.startswith(grantor_prefix):
            continue
        rows.append(
            "\t".join(
                (
                    permission.grantor,
                    permission.grantee_domain,
                    ",".join(permission.variables),
                    permission.access.value,
                    f"{permission.frequency.min_period:g}",
                )
            )
        )
    return rows


def acl_process_action(context: OutputContext, spec: ProcessSpec) -> Optional[str]:
    if not spec.exports:
        return None
    facts = _facts(context)
    rows = []
    for instance in facts.instances_of_process(spec.name):
        rows.extend(_rows_for_grantor(context, f"instance:{instance.id}"))
    return "\n".join(rows) if rows else None


def acl_domain_action(context: OutputContext, spec: DomainSpec) -> Optional[str]:
    if not spec.exports:
        return None
    rows = _rows_for_grantor(context, f"domain:{spec.name}")
    return "\n".join(rows) if rows else None


def register_acl_outputs(registry: OutputRegistry) -> None:
    registry.register(ACL_TAG, "process", acl_process_action)
    registry.register(ACL_TAG, "domain", acl_domain_action)
