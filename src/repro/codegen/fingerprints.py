"""Per-element configuration content fingerprints.

The relational diff (:mod:`repro.consistency.impact`) needs to know which
generated configurations change byte-wise between two spec revisions —
without round-tripping through source text and parse declarations, which
paper-scale workloads never have (they build typed specifications
directly).  This module re-implements the attribution rules of
:meth:`repro.codegen.base.ConfigurationGenerator._split_per_element`
against a typed :class:`~repro.nmsl.specs.Specification`:

* ``system`` output belongs to the system itself;
* ``domain`` output is delivered to every member system;
* ``process`` output goes to each system instantiating the process;
* the ``*`` epilogue is whole-specification output and is dropped by the
  per-element split, so it is ignored here too.

Each element's chunks are joined exactly as
:meth:`~repro.codegen.base.ConfigurationGenerator.ship` joins them
(``"\\n".join(chunks) + "\\n"``) before hashing, so two revisions agree on
an element's fingerprint iff the shipped document would be byte-identical.
The *canonical order* here is systems, then domains, then processes (the
declaration-interleaved generator may order chunks differently for
multi-chunk elements); fingerprints are only ever compared against other
fingerprints from this module.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional

from repro.nmsl.actions import OutputContext, OutputRegistry


def default_fingerprint_registry() -> OutputRegistry:
    """A fresh registry with every basic configuration output installed."""
    from repro.codegen import register_all

    registry = OutputRegistry()
    register_all(registry)
    return registry


def config_fingerprints(
    specification,
    tree,
    *,
    tags: Iterable[str],
    elements: Optional[Iterable[str]] = None,
    facts=None,
    registry: Optional[OutputRegistry] = None,
) -> Dict[str, Dict[str, str]]:
    """``tag -> element -> sha256`` content fingerprints.

    *elements* scopes the computation: only configurations delivered to
    one of the named elements are generated and hashed, and a scoped
    element's fingerprint equals its unscoped one (attribution never
    depends on what else is in scope).  Pass the checker's warm *facts*
    to skip a fresh fact expansion — essential on the near-O(change)
    diff budget.
    """
    if registry is None:
        registry = default_fingerprint_registry()
    scope = None if elements is None else set(elements)
    options: Dict[str, object] = {"tree": tree, "module": None}
    if facts is not None:
        options["facts"] = facts
    context = OutputContext(specification=specification, options=options)

    fingerprints: Dict[str, Dict[str, str]] = {}
    for tag in tags:
        chunks: Dict[str, List[str]] = {}

        def deliver(element: str, text: Optional[str]) -> None:
            if text:
                chunks.setdefault(element, []).append(text)

        system_action = registry.lookup(tag, "system")
        if system_action is not None:
            for system in specification.systems.values():
                if scope is not None and system.name not in scope:
                    continue
                deliver(system.name, system_action(context, system))
        domain_action = registry.lookup(tag, "domain")
        if domain_action is not None:
            for domain in specification.domains.values():
                members = [
                    name
                    for name in domain.systems
                    if scope is None or name in scope
                ]
                if not members:
                    continue
                text = domain_action(context, domain)
                for name in members:
                    deliver(name, text)
        process_action = registry.lookup(tag, "process")
        if process_action is not None:
            for process in specification.processes.values():
                instantiators = [
                    system.name
                    for system in specification.systems.values()
                    if (scope is None or system.name in scope)
                    and any(
                        invocation.process_name == process.name
                        for invocation in system.processes
                    )
                ]
                if not instantiators:
                    continue
                text = process_action(context, process)
                for name in instantiators:
                    deliver(name, text)
        fingerprints[tag] = {
            element: hashlib.sha256(
                ("\n".join(parts) + "\n").encode("utf-8")
            ).hexdigest()
            for element, parts in chunks.items()
        }
    return fingerprints
