"""The Configuration Generator: compiler output -> shipped configurations.

Ties an :class:`~repro.nmsl.compiler.NmslCompiler` run to the transports:
generate the requested output type, split it per network element, and
deliver each element's configuration.  Supports both centralized
generation (one generator produces everything, paper's default) and
distributed generation (per-element generation, the paper's suggested
scaling refinement) — the prescriptive benchmark compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import CodegenError
from repro.nmsl.compiler import CompileResult, NmslCompiler, OutputBundle
from repro.codegen.transport import ShipmentRecord, Transport


@dataclass
class GeneratedConfig:
    """Configuration text attributed to one network element."""

    element: str
    tag: str
    text: str


class ConfigurationGenerator:
    """Generates and ships per-element configuration."""

    def __init__(self, compiler: NmslCompiler, result: CompileResult):
        self._compiler = compiler
        self._result = result

    # ------------------------------------------------------------------
    # Generation.
    # ------------------------------------------------------------------
    def generate(self, tag: str) -> List[GeneratedConfig]:
        """Centralized generation: one compiler run for all elements."""
        bundle = self._compiler.generate(tag, self._result)
        return self._split_per_element(tag, bundle)

    def generate_for_element(self, tag: str, element: str) -> GeneratedConfig:
        """Distributed generation: regenerate just one element's config.

        "If a process's configuration depends only on its own
        specification, the configuration information for that process can
        be generated from its specification alone" (Section 5).
        """
        bundle = self._compiler.generate(tag, self._result)
        for config in self._split_per_element(tag, bundle):
            if config.element == element:
                return config
        raise CodegenError(
            f"output type {tag!r} produced no configuration for {element!r}"
        )

    def _split_per_element(
        self, tag: str, bundle: OutputBundle
    ) -> List[GeneratedConfig]:
        configs: List[GeneratedConfig] = []
        specification = self._result.specification
        for unit in bundle.units:
            if not unit.text:
                continue
            if unit.decltype == "system":
                configs.append(GeneratedConfig(unit.name, tag, unit.text))
            elif unit.decltype == "domain":
                # Domain-level output is delivered to every member element.
                domain = specification.domains.get(unit.name)
                if domain is None:
                    continue
                for system_name in domain.systems:
                    configs.append(
                        GeneratedConfig(system_name, tag, unit.text)
                    )
            elif unit.decltype == "process":
                # Process-level output goes to each element instantiating it.
                for system in specification.systems.values():
                    if any(
                        invocation.process_name == unit.name
                        for invocation in system.processes
                    ):
                        configs.append(
                            GeneratedConfig(system.name, tag, unit.text)
                        )
        return configs

    # ------------------------------------------------------------------
    # Shipping.
    # ------------------------------------------------------------------
    def ship(
        self, tag: str, transport: Transport, elements: Optional[Sequence[str]] = None
    ) -> List[ShipmentRecord]:
        """Generate and deliver configuration, one shipment per element.

        Multiple chunks for the same element are concatenated so each
        element receives a single configuration document.
        """
        merged: Dict[str, List[str]] = {}
        for config in self.generate(tag):
            if elements is not None and config.element not in elements:
                continue
            merged.setdefault(config.element, []).append(config.text)
        records = []
        for element, chunks in sorted(merged.items()):
            records.append(transport.deliver(element, "\n".join(chunks) + "\n"))
        return records
