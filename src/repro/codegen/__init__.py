"""Configuration Generators — NMSL's prescriptive aspect (paper Section 5).

"A NMSL Configuration Generator takes output from the NMSL Compiler and
uses it to configure a network manager. ... a separate module that
interprets the configuration output of the compiler and performs the
implementation-specific actions necessary to install the configuration in
a network management process."

Output types registered here (Section 6.2 names actions by the output
type they generate, e.g. ``BartsSnmpd``):

* ``BartsSnmpd`` — an ``snmpd.conf``-style community/view/ACL file per
  network element (:mod:`repro.codegen.snmpd`);
* ``acl-table`` — a protocol-independent tabular ACL
  (:mod:`repro.codegen.acl`);
* ``osi`` — an OSI-organisational-model rendering: domains, ports,
  exposed objects (:mod:`repro.codegen.osi`).

Shipping (Section 5 lists three ways) lives in
:mod:`repro.codegen.transport`: the management protocol itself (see
:class:`repro.netsim.processes.ManagementRuntime` for the live version),
a file copy, or electronic mail to the element's administrator — the
latter two simulated as spool directories.
"""

from repro.codegen.base import ConfigurationGenerator, GeneratedConfig
from repro.codegen.fingerprints import (
    config_fingerprints,
    default_fingerprint_registry,
)
from repro.codegen.snmpd import SNMPD_TAG, register_snmpd_outputs
from repro.codegen.acl import ACL_TAG, register_acl_outputs
from repro.codegen.osi import OSI_TAG, register_osi_outputs
from repro.codegen.transport import (
    CallbackTransport,
    FileDropTransport,
    MailSpoolTransport,
    ShipmentRecord,
    Transport,
)


def register_all(registry) -> None:
    """Install every basic configuration output type."""
    register_snmpd_outputs(registry)
    register_acl_outputs(registry)
    register_osi_outputs(registry)


__all__ = [
    "ACL_TAG",
    "CallbackTransport",
    "ConfigurationGenerator",
    "FileDropTransport",
    "GeneratedConfig",
    "MailSpoolTransport",
    "OSI_TAG",
    "SNMPD_TAG",
    "ShipmentRecord",
    "Transport",
    "config_fingerprints",
    "default_fingerprint_registry",
    "register_acl_outputs",
    "register_all",
    "register_osi_outputs",
    "register_snmpd_outputs",
]
