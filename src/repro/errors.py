"""Exception hierarchy for the NMSL reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single except clause.  Errors that point at
a location in source text carry a :class:`SourceLocation`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in an input text: file name, 1-based line and column."""

    filename: str = "<input>"
    line: int = 1
    column: int = 1

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LocatedError(ReproError):
    """An error anchored at a position in input text."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or SourceLocation()
        self.message = message
        super().__init__(f"{self.location}: {message}")


class Asn1Error(LocatedError):
    """Error while lexing or parsing ASN.1 type notation."""


class BerError(ReproError):
    """Error while encoding or decoding BER octets."""


class MibError(ReproError):
    """Error in MIB tree construction or lookup."""


class OidError(MibError):
    """Malformed object identifier."""


class NmslSyntaxError(LocatedError):
    """Pass-1 (generalized grammar) parse error in an NMSL specification."""


class NmslSemanticError(LocatedError):
    """Pass-2 (action) semantic error in an NMSL specification."""


class ExtensionError(ReproError):
    """Malformed extension-language input."""


class ClprError(ReproError):
    """Error in the CLP(R) engine."""


class ClprSyntaxError(LocatedError, ClprError):
    """Parse error in CLP(R) program text."""


class ConstraintError(ClprError):
    """An arithmetic constraint could not be represented or solved."""


class ConsistencyError(ReproError):
    """Error while building or running a consistency check."""


class CodegenError(ReproError):
    """Error while generating or shipping configuration output."""


class TransportError(CodegenError):
    """A configuration shipment could not be delivered (after retries)."""


class SnmpError(ReproError):
    """Error in the SNMP substrate."""


class AgentDownError(SnmpError):
    """The addressed agent has crashed and is not serving requests."""


class SimulationError(ReproError):
    """Error in the discrete-event network simulator."""


class RolloutError(ReproError):
    """Error in the fault-tolerant configuration rollout layer."""


class DeliveryError(RolloutError):
    """A protocol exchange with an element failed outright."""


class DeliveryTimeout(DeliveryError):
    """A protocol exchange produced no answer within the deadline."""


class JournalError(RolloutError):
    """The rollout journal is unreadable, inconsistent, or mismatched."""


class RolloutVetoed(RolloutError):
    """A campaign was refused by its relational gate.

    Raised before any element is touched when the impact set backing a
    gated rollout contains unwaived blocking findings (an NM401
    access-widening grant, typically) — shipping would widen access
    without an explicit waiver.
    """


class CoordinatorCrash(RolloutError):
    """The coordinator process was killed mid-campaign (chaos hook).

    Raised by :class:`~repro.rollout.coordinator.RolloutCoordinator` when
    its ``crash_coordinator_after`` chaos hook fires; the durable journal
    written up to that point is what :meth:`resume` recovers from.
    """


class HealError(ReproError):
    """Error in the self-healing reconciliation layer."""


class ServiceError(ReproError):
    """Error in the ``nmsld`` management-plane service layer."""


class DeadlineExceeded(ServiceError):
    """A cooperative deadline expired while a request was being served.

    Raised by :meth:`repro.deadline.Deadline.check` — long-running
    engines (the consistency checker, the rollout coordinator, the heal
    reconciler) poll their request's deadline at safe points and abort
    with this instead of running to completion.  The service layer maps
    it to a structured 504-style response.
    """

    def __init__(self, where: str, at_s: float, now_s: float):
        self.where = where
        self.at_s = at_s
        self.now_s = now_s
        super().__init__(
            f"deadline expired in {where or 'request'}: "
            f"now={now_s:.6f}s deadline={at_s:.6f}s"
        )
