"""Semi-naive bottom-up (datalog) evaluation with provenance.

Top-down SLD resolution cannot terminate on the transitive/distributive
closure rules of the consistency model (they are left-recursive), and the
paper requires the checker to "be easy to evaluate ... and scale to support
the large networks of the future".  This module evaluates function-free
Horn rules bottom-up with semi-naive iteration, recording a justification
for every derived fact so inconsistency reports can show their *immediate
causes* (paper Section 4.2).

Rules may use numeric guard goals (``<``, ``=<``, ``>``, ``>=``, ``=:=``,
``=\\=``) evaluated on ground substitutions, and arithmetic via ``is``
with a ground right-hand side.  Negation is not supported here; the
checker expresses "reference without permission" by set difference at the
Python level (its closed-world step), or via the full SLD engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.clpr.program import Clause
from repro.clpr.terms import Num, Struct, Term, Var, indicator_of
from repro.clpr.unify import Bindings, unify_or_undo
from repro.errors import ClprError

_GUARDS = {"<", "=<", ">", ">=", "=:=", "=\\="}


@dataclass(frozen=True)
class Justification:
    """Why a fact holds: the rule that fired and the premises it used."""

    rule: Optional[Clause]  # None for base facts
    premises: Tuple[Term, ...] = ()

    def is_base(self) -> bool:
        return self.rule is None


class FactBase:
    """Derived facts with one justification each (first derivation wins).

    Facts are indexed by predicate indicator and additionally by their
    first argument, which makes the joins in :func:`forward_chain`
    near-constant time for the containment/permission relations the
    consistency checker builds.
    """

    def __init__(self):
        self._facts: Dict[Tuple[str, int], Set[Term]] = {}
        self._why: Dict[Term, Justification] = {}
        self._by_first_arg: Dict[Tuple[Tuple[str, int], Term], Set[Term]] = {}
        #: Per-rule evaluation stats filled in by :func:`forward_chain`:
        #: rule label -> {"firings": new facts derived, "seconds": time}.
        self.rule_stats: Dict[str, Dict[str, float]] = {}

    def add(self, fact: Term, why: Justification) -> bool:
        """Insert; returns True if the fact is new."""
        indicator = indicator_of(fact)
        bucket = self._facts.setdefault(indicator, set())
        if fact in bucket:
            return False
        bucket.add(fact)
        self._why[fact] = why
        if isinstance(fact, Struct) and fact.args:
            key = (indicator, fact.args[0])
            self._by_first_arg.setdefault(key, set()).add(fact)
        return True

    def facts_matching(self, goal: Term, bindings: Bindings) -> Iterable[Term]:
        """Candidate facts for *goal*, narrowed by a ground first argument."""
        indicator = indicator_of(goal)
        if isinstance(goal, Struct) and goal.args:
            first = bindings.resolve(goal.args[0])
            if _ground(first):
                # Copy: the underlying set grows while joins iterate.
                return tuple(self._by_first_arg.get((indicator, first), ()))
        return tuple(self._facts.get(indicator, ()))

    def contains(self, fact: Term) -> bool:
        return fact in self._facts.get(indicator_of(fact), ())

    def facts_for(self, indicator: Tuple[str, int]) -> FrozenSet[Term]:
        return frozenset(self._facts.get(indicator, ()))

    def all_facts(self) -> Iterable[Term]:
        for bucket in self._facts.values():
            yield from bucket

    def why(self, fact: Term) -> Justification:
        if fact not in self._why:
            raise ClprError(f"no justification recorded for {fact!r}")
        return self._why[fact]

    def explain(self, fact: Term, depth: int = 10) -> List[str]:
        """A human-readable derivation trace, root first."""
        lines: List[str] = []

        def visit(current: Term, indent: int, budget: int) -> None:
            prefix = "  " * indent
            why = self._why.get(current)
            if why is None or why.is_base():
                lines.append(f"{prefix}{current!r}  [given]")
                return
            head = why.rule.head if why.rule else current
            lines.append(f"{prefix}{current!r}  [by rule {head!r} :- ...]")
            if budget <= 0:
                lines.append(f"{prefix}  ...")
                return
            for premise in why.premises:
                visit(premise, indent + 1, budget - 1)

        visit(fact, 0, depth)
        return lines

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._facts.values())


def _ground(term: Term) -> bool:
    if isinstance(term, Var):
        return False
    if isinstance(term, Struct):
        return all(_ground(arg) for arg in term.args)
    return True


def _eval_arith(term: Term, bindings: Bindings) -> Fraction:
    term = bindings.resolve(term)
    if isinstance(term, Num):
        return term.value
    if isinstance(term, Struct) and len(term.args) == 2 and term.functor in "+-*/":
        left = _eval_arith(term.args[0], bindings)
        right = _eval_arith(term.args[1], bindings)
        if term.functor == "+":
            return left + right
        if term.functor == "-":
            return left - right
        if term.functor == "*":
            return left * right
        if right == 0:
            raise ClprError("division by zero in guard arithmetic")
        return left / right
    raise ClprError(f"cannot evaluate {term!r} as ground arithmetic")


def _check_guard(goal: Struct, bindings: Bindings) -> bool:
    left = _eval_arith(goal.args[0], bindings)
    right = _eval_arith(goal.args[1], bindings)
    return {
        "<": left < right,
        "=<": left <= right,
        ">": left > right,
        ">=": left >= right,
        "=:=": left == right,
        "=\\=": left != right,
    }[goal.functor]


def forward_chain(
    base_facts: Iterable[Term],
    rules: Sequence[Clause],
    max_rounds: int = 10_000,
) -> FactBase:
    """Compute the least fixpoint of *rules* over *base_facts*.

    Semi-naive: each round only joins rule bodies against at least one fact
    derived in the previous round.
    """
    fb = FactBase()
    delta: List[Term] = []
    for fact in base_facts:
        if not _ground(fact):
            raise ClprError(f"base fact {fact!r} is not ground")
        if fb.add(fact, Justification(None)):
            delta.append(fact)

    for clause in rules:
        if clause.is_fact():
            fact = clause.head
            if not _ground(fact):
                raise ClprError(f"rule file fact {fact!r} is not ground")
            if fb.add(fact, Justification(None)):
                delta.append(fact)

    rules = [clause for clause in rules if not clause.is_fact()]
    labels = _rule_labels(rules)
    clock = obs.current().clock
    rounds = 0
    while delta:
        rounds += 1
        if rounds > max_rounds:
            raise ClprError("forward chaining did not converge")
        delta_by_indicator: Dict[Tuple[str, int], List[Term]] = {}
        for fact in delta:
            delta_by_indicator.setdefault(indicator_of(fact), []).append(fact)
        new_delta: List[Term] = []
        for clause, label in zip(rules, labels):
            before = len(new_delta)
            started = clock.now()
            _fire_rule(clause, fb, delta_by_indicator, new_delta)
            stats = fb.rule_stats.setdefault(
                label, {"firings": 0, "seconds": 0.0}
            )
            stats["firings"] += len(new_delta) - before
            stats["seconds"] += clock.now() - started
        delta = new_delta
    return fb


def _rule_labels(rules: Sequence[Clause]) -> List[str]:
    """Stable per-clause labels: head indicator plus clause ordinal."""
    seen: Dict[Tuple[str, int], int] = {}
    labels: List[str] = []
    for clause in rules:
        name, arity = indicator_of(clause.head)
        ordinal = seen.get((name, arity), 0)
        seen[(name, arity)] = ordinal + 1
        labels.append(f"{name}/{arity}#{ordinal}")
    return labels


def _is_guard(goal: Term) -> bool:
    if isinstance(goal, Struct) and goal.functor in _GUARDS and len(goal.args) == 2:
        return True
    if isinstance(goal, Struct) and goal.functor == "is" and len(goal.args) == 2:
        return True
    return False


def _fire_rule(
    clause: Clause,
    fb: FactBase,
    delta_by_indicator: Dict[Tuple[str, int], List[Term]],
    out: List[Term],
) -> None:
    """Fire *clause* once per choice of pivot literal matched against delta.

    The pivot literal is evaluated first (against the delta only), then the
    remaining positive literals join against the full fact base via the
    first-argument index, then the guards run on the ground substitution.
    """
    positive_indices = [
        index for index, goal in enumerate(clause.body) if not _is_guard(goal)
    ]
    for pivot_position, body_index in enumerate(positive_indices):
        pivot_indicator = indicator_of(clause.body[body_index])
        delta_facts = delta_by_indicator.get(pivot_indicator)
        if not delta_facts:
            continue
        renamed = clause.fresh()
        positives = [goal for goal in renamed.body if not _is_guard(goal)]
        guards = [goal for goal in renamed.body if _is_guard(goal)]
        pivot = positives[pivot_position]
        others = positives[:pivot_position] + positives[pivot_position + 1 :]
        bindings = Bindings()
        for fact in delta_facts:
            mark = bindings.mark()
            if unify_or_undo(pivot, fact, bindings):
                _join(renamed, others, 0, guards, bindings, fb, out, [fact])
                bindings.undo_to(mark)


def _join(
    clause: Clause,
    goals: List[Term],
    position: int,
    guards: List[Term],
    bindings: Bindings,
    fb: FactBase,
    out: List[Term],
    used: List[Term],
) -> None:
    if position == len(goals):
        if not _check_guards(guards, bindings):
            return
        head = bindings.resolve(clause.head)
        if not _ground(head):
            raise ClprError(f"derived fact {head!r} is not ground (unsafe rule)")
        if fb.add(head, Justification(clause, tuple(used))):
            out.append(head)
        return
    goal = goals[position]
    for fact in fb.facts_matching(goal, bindings):
        mark = bindings.mark()
        if unify_or_undo(goal, fact, bindings):
            used.append(fact)
            _join(clause, goals, position + 1, guards, bindings, fb, out, used)
            used.pop()
            bindings.undo_to(mark)


def _check_guards(guards: List[Term], bindings: Bindings) -> bool:
    """Evaluate guard goals on a (now ground) substitution, binding ``is``."""
    for goal in guards:
        assert isinstance(goal, Struct)
        try:
            if goal.functor == "is":
                value = Num(_eval_arith(goal.args[1], bindings))
                if not unify_or_undo(goal.args[0], value, bindings):
                    return False
                continue
            if not _check_guard(goal, bindings):
                return False
        except ClprError:
            return False
    return True
