"""Clause database and a Prolog-style reader for CLP(R) programs.

Syntax accepted (a practical Prolog subset)::

    % comment
    contains(wisc, romano).                       % fact
    ancestor(X, Z) :- contains(X, Y), ancestor(Y, Z).
    ok(T) :- T >= 300, \\+ blocked(T).            % constraints + negation
    label('romano.cs.wisc.edu').                  % quoted atoms

* Variables begin with an upper-case letter or ``_``.
* Atoms begin lower-case or are single-quoted.
* Numbers are integers or decimals.
* Goal operators: ``=``, ``\\=``, ``<``, ``=<``, ``>``, ``>=``, ``=:=``,
  ``=\\=``, ``is``, ``\\+`` (negation as failure).
* Arithmetic operators in arguments: ``+ - * /`` with usual precedence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.clpr.terms import (
    Atom,
    Num,
    Struct,
    Term,
    Var,
    indicator_of,
    rename,
)
from repro.errors import ClprSyntaxError, SourceLocation

# ----------------------------------------------------------------------
# Clauses and the database.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Clause:
    """``head :- body``; a fact is a clause with an empty body."""

    head: Term
    body: Tuple[Term, ...] = ()

    @property
    def indicator(self) -> Tuple[str, int]:
        return indicator_of(self.head)

    def is_fact(self) -> bool:
        return not self.body

    def fresh(self) -> "Clause":
        """A copy with all variables consistently renamed fresh."""
        mapping: Dict[Var, Var] = {}
        head = rename(self.head, mapping)
        body = tuple(rename(goal, mapping) for goal in self.body)
        return Clause(head, body)

    def __repr__(self) -> str:
        if self.is_fact():
            return f"{self.head!r}."
        goals = ", ".join(repr(goal) for goal in self.body)
        return f"{self.head!r} :- {goals}."


class Program:
    """A database of clauses indexed by predicate indicator."""

    def __init__(self, clauses: Iterable[Clause] = ()):
        self._clauses: Dict[Tuple[str, int], List[Clause]] = {}
        for clause in clauses:
            self.add(clause)

    def add(self, clause: Clause) -> None:
        self._clauses.setdefault(clause.indicator, []).append(clause)

    def add_fact(self, fact: Term) -> None:
        self.add(Clause(fact))

    def extend(self, clauses: Iterable[Clause]) -> None:
        for clause in clauses:
            self.add(clause)

    def clauses_for(self, indicator: Tuple[str, int]) -> List[Clause]:
        return self._clauses.get(indicator, [])

    def defines(self, indicator: Tuple[str, int]) -> bool:
        return indicator in self._clauses

    def indicators(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(self._clauses)

    def __len__(self) -> int:
        return sum(len(clauses) for clauses in self._clauses.values())

    def merged_with(self, other: "Program") -> "Program":
        merged = Program()
        for clauses in self._clauses.values():
            merged.extend(clauses)
        for clauses in other._clauses.values():
            merged.extend(clauses)
        return merged


# ----------------------------------------------------------------------
# Reader.
# ----------------------------------------------------------------------

_GOAL_OPS = ("=:=", "=\\=", ">=", "=<", "\\=", "is", "=", "<", ">")
_SYMBOLS = (":-", "?-", "\\+", "=:=", "=\\=", ">=", "=<", "\\=", "=", "<", ">",
            "(", ")", ",", ".", "+", "-", "*", "/")


@dataclass
class _Token:
    kind: str  # "atom" | "var" | "num" | "sym" | "eof"
    text: str
    location: SourceLocation
    value: object = None


class _Reader:
    def __init__(self, text: str, filename: str = "<clpr>"):
        self._text = text
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1
        self._tokens: List[_Token] = []
        self._index = 0
        self._tokenize()

    # -- lexing --------------------------------------------------------
    def _loc(self) -> SourceLocation:
        return SourceLocation(self._filename, self._line, self._col)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _peek_char(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _tokenize(self) -> None:
        while True:
            while True:
                ch = self._peek_char()
                if ch and ch.isspace():
                    self._advance()
                elif ch == "%":
                    while self._peek_char() and self._peek_char() != "\n":
                        self._advance()
                else:
                    break
            location = self._loc()
            ch = self._peek_char()
            if not ch:
                self._tokens.append(_Token("eof", "", location))
                return
            if ch == "'":
                self._advance()
                chars = []
                while self._peek_char() and self._peek_char() != "'":
                    if self._peek_char() == "\\" and self._peek_char(1):
                        self._advance()  # the backslash escapes the next char
                    chars.append(self._peek_char())
                    self._advance()
                if not self._peek_char():
                    raise ClprSyntaxError("unterminated quoted atom", location)
                self._advance()
                self._tokens.append(_Token("atom", "".join(chars), location))
                continue
            if ch.isdigit() or (
                ch == "." and self._peek_char(1).isdigit()
            ):
                start = self._pos
                while self._peek_char().isdigit():
                    self._advance()
                if self._peek_char() == "." and self._peek_char(1).isdigit():
                    self._advance()
                    while self._peek_char().isdigit():
                        self._advance()
                text = self._text[start : self._pos]
                value = float(text) if "." in text else int(text)
                self._tokens.append(_Token("num", text, location, value))
                continue
            if ch.isalpha() or ch == "_":
                start = self._pos
                while self._peek_char().isalnum() or self._peek_char() == "_":
                    self._advance()
                text = self._text[start : self._pos]
                kind = "var" if (text[0].isupper() or text[0] == "_") else "atom"
                self._tokens.append(_Token(kind, text, location))
                continue
            for symbol in _SYMBOLS:
                if self._text.startswith(symbol, self._pos):
                    # "." followed by a digit was handled above; a "." that
                    # ends a clause must not be confused with a decimal.
                    self._advance(len(symbol))
                    self._tokens.append(_Token("sym", symbol, location))
                    break
            else:
                raise ClprSyntaxError(f"unexpected character {ch!r}", location)

    # -- parsing helpers ------------------------------------------------
    def _peek(self, offset: int = 0) -> _Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> _Token:
        token = self._peek()
        if token.kind != "eof":
            self._index += 1
        return token

    def _expect_sym(self, symbol: str) -> _Token:
        token = self._next()
        if token.kind != "sym" or token.text != symbol:
            raise ClprSyntaxError(
                f"expected {symbol!r}, found {token.text or 'end of input'!r}",
                token.location,
            )
        return token

    def _accept_sym(self, symbol: str) -> bool:
        token = self._peek()
        if token.kind == "sym" and token.text == symbol:
            self._next()
            return True
        return False

    def at_end(self) -> bool:
        return self._peek().kind == "eof"

    # -- grammar ---------------------------------------------------------
    def parse_program(self) -> List[Clause]:
        """Parse a sequence of clauses, each terminated by ``.``."""
        clauses = []
        while not self.at_end():
            clauses.append(self.parse_clause())
        return clauses

    def parse_clause(self) -> Clause:
        scope: Dict[str, Var] = {}
        head = self._parse_goal(scope)
        body: Tuple[Term, ...] = ()
        if self._accept_sym(":-"):
            body = tuple(self._parse_goal_list(scope))
        self._expect_sym(".")
        return Clause(head, body)

    def parse_query(self) -> List[Term]:
        """Parse a goal list, optionally prefixed ``?-`` / terminated ``.``."""
        scope: Dict[str, Var] = {}
        self._accept_sym("?-")
        goals = self._parse_goal_list(scope)
        self._accept_sym(".")
        if not self.at_end():
            token = self._peek()
            raise ClprSyntaxError(
                f"trailing input {token.text!r}", token.location
            )
        return goals

    def _parse_goal_list(self, scope: Dict[str, Var]) -> List[Term]:
        goals = [self._parse_goal(scope)]
        while self._accept_sym(","):
            goals.append(self._parse_goal(scope))
        return goals

    def _parse_goal(self, scope: Dict[str, Var]) -> Term:
        if self._accept_sym("\\+"):
            inner = self._parse_goal(scope)
            return Struct("\\+", (inner,))
        left = self._parse_expr(scope)
        token = self._peek()
        if token.kind == "sym" and token.text in _GOAL_OPS:
            self._next()
            right = self._parse_expr(scope)
            return Struct(token.text, (left, right))
        if token.kind == "atom" and token.text == "is":
            self._next()
            right = self._parse_expr(scope)
            return Struct("is", (left, right))
        return left

    # Expression precedence: additive < multiplicative < primary.
    def _parse_expr(self, scope: Dict[str, Var]) -> Term:
        left = self._parse_mul(scope)
        while True:
            token = self._peek()
            if token.kind == "sym" and token.text in ("+", "-"):
                self._next()
                right = self._parse_mul(scope)
                left = Struct(token.text, (left, right))
            else:
                return left

    def _parse_mul(self, scope: Dict[str, Var]) -> Term:
        left = self._parse_primary(scope)
        while True:
            token = self._peek()
            if token.kind == "sym" and token.text in ("*", "/"):
                self._next()
                right = self._parse_primary(scope)
                left = Struct(token.text, (left, right))
            else:
                return left

    def _parse_primary(self, scope: Dict[str, Var]) -> Term:
        token = self._next()
        if token.kind == "num":
            return Num.of(token.value)  # type: ignore[arg-type]
        if token.kind == "sym" and token.text == "-":
            inner = self._parse_primary(scope)
            if isinstance(inner, Num):
                return Num(-inner.value)
            return Struct("-", (Num.of(0), inner))
        if token.kind == "sym" and token.text == "(":
            inner = self._parse_expr(scope)
            self._expect_sym(")")
            return inner
        if token.kind == "var":
            if token.text == "_":
                return Var.fresh("_")
            if token.text not in scope:
                scope[token.text] = Var.fresh(token.text)
            return scope[token.text]
        if token.kind == "atom":
            if self._accept_sym("("):
                args = [self._parse_expr(scope)]
                while self._accept_sym(","):
                    args.append(self._parse_expr(scope))
                self._expect_sym(")")
                return Struct(token.text, tuple(args))
            return Atom(token.text)
        raise ClprSyntaxError(
            f"unexpected token {token.text or 'end of input'!r}", token.location
        )


def parse_program(text: str, filename: str = "<clpr>") -> Program:
    """Parse Prolog-style *text* into a :class:`Program`."""
    return Program(_Reader(text, filename).parse_program())


def parse_clauses(text: str, filename: str = "<clpr>") -> List[Clause]:
    return _Reader(text, filename).parse_program()


def parse_query(text: str, filename: str = "<clpr>") -> List[Term]:
    """Parse a query (goal list) such as ``?- ancestor(X, b), X \\= a.``"""
    return _Reader(text, filename).parse_query()


def parse_term(text: str, filename: str = "<clpr>") -> Term:
    """Parse a single term."""
    reader = _Reader(text, filename)
    term = reader._parse_expr({})
    reader._accept_sym(".")
    if not reader.at_end():
        token = reader._peek()
        raise ClprSyntaxError(f"trailing input {token.text!r}", token.location)
    return term
