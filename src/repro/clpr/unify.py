"""Trail-based unification.

:class:`Bindings` is a mutable variable store with an undo trail so the
solver can backtrack in O(bindings since choice point) instead of copying
substitutions.  :func:`unify` binds variables in place and records every
binding on the trail; the caller undoes to a saved mark on backtrack.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.clpr.terms import Struct, Term, Var


class Bindings:
    """A mutable substitution with an undo trail."""

    def __init__(self):
        self._map: Dict[Var, Term] = {}
        self._trail: List[Var] = []

    # ------------------------------------------------------------------
    # Core operations.
    # ------------------------------------------------------------------
    def walk(self, term: Term) -> Term:
        """Follow variable bindings until an unbound var or non-var term."""
        while isinstance(term, Var):
            bound = self._map.get(term)
            if bound is None:
                return term
            term = bound
        return term

    def bind(self, variable: Var, term: Term) -> None:
        """Bind an unbound variable, recording it on the trail."""
        self._map[variable] = term
        self._trail.append(variable)

    def mark(self) -> int:
        """A checkpoint for later :meth:`undo_to`."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Remove every binding made since *mark*."""
        while len(self._trail) > mark:
            variable = self._trail.pop()
            del self._map[variable]

    # ------------------------------------------------------------------
    # Term reconstruction.
    # ------------------------------------------------------------------
    def resolve(self, term: Term) -> Term:
        """Deep-walk *term*, substituting all bound variables."""
        term = self.walk(term)
        if isinstance(term, Struct):
            return Struct(term.functor, tuple(self.resolve(arg) for arg in term.args))
        return term

    def is_ground(self, term: Term) -> bool:
        term = self.walk(term)
        if isinstance(term, Var):
            return False
        if isinstance(term, Struct):
            return all(self.is_ground(arg) for arg in term.args)
        return True

    def snapshot(self) -> Dict[Var, Term]:
        """An immutable copy of the current mapping (fully resolved)."""
        return {variable: self.resolve(variable) for variable in self._map}

    def __len__(self) -> int:
        return len(self._map)


def occurs(variable: Var, term: Term, bindings: Bindings) -> bool:
    """Occurs check: does *variable* appear inside *term*?"""
    term = bindings.walk(term)
    if term == variable:
        return True
    if isinstance(term, Struct):
        return any(occurs(variable, arg, bindings) for arg in term.args)
    return False


def unify(
    left: Term,
    right: Term,
    bindings: Bindings,
    occurs_check: bool = False,
) -> bool:
    """Unify two terms in place.

    Returns True on success (bindings extended), False on failure — in
    which case the caller must undo to its own mark; this function does not
    undo partial progress itself.
    """
    left = bindings.walk(left)
    right = bindings.walk(right)
    if left == right:
        return True
    if isinstance(left, Var):
        if occurs_check and occurs(left, right, bindings):
            return False
        bindings.bind(left, right)
        return True
    if isinstance(right, Var):
        if occurs_check and occurs(right, left, bindings):
            return False
        bindings.bind(right, left)
        return True
    if isinstance(left, Struct) and isinstance(right, Struct):
        if left.indicator != right.indicator:
            return False
        return all(
            unify(l_arg, r_arg, bindings, occurs_check)
            for l_arg, r_arg in zip(left.args, right.args)
        )
    return False


def unify_or_undo(
    left: Term, right: Term, bindings: Bindings, occurs_check: bool = False
) -> bool:
    """Unify; on failure restore *bindings* to its state before the call."""
    mark = bindings.mark()
    if unify(left, right, bindings, occurs_check):
        return True
    bindings.undo_to(mark)
    return False


def match(pattern: Term, ground: Term, bindings: Optional[Bindings] = None) -> Optional[Bindings]:
    """One-way match of *pattern* against a ground term.

    Convenience wrapper used by the datalog evaluator; returns the bindings
    on success, None on failure.
    """
    bindings = bindings or Bindings()
    if unify_or_undo(pattern, ground, bindings):
        return bindings
    return None
