"""Linear arithmetic constraints over the rationals.

CLP(R)'s distinguishing feature is solving numeric constraints alongside
logical deduction.  The consistency model only needs *linear* constraints
(frequencies, rates, sums of bandwidth), so this module implements:

* :class:`LinExpr` — linear expressions ``sum(c_i * V_i) + k`` with exact
  Fraction coefficients;
* :class:`Constraint` — a relation ``expr OP 0`` with OP in
  {=, ≠, ≤, <, ≥, >};
* :class:`ConstraintStore` — an incremental store with satisfiability
  checking by Gaussian elimination of equalities followed by
  Fourier–Motzkin elimination of inequalities, an undo trail for
  backtracking, and per-variable bound extraction (used by the paper's
  "reverse" speculative mode to report, e.g., ``T >= 300``).

Disequalities (≠) are checked against implied equalities: the store is
unsatisfiable if ``expr = 0`` is entailed while ``expr ≠ 0`` is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.clpr.terms import Numeric, Var
from repro.errors import ConstraintError

_OPS = ("=", "!=", "<=", "<", ">=", ">")


class LinExpr:
    """A linear expression: coefficient map over variables plus a constant."""

    __slots__ = ("coeffs", "const")

    def __init__(
        self,
        coeffs: Optional[Dict[Var, Fraction]] = None,
        const: Numeric = 0,
    ):
        self.coeffs: Dict[Var, Fraction] = {
            variable: Fraction(value)
            for variable, value in (coeffs or {}).items()
            if value != 0
        }
        self.const = Fraction(const)

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: Numeric) -> "LinExpr":
        return cls({}, value)

    @classmethod
    def variable(cls, variable: Var, coefficient: Numeric = 1) -> "LinExpr":
        return cls({variable: Fraction(coefficient)}, 0)

    def __add__(self, other: "LinExpr") -> "LinExpr":
        coeffs = dict(self.coeffs)
        for variable, value in other.coeffs.items():
            coeffs[variable] = coeffs.get(variable, Fraction(0)) + value
        return LinExpr(coeffs, self.const + other.const)

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return self + other.scaled(-1)

    def scaled(self, factor: Numeric) -> "LinExpr":
        factor = Fraction(factor)
        return LinExpr(
            {variable: value * factor for variable, value in self.coeffs.items()},
            self.const * factor,
        )

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------
    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> Tuple[Var, ...]:
        return tuple(self.coeffs)

    def coefficient(self, variable: Var) -> Fraction:
        return self.coeffs.get(variable, Fraction(0))

    def substitute(self, variable: Var, replacement: "LinExpr") -> "LinExpr":
        """Replace *variable* with *replacement* throughout."""
        coefficient = self.coeffs.get(variable)
        if coefficient is None:
            return self
        remaining = {
            other: value for other, value in self.coeffs.items() if other != variable
        }
        return LinExpr(remaining, self.const) + replacement.scaled(coefficient)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        return hash((frozenset(self.coeffs.items()), self.const))

    def __repr__(self) -> str:
        parts = []
        for variable, value in sorted(self.coeffs.items(), key=lambda kv: kv[0].id):
            if value == 1:
                parts.append(f"{variable!r}")
            else:
                parts.append(f"{value}*{variable!r}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


@dataclass(frozen=True)
class Constraint:
    """``expr OP 0`` for OP in =, !=, <=, <, >=, >."""

    expr: LinExpr
    op: str

    def __post_init__(self):
        if self.op not in _OPS:
            raise ConstraintError(f"unknown constraint operator {self.op!r}")

    @classmethod
    def compare(cls, left: LinExpr, op: str, right: LinExpr) -> "Constraint":
        """Build ``left OP right`` normalised to ``expr OP 0``."""
        return cls(left - right, op)

    def normalised(self) -> "Constraint":
        """Rewrite >=, > into <=, < by negating the expression."""
        if self.op == ">=":
            return Constraint(self.expr.scaled(-1), "<=")
        if self.op == ">":
            return Constraint(self.expr.scaled(-1), "<")
        return self

    def evaluate(self) -> Optional[bool]:
        """Truth value when the expression is constant, else None."""
        if not self.expr.is_constant():
            return None
        value = self.expr.const
        return {
            "=": value == 0,
            "!=": value != 0,
            "<=": value <= 0,
            "<": value < 0,
            ">=": value >= 0,
            ">": value > 0,
        }[self.op]

    def __repr__(self) -> str:
        return f"{self.expr!r} {self.op} 0"


@dataclass(frozen=True)
class Bound:
    """A one-variable bound ``variable OP value`` extracted from the store."""

    variable: Var
    op: str
    value: Fraction

    def __repr__(self) -> str:
        value = (
            str(self.value.numerator)
            if self.value.denominator == 1
            else str(float(self.value))
        )
        return f"{self.variable.name} {self.op} {value}"


class ConstraintStore:
    """An incremental store of linear constraints with backtracking.

    ``add`` raises nothing and returns False when the new constraint makes
    the store unsatisfiable (the solver treats that as goal failure).  The
    satisfiability check re-runs elimination over the active constraints;
    stores in this problem domain stay small (tens of constraints), so the
    simple complete method is preferred over an incremental simplex.
    """

    def __init__(self):
        self._constraints: List[Constraint] = []

    # ------------------------------------------------------------------
    # Trail interface (mirrors Bindings).
    # ------------------------------------------------------------------
    def mark(self) -> int:
        return len(self._constraints)

    def undo_to(self, mark: int) -> None:
        del self._constraints[mark:]

    def constraints(self) -> Tuple[Constraint, ...]:
        return tuple(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    # ------------------------------------------------------------------
    # Insertion.
    # ------------------------------------------------------------------
    def add(self, constraint: Constraint) -> bool:
        """Add a constraint; returns False (and does not add) if UNSAT."""
        truth = constraint.evaluate()
        if truth is not None:
            return truth
        candidate = self._constraints + [constraint]
        if not _satisfiable(candidate):
            return False
        self._constraints.append(constraint)
        return True

    def entails(self, constraint: Constraint) -> bool:
        """True if the store logically entails *constraint*.

        Checked by refutation: the store plus the negation is UNSAT.  For
        ``=`` the negation is a disjunction, so both strict sides are
        tested.
        """
        for negation in _negate(constraint):
            if _satisfiable(self._constraints + [negation]):
                return False
        return True

    # ------------------------------------------------------------------
    # Answer extraction.
    # ------------------------------------------------------------------
    def bounds_for(self, variable: Var) -> List[Bound]:
        """Tightest lower/upper bounds for *variable* implied by the store."""
        others = {
            other
            for constraint in self._constraints
            for other in constraint.expr.variables()
            if other != variable
        }
        rows = [c.normalised() for c in self._constraints]
        rows = _eliminate_equalities(rows, keep=variable)
        for other in others:
            rows = _eliminate_variable(rows, other)
            if rows is None:
                raise ConstraintError("store is unsatisfiable")
        bounds: List[Bound] = []
        lower: Optional[Tuple[Fraction, bool]] = None  # (value, strict)
        upper: Optional[Tuple[Fraction, bool]] = None
        exact: Optional[Fraction] = None
        for row in rows:
            coefficient = row.expr.coefficient(variable)
            if coefficient == 0:
                continue
            # row: c*V + k (op) 0  =>  V (op') -k/c
            threshold = -row.expr.const / coefficient
            if row.op == "=":
                exact = threshold
                continue
            if row.op == "!=":
                continue
            strict = row.op == "<"
            if coefficient > 0:  # V <= threshold
                if upper is None or threshold < upper[0] or (
                    threshold == upper[0] and strict
                ):
                    upper = (threshold, strict)
            else:  # V >= threshold
                if lower is None or threshold > lower[0] or (
                    threshold == lower[0] and strict
                ):
                    lower = (threshold, strict)
        if exact is not None:
            return [Bound(variable, "=", exact)]
        if (
            lower is not None
            and upper is not None
            and lower[0] == upper[0]
            and not lower[1]
            and not upper[1]
        ):
            # A closed window of width zero pins the variable exactly.
            return [Bound(variable, "=", lower[0])]
        if lower is not None:
            bounds.append(Bound(variable, ">" if lower[1] else ">=", lower[0]))
        if upper is not None:
            bounds.append(Bound(variable, "<" if upper[1] else "<=", upper[0]))
        return bounds


# ----------------------------------------------------------------------
# Satisfiability via Gaussian + Fourier–Motzkin elimination.
# ----------------------------------------------------------------------
def _negate(constraint: Constraint) -> Iterable[Constraint]:
    """The negation of a constraint as one or two constraints (disjuncts)."""
    expr, op = constraint.expr, constraint.op
    if op == "=":
        return (Constraint(expr, "<"), Constraint(expr, ">"))
    if op == "!=":
        return (Constraint(expr, "="),)
    flip = {"<=": ">", "<": ">=", ">=": "<", ">": "<="}[op]
    return (Constraint(expr, flip),)


def _eliminate_equalities(
    rows: Sequence[Constraint], keep: Optional[Var] = None
) -> List[Constraint]:
    """Substitute out equalities; disequalities kept for the final check.

    When *keep* is given, equalities are solved for some *other* variable
    so that bounds on *keep* remain visible; an equality mentioning only
    *keep* is preserved as-is (it pins the variable exactly).
    """
    rows = [row.normalised() for row in rows]
    result: List[Constraint] = []
    pending = list(rows)
    while pending:
        row = pending.pop(0)
        if row.op != "=" or row.expr.is_constant():
            result.append(row)
            continue
        # Solve the equality for one variable and substitute everywhere.
        candidates = row.expr.variables()
        if keep is not None:
            preferred = [v for v in candidates if v != keep]
            if not preferred:
                result.append(row)
                continue
            candidates = tuple(preferred)
        variable = candidates[0]
        coefficient = row.expr.coefficient(variable)
        # variable = -(rest)/coefficient
        rest = LinExpr(
            {
                other: value
                for other, value in row.expr.coeffs.items()
                if other != variable
            },
            row.expr.const,
        )
        replacement = rest.scaled(Fraction(-1) / coefficient)
        pending = [
            Constraint(item.expr.substitute(variable, replacement), item.op)
            for item in pending
        ]
        result = [
            Constraint(item.expr.substitute(variable, replacement), item.op)
            for item in result
        ]
    return result


def _eliminate_variable(
    rows: Optional[List[Constraint]], variable: Var
) -> Optional[List[Constraint]]:
    """Fourier–Motzkin elimination of one variable from inequality rows.

    Returns None if a constant contradiction is produced.
    """
    if rows is None:
        return None
    uppers: List[Tuple[LinExpr, bool]] = []  # variable <= expr (strict?)
    lowers: List[Tuple[LinExpr, bool]] = []  # variable >= expr (strict?)
    rest: List[Constraint] = []
    for row in rows:
        coefficient = row.expr.coefficient(variable)
        if coefficient == 0 or row.op in ("=", "!="):
            if coefficient != 0 and row.op == "=":
                raise ConstraintError("equalities must be eliminated first")
            if coefficient != 0 and row.op == "!=":
                # A disequality alone never makes a dense order UNSAT.
                continue
            rest.append(row)
            continue
        strict = row.op == "<"
        # c*V + rest OP 0  =>  V OP' -rest/c
        remainder = LinExpr(
            {o: v for o, v in row.expr.coeffs.items() if o != variable},
            row.expr.const,
        ).scaled(Fraction(-1) / coefficient)
        if coefficient > 0:
            uppers.append((remainder, strict))
        else:
            lowers.append((remainder, strict))
    for lower_expr, lower_strict in lowers:
        for upper_expr, upper_strict in uppers:
            # lower <= V <= upper  =>  lower - upper <= 0
            combined = lower_expr - upper_expr
            op = "<" if (lower_strict or upper_strict) else "<="
            new_row = Constraint(combined, op)
            truth = new_row.evaluate()
            if truth is False:
                return None
            if truth is None:
                rest.append(new_row)
    return rest


def _satisfiable(rows: Sequence[Constraint]) -> bool:
    """Complete satisfiability check over the rationals."""
    try:
        reduced = _eliminate_equalities(rows)
    except ConstraintError:
        return False
    # Constant rows must hold.
    remaining: List[Constraint] = []
    disequalities: List[Constraint] = []
    for row in reduced:
        truth = row.evaluate()
        if truth is False:
            return False
        if truth is True:
            continue
        if row.op == "!=":
            disequalities.append(row)
        else:
            remaining.append(row)
    variables = {
        variable for row in remaining for variable in row.expr.variables()
    }
    current: Optional[List[Constraint]] = remaining
    for variable in variables:
        current = _eliminate_variable(current, variable)
        if current is None:
            return False
    for row in current or ():
        if row.evaluate() is False:
            return False
    # A disequality expr != 0 fails only if the inequalities force expr = 0.
    for diseq in disequalities:
        if _forces_zero(remaining, diseq.expr):
            return False
    return True


def _forces_zero(rows: Sequence[Constraint], expr: LinExpr) -> bool:
    """Do *rows* entail ``expr = 0``?  (Refutation on both strict sides.)"""
    for side in ("<", ">"):
        if _strictly_satisfiable(rows, Constraint(expr, side)):
            return False
    return True


def _strictly_satisfiable(rows: Sequence[Constraint], extra: Constraint) -> bool:
    candidate = list(rows) + [extra]
    variables = {
        variable for row in candidate for variable in row.expr.variables()
    }
    current: Optional[List[Constraint]] = [row.normalised() for row in candidate]
    for variable in variables:
        current = _eliminate_variable(current, variable)
        if current is None:
            return False
    return all(row.evaluate() is not False for row in current or ())
