"""Logic terms for the CLP(R) engine.

Four kinds of terms, all immutable:

* :class:`Var` — a logic variable, identified by a unique integer so two
  variables with the same display name are distinct;
* :class:`Atom` — a symbolic constant (``public``, ``snmpaddr``);
* :class:`Num` — a numeric constant (stored as :class:`fractions.Fraction`
  for exact arithmetic in the constraint solver);
* :class:`Struct` — a compound term ``functor(arg1, ..., argN)``.

Atoms are structures of arity 0 for indexing purposes but kept as a
separate class for clarity and compactness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, Tuple, Union

_var_counter = itertools.count(1)

Numeric = Union[int, float, Fraction]


@dataclass(frozen=True)
class Term:
    """Base class for all logic terms."""


@dataclass(frozen=True)
class Var(Term):
    """A logic variable.  ``Var.fresh("X")`` creates a new, unique variable."""

    name: str
    id: int

    @classmethod
    def fresh(cls, name: str = "_") -> "Var":
        return cls(name, next(_var_counter))

    def __repr__(self) -> str:
        return f"{self.name}_{self.id}"


@dataclass(frozen=True)
class Atom(Term):
    """A symbolic constant."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Num(Term):
    """A numeric constant, exact (Fraction)."""

    value: Fraction

    @classmethod
    def of(cls, value: Numeric) -> "Num":
        if isinstance(value, float):
            return cls(Fraction(value).limit_denominator(10**9))
        return cls(Fraction(value))

    def __repr__(self) -> str:
        if self.value.denominator == 1:
            return str(self.value.numerator)
        return str(float(self.value))


@dataclass(frozen=True)
class Struct(Term):
    """A compound term ``functor(args...)``."""

    functor: str
    args: Tuple[Term, ...]

    @property
    def indicator(self) -> Tuple[str, int]:
        """The predicate indicator functor/arity used for clause indexing."""
        return (self.functor, len(self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.functor}({inner})"


# ----------------------------------------------------------------------
# Convenience constructors.
# ----------------------------------------------------------------------
def var(name: str = "_") -> Var:
    """A fresh logic variable."""
    return Var.fresh(name)


def atom(name: str) -> Atom:
    return Atom(name)


def num(value: Numeric) -> Num:
    return Num.of(value)


def struct(functor: str, *args: object) -> Struct:
    """Build a structure, converting plain Python values to terms."""
    return Struct(functor, tuple(to_term(arg) for arg in args))


def to_term(value: object) -> Term:
    """Convert a Python value to a term.

    Strings become atoms, numbers become :class:`Num`, terms pass through.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Atom(value)
    if isinstance(value, bool):
        return Atom("true" if value else "false")
    if isinstance(value, (int, float, Fraction)):
        return Num.of(value)
    raise TypeError(f"cannot convert {value!r} to a logic term")


def indicator_of(term: Term) -> Tuple[str, int]:
    """Predicate indicator of an atom or structure."""
    if isinstance(term, Atom):
        return (term.name, 0)
    if isinstance(term, Struct):
        return term.indicator
    raise TypeError(f"term {term!r} is not callable")


def variables_in(term: Term) -> Iterator[Var]:
    """Yield each variable occurrence in *term* (with repeats)."""
    if isinstance(term, Var):
        yield term
    elif isinstance(term, Struct):
        for arg in term.args:
            yield from variables_in(arg)


def rename(term: Term, mapping: Dict[Var, Var]) -> Term:
    """Copy *term*, replacing variables via *mapping* (extended on demand)."""
    if isinstance(term, Var):
        renamed = mapping.get(term)
        if renamed is None:
            renamed = Var.fresh(term.name)
            mapping[term] = renamed
        return renamed
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(rename(arg, mapping) for arg in term.args))
    return term
