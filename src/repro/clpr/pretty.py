"""Rendering terms and clauses back to parseable Prolog text.

``repr`` on terms is close to Prolog syntax but does not quote atoms that
need it; :func:`to_prolog` produces text that :func:`repro.clpr.program.
parse_term` reads back to an equal term (for ground terms — variables get
fresh identities on re-parse by design).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.clpr.program import Clause
from repro.clpr.terms import Atom, Num, Struct, Term, Var

_PLAIN_ATOM_CHARS = set("abcdefghijklmnopqrstuvwxyz"
                        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _atom_text(name: str) -> str:
    if name and name[0].islower() and set(name) <= _PLAIN_ATOM_CHARS:
        return name
    escaped = name.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def to_prolog(term: Term) -> str:
    """Render *term* as parseable Prolog text."""
    if isinstance(term, Atom):
        return _atom_text(term.name)
    if isinstance(term, Num):
        value: Fraction = term.value
        if value.denominator == 1:
            return str(value.numerator)
        return repr(float(value))
    if isinstance(term, Var):
        # Variables keep their display name; identity is not preserved
        # across a parse round-trip (each clause scopes its own).
        name = term.name if term.name and term.name[0].isupper() else f"V{term.id}"
        return name
    if isinstance(term, Struct):
        args = ", ".join(to_prolog(arg) for arg in term.args)
        return f"{_atom_text(term.functor)}({args})"
    raise TypeError(f"cannot render {term!r}")


def clause_to_prolog(clause: Clause) -> str:
    """Render a clause (fact or rule) as one Prolog line."""
    head = to_prolog(clause.head)
    if clause.is_fact():
        return f"{head}."
    body = ", ".join(to_prolog(goal) for goal in clause.body)
    return f"{head} :- {body}."


def program_to_prolog(clauses: Iterable[Clause]) -> str:
    return "\n".join(clause_to_prolog(clause) for clause in clauses) + "\n"
