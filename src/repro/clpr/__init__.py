"""A CLP(R) substrate: constraint logic programming over the reals.

The paper's Consistency Checker is "a front end for the Prolog dialect
CLP(R)" (Heintze et al.), chosen for fast logical deduction plus numeric
constraints over the reals — the latter expressing frequency/timing limits.
CLP(R) itself is not available, so this package implements the needed core
from scratch:

* :mod:`repro.clpr.terms` — logic terms (variables, atoms, numbers,
  structures) with value semantics;
* :mod:`repro.clpr.unify` — trail-based unification with backtracking;
* :mod:`repro.clpr.constraints` — linear arithmetic constraints over the
  rationals with an incremental satisfiability check (Fourier–Motzkin
  elimination) and variable-bound extraction for the paper's "run the
  consistency check in reverse" mode;
* :mod:`repro.clpr.program` — clause database plus a Prolog-style text
  parser for rules and queries;
* :mod:`repro.clpr.solver` — SLD resolution with negation as failure
  (the paper's closed-world assumption) and constraint-store integration;
* :mod:`repro.clpr.datalog` — a semi-naive bottom-up evaluator used as the
  scalable fast path for ground rule closures.
"""

from repro.clpr.terms import Atom, Num, Struct, Var, atom, num, struct, var
from repro.clpr.unify import Bindings, unify
from repro.clpr.constraints import Constraint, ConstraintStore, LinExpr
from repro.clpr.program import Clause, Program, parse_program, parse_query, parse_term
from repro.clpr.solver import Answer, Engine

__all__ = [
    "Answer",
    "Atom",
    "Bindings",
    "Clause",
    "Constraint",
    "ConstraintStore",
    "Engine",
    "LinExpr",
    "Num",
    "Program",
    "Struct",
    "Var",
    "atom",
    "num",
    "parse_program",
    "parse_query",
    "parse_term",
    "struct",
    "unify",
    "var",
]
