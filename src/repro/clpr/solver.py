"""SLD resolution with linear-constraint integration (the CLP(R) engine).

The engine answers queries against a :class:`~repro.clpr.program.Program`
by depth-first SLD resolution with backtracking.  Arithmetic comparisons
become constraints in a :class:`~repro.clpr.constraints.ConstraintStore`
when their arguments are not ground, giving the CLP(R) behaviour the paper
relies on for timing/frequency reasoning — including "running the check in
reverse": a query with free numeric parameters succeeds with *residual
constraints* describing the satisfying parameter values.

Builtins: ``true``, ``fail``, ``=``, ``\\=``, ``\\+`` (negation as failure,
matching the paper's closed-world assumption), ``is``, and the comparisons
``=:=  =\\=  <  =<  >  >=``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.clpr.constraints import Bound, Constraint, ConstraintStore, LinExpr
from repro.clpr.program import Program, parse_query
from repro.clpr.terms import Atom, Num, Struct, Term, Var, indicator_of
from repro.clpr.unify import Bindings, unify
from repro.errors import ClprError, ConstraintError

_COMPARISONS = {
    "=:=": "=",
    "=\\=": "!=",
    "<": "<",
    "=<": "<=",
    ">": ">",
    ">=": ">=",
}

_ARITH_FUNCTORS = {"+", "-", "*", "/"}


@dataclass
class Answer:
    """One solution: query-variable values plus residual numeric bounds."""

    bindings: Dict[str, Term]
    residual: Tuple[Bound, ...] = ()

    def value(self, name: str) -> Term:
        if name not in self.bindings:
            raise ClprError(f"no query variable named {name!r}")
        return self.bindings[name]

    def __repr__(self) -> str:
        parts = [f"{name} = {term!r}" for name, term in sorted(self.bindings.items())]
        parts.extend(repr(bound) for bound in self.residual)
        return "{" + ", ".join(parts) + "}"


class Engine:
    """A CLP(R)-style solver over a clause database."""

    def __init__(self, program: Program, max_depth: int = 4000):
        self._program = program
        self._max_depth = max_depth
        #: Plain-int work tallies (unification attempts, constraints
        #: pushed to the store) — read by callers feeding repro.obs.
        self.stats: Dict[str, int] = {
            "unifications": 0,
            "constraint_propagations": 0,
        }

    @property
    def program(self) -> Program:
        return self._program

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def solve(
        self,
        query: Union[str, Sequence[Term]],
        limit: Optional[int] = None,
    ) -> Iterator[Answer]:
        """Yield solutions to *query* (text or a pre-parsed goal list)."""
        goals = parse_query(query) if isinstance(query, str) else list(query)
        query_vars = _query_variables(goals)
        bindings = Bindings()
        store = ConstraintStore()
        count = 0
        for _ in self._solve_goals(list(goals), bindings, store, 0):
            answer = self._make_answer(query_vars, bindings, store)
            yield answer
            count += 1
            if limit is not None and count >= limit:
                return

    def ask(self, query: Union[str, Sequence[Term]]) -> bool:
        """True if *query* has at least one solution."""
        for _answer in self.solve(query, limit=1):
            return True
        return False

    def first(self, query: Union[str, Sequence[Term]]) -> Optional[Answer]:
        for answer in self.solve(query, limit=1):
            return answer
        return None

    def all(self, query: Union[str, Sequence[Term]], limit: int = 10000) -> List[Answer]:
        return list(self.solve(query, limit=limit))

    # ------------------------------------------------------------------
    # Resolution.
    # ------------------------------------------------------------------
    def _solve_goals(
        self,
        goals: List[Term],
        bindings: Bindings,
        store: ConstraintStore,
        depth: int,
    ) -> Iterator[None]:
        if depth > self._max_depth:
            raise ClprError(f"proof exceeded depth limit {self._max_depth}")
        if not goals:
            yield None
            return
        goal, rest = goals[0], goals[1:]
        goal = bindings.walk(goal)
        yield from self._solve_one(goal, rest, bindings, store, depth)

    def _solve_one(
        self,
        goal: Term,
        rest: List[Term],
        bindings: Bindings,
        store: ConstraintStore,
        depth: int,
    ) -> Iterator[None]:
        if isinstance(goal, Var):
            raise ClprError("unbound variable used as a goal")
        if isinstance(goal, Num):
            raise ClprError(f"number {goal!r} used as a goal")

        name, arity = indicator_of(goal)

        # --- control builtins ---
        if (name, arity) == ("true", 0):
            yield from self._solve_goals(rest, bindings, store, depth + 1)
            return
        if (name, arity) == ("fail", 0) or (name, arity) == ("false", 0):
            return
        if (name, arity) == ("\\+", 1):
            assert isinstance(goal, Struct)
            mark_b, mark_c = bindings.mark(), store.mark()
            succeeded = False
            for _ in self._solve_goals([goal.args[0]], bindings, store, depth + 1):
                succeeded = True
                break
            bindings.undo_to(mark_b)
            store.undo_to(mark_c)
            if not succeeded:
                yield from self._solve_goals(rest, bindings, store, depth + 1)
            return

        # --- unification builtins ---
        if (name, arity) == ("=", 2):
            assert isinstance(goal, Struct)
            yield from self._builtin_unify(goal, rest, bindings, store, depth)
            return
        if (name, arity) == ("\\=", 2):
            assert isinstance(goal, Struct)
            mark_b = bindings.mark()
            unifiable = unify(goal.args[0], goal.args[1], bindings)
            bindings.undo_to(mark_b)
            if not unifiable:
                yield from self._solve_goals(rest, bindings, store, depth + 1)
            return

        # --- arithmetic builtins ---
        if name in _COMPARISONS and arity == 2:
            assert isinstance(goal, Struct)
            yield from self._builtin_compare(
                goal, _COMPARISONS[name], rest, bindings, store, depth
            )
            return
        if (name, arity) == ("is", 2):
            assert isinstance(goal, Struct)
            yield from self._builtin_is(goal, rest, bindings, store, depth)
            return

        # --- user predicates ---
        clauses = self._program.clauses_for((name, arity))
        for clause in clauses:
            renamed = clause.fresh()
            mark_b, mark_c = bindings.mark(), store.mark()
            self.stats["unifications"] += 1
            if unify(goal, renamed.head, bindings):
                new_goals = list(renamed.body) + rest
                yield from self._solve_goals(new_goals, bindings, store, depth + 1)
            bindings.undo_to(mark_b)
            store.undo_to(mark_c)

    # ------------------------------------------------------------------
    # Builtins.
    # ------------------------------------------------------------------
    def _builtin_unify(self, goal, rest, bindings, store, depth):
        mark_b = bindings.mark()
        self.stats["unifications"] += 1
        if unify(goal.args[0], goal.args[1], bindings):
            yield from self._solve_goals(rest, bindings, store, depth + 1)
        bindings.undo_to(mark_b)

    def _builtin_compare(self, goal, op, rest, bindings, store, depth):
        try:
            left = _linearize(goal.args[0], bindings)
            right = _linearize(goal.args[1], bindings)
        except ConstraintError:
            # Non-numeric comparison: =:= on atoms fails; atoms are not
            # arithmetic in this engine.
            return
        constraint = Constraint.compare(left, op, right)
        truth = constraint.evaluate()
        if truth is True:
            yield from self._solve_goals(rest, bindings, store, depth + 1)
            return
        if truth is False:
            return
        mark_c = store.mark()
        self.stats["constraint_propagations"] += 1
        if store.add(constraint):
            yield from self._solve_goals(rest, bindings, store, depth + 1)
        store.undo_to(mark_c)

    def _builtin_is(self, goal, rest, bindings, store, depth):
        """CLP(R)-style ``is``: an equality over the reals."""
        try:
            right = _linearize(goal.args[1], bindings)
        except ConstraintError as exc:
            raise ClprError(f"non-linear arithmetic in is/2: {exc}") from exc
        left_term = bindings.walk(goal.args[0])
        if right.is_constant():
            mark_b = bindings.mark()
            if unify(left_term, Num(right.const), bindings):
                yield from self._solve_goals(rest, bindings, store, depth + 1)
            bindings.undo_to(mark_b)
            return
        left = _linearize(goal.args[0], bindings)
        constraint = Constraint.compare(left, "=", right)
        truth = constraint.evaluate()
        if truth is True:
            yield from self._solve_goals(rest, bindings, store, depth + 1)
            return
        if truth is False:
            return
        mark_c = store.mark()
        self.stats["constraint_propagations"] += 1
        if store.add(constraint):
            yield from self._solve_goals(rest, bindings, store, depth + 1)
        store.undo_to(mark_c)

    # ------------------------------------------------------------------
    # Answers.
    # ------------------------------------------------------------------
    def _make_answer(
        self,
        query_vars: Dict[str, Var],
        bindings: Bindings,
        store: ConstraintStore,
    ) -> Answer:
        resolved: Dict[str, Term] = {}
        residual: List[Bound] = []
        for name, variable in query_vars.items():
            value = bindings.resolve(variable)
            resolved[name] = value
            if isinstance(value, Var):
                bounds = store.bounds_for(value)
                for bound in bounds:
                    residual.append(Bound(Var(name, bound.variable.id), bound.op, bound.value))
                    if bound.op == "=":
                        resolved[name] = Num(bound.value)
        return Answer(resolved, tuple(residual))


def _query_variables(goals: Sequence[Term]) -> Dict[str, Var]:
    """Named (non-underscore) variables of the query, in first-seen order."""
    found: Dict[str, Var] = {}

    def visit(term: Term) -> None:
        if isinstance(term, Var):
            if term.name != "_" and term.name not in found:
                found[term.name] = term
        elif isinstance(term, Struct):
            for arg in term.args:
                visit(arg)

    for goal in goals:
        visit(goal)
    return found


def _linearize(term: Term, bindings: Bindings) -> LinExpr:
    """Convert an arithmetic term to a linear expression.

    Raises ConstraintError on non-numeric leaves or non-linear products.
    """
    term = bindings.walk(term)
    if isinstance(term, Num):
        return LinExpr.constant(term.value)
    if isinstance(term, Var):
        return LinExpr.variable(term)
    if isinstance(term, Atom):
        raise ConstraintError(f"atom {term!r} in arithmetic expression")
    if isinstance(term, Struct) and term.functor in _ARITH_FUNCTORS:
        if len(term.args) == 2:
            left = _linearize(term.args[0], bindings)
            right = _linearize(term.args[1], bindings)
            if term.functor == "+":
                return left + right
            if term.functor == "-":
                return left - right
            if term.functor == "*":
                if left.is_constant():
                    return right.scaled(left.const)
                if right.is_constant():
                    return left.scaled(right.const)
                raise ConstraintError("non-linear product of two variables")
            if term.functor == "/":
                if not right.is_constant():
                    raise ConstraintError("division by a non-constant")
                if right.const == 0:
                    raise ConstraintError("division by zero")
                return left.scaled(Fraction(1) / right.const)
        if len(term.args) == 1 and term.functor == "-":
            return _linearize(term.args[0], bindings).scaled(-1)
    raise ConstraintError(f"cannot linearize term {term!r}")
