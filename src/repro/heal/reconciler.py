"""The drift reconciler: poll, classify, re-drive, converge (or quarantine).

Level-based reconciliation over the rollout machinery.  Each **round**
the reconciler advances its campaign clock by ``interval_s`` and, for
every element the :class:`~repro.heal.registry.HealthRegistry` allows,
performs one SNMP poll of the enterprise drift objects
(``nmslConfigRunningDigest`` + ``nmslConfigGeneration``, a single Get).
The answer is classified:

* **in-sync** — running digest matches the desired text and the
  generation did not regress;
* **digest-mismatch** — the persisted store differs from the desired
  configuration (bit-rot, out-of-band edits, a lost commit): the element
  is re-driven through a fresh
  :class:`~repro.rollout.coordinator.RolloutCoordinator` this round;
* **generation-regression** — the generation counter went backwards but
  the digest still matches: the agent restarted and reloaded its (good)
  persisted config; the reconciler re-baselines its expectation without
  touching the wire;
* **unreachable** — the poll failed: a breaker failure; enough of those
  opens the breaker (cool-down, half-open probing) and eventually
  quarantines the element.

A heal run **converges** when some round finds every element either
in-sync or quarantined.  Time is logical (polls cost ``policy.rtt_s``,
timeouts ``policy.timeout_s``, re-drives their campaign duration), so
two same-seed runs yield byte-identical :class:`HealReport`\\ s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import json

from repro import obs
from repro.errors import HealError, RolloutError, SnmpError
from repro.heal.registry import HealthRegistry
from repro.rollout.coordinator import (
    RolloutCoordinator,
    SendFunction,
    config_fingerprint,
)
from repro.rollout.retry import RetryPolicy
from repro.rollout.state import RolloutState


class DriftKind:
    """Classification labels for one element poll (plain constants)."""

    IN_SYNC = "in-sync"
    DIGEST_MISMATCH = "digest-mismatch"
    GENERATION_REGRESSION = "generation-regression"
    UNREACHABLE = "unreachable"
    COOLING = "cooling"  # breaker open: not polled this round
    QUARANTINED = "quarantined"  # written off: not polled, ever

    #: Kinds that count as detected drift (and must be repaired).
    DRIFT = (DIGEST_MISMATCH, GENERATION_REGRESSION)


@dataclass
class Observation:
    """One element's verdict in one round."""

    element: str
    kind: str
    detail: str = ""
    generation: Optional[int] = None
    repaired: bool = False

    def as_dict(self) -> dict:
        return {
            "element": self.element,
            "kind": self.kind,
            "detail": self.detail,
            "generation": self.generation,
            "repaired": self.repaired,
        }


@dataclass
class RoundReport:
    """What one reconciliation round saw and did."""

    number: int
    at_s: float
    observations: List[Observation] = field(default_factory=list)
    redriven: Tuple[str, ...] = ()
    repaired: Tuple[str, ...] = ()
    failed: Tuple[str, ...] = ()
    quarantined: Tuple[str, ...] = ()
    duration_s: float = 0.0

    @property
    def drift(self) -> List[Observation]:
        return [o for o in self.observations if o.kind in DriftKind.DRIFT]

    @property
    def clean(self) -> bool:
        """True when every element is either in-sync or quarantined."""
        return all(
            o.kind in (DriftKind.IN_SYNC, DriftKind.QUARANTINED)
            for o in self.observations
        )

    def as_dict(self) -> dict:
        return {
            "number": self.number,
            "at_s": round(self.at_s, 6),
            "observations": [o.as_dict() for o in self.observations],
            "redriven": list(self.redriven),
            "repaired": list(self.repaired),
            "failed": list(self.failed),
            "quarantined": list(self.quarantined),
            "duration_s": round(self.duration_s, 6),
        }


@dataclass
class HealReport:
    """The structured outcome of one heal run."""

    seed: int
    interval_s: float
    rounds: List[RoundReport] = field(default_factory=list)
    converged: bool = False
    duration_s: float = 0.0
    quarantined: Tuple[str, ...] = ()
    health: dict = field(default_factory=dict)

    @property
    def rounds_used(self) -> int:
        return len(self.rounds)

    def drift_detected(self) -> int:
        return sum(len(r.drift) for r in self.rounds)

    def drift_repaired(self) -> int:
        return sum(
            sum(1 for o in r.observations if o.repaired) for r in self.rounds
        )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "interval_s": self.interval_s,
            "converged": self.converged,
            "rounds_used": self.rounds_used,
            "drift_detected": self.drift_detected(),
            "drift_repaired": self.drift_repaired(),
            "quarantined": list(self.quarantined),
            "duration_s": round(self.duration_s, 6),
            "rounds": [r.as_dict() for r in self.rounds],
            "health": self.health,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"heal run (seed {self.seed}, interval {self.interval_s:g}s): "
            + ("converged" if self.converged else "DID NOT CONVERGE")
            + f" after {self.rounds_used} round(s), "
            + f"{self.drift_detected()} drift event(s), "
            + f"{self.drift_repaired()} repaired"
        ]
        for round_ in self.rounds:
            verdicts = ", ".join(
                f"{o.element}:{o.kind}" for o in round_.observations
            )
            lines.append(
                f"  round {round_.number} @ {round_.at_s:10.3f}s  {verdicts}"
            )
        if self.quarantined:
            lines.append("  quarantined: " + ", ".join(self.quarantined))
        return "\n".join(lines)


class Reconciler:
    """Polls elements for drift and re-drives the drifted ones."""

    def __init__(
        self,
        channels: Dict[str, SendFunction],
        configs: Dict[str, str],
        policy: Optional[RetryPolicy] = None,
        seed: int = 1989,
        jobs: int = 4,
        registry: Optional[HealthRegistry] = None,
        interval_s: float = 30.0,
        max_rounds: int = 10,
        chunk_size: int = 1024,
        expected_generations: Optional[Dict[str, int]] = None,
        deadline=None,
    ):
        if max_rounds < 1:
            raise HealError(f"max_rounds must be at least 1, got {max_rounds}")
        if interval_s <= 0:
            raise HealError(f"interval_s must be positive, got {interval_s}")
        missing = sorted(set(configs) - set(channels))
        if missing:
            raise HealError(
                "no channel for element(s): " + ", ".join(missing)
            )
        self.channels = channels
        self.configs = configs
        self.policy = policy or RetryPolicy()
        self.seed = seed
        self.jobs = jobs
        self.registry = registry or HealthRegistry(sorted(configs))
        self.interval_s = interval_s
        self.max_rounds = max_rounds
        self.chunk_size = chunk_size
        self._expected: Dict[str, int] = dict(expected_generations or {})
        #: Optional :class:`repro.deadline.Deadline` — polled between
        #: reconciliation rounds (service requests abort with a 504
        #: instead of burning the round budget past their deadline).
        self.deadline = deadline
        self._redrives = 0
        self.now = 0.0

    # ------------------------------------------------------------------
    # One poll.
    # ------------------------------------------------------------------
    def poll(self, element: str) -> Observation:
        """One drift probe: a single Get of running digest + generation."""
        from repro.snmp.agent import (
            ADMIN_COMMUNITY,
            NMSL_CONFIG_GENERATION,
            NMSL_CONFIG_RUNNING_DIGEST,
        )
        from repro.snmp.manager import SnmpManager

        o = obs.current()
        manager = SnmpManager(ADMIN_COMMUNITY, self.channels[element])
        try:
            values = manager.get(
                [NMSL_CONFIG_RUNNING_DIGEST, NMSL_CONFIG_GENERATION]
            )
        except (SnmpError, RolloutError) as exc:
            self.now += self.policy.timeout_s
            return Observation(
                element,
                DriftKind.UNREACHABLE,
                detail=f"{type(exc).__name__}: {exc}",
            )
        finally:
            if o.enabled:
                o.counter(
                    "repro_heal_polls_total",
                    "drift-detection polls issued",
                    element=element,
                ).inc()
        self.now += self.policy.rtt_s
        digest, generation = (binding.value for binding in values)
        expected_digest = config_fingerprint(self.configs[element])
        generation = generation if isinstance(generation, int) else None
        expected_generation = self._expected.get(element)
        if bytes(digest) != expected_digest:
            return Observation(
                element,
                DriftKind.DIGEST_MISMATCH,
                detail="persisted store differs from desired configuration",
                generation=generation,
            )
        if (
            expected_generation is not None
            and generation is not None
            and generation < expected_generation
        ):
            return Observation(
                element,
                DriftKind.GENERATION_REGRESSION,
                detail=(
                    f"generation {generation} < expected "
                    f"{expected_generation}: agent restarted"
                ),
                generation=generation,
            )
        if generation is not None:
            self._expected[element] = generation
        return Observation(element, DriftKind.IN_SYNC, generation=generation)

    # ------------------------------------------------------------------
    # The heal loop.
    # ------------------------------------------------------------------
    def run(self, rounds: Optional[int] = None) -> HealReport:
        """Reconcile until convergence or the round budget runs out."""
        budget = rounds if rounds is not None else self.max_rounds
        if budget < 1:
            raise HealError(f"rounds must be at least 1, got {budget}")
        o = obs.current()
        report = HealReport(seed=self.seed, interval_s=self.interval_s)
        for number in range(1, budget + 1):
            if self.deadline is not None:
                self.deadline.check("heal.round")
            self.now += self.interval_s
            round_report = self._round(number)
            report.rounds.append(round_report)
            if o.enabled:
                o.counter(
                    "repro_heal_rounds_total", "reconciliation rounds run"
                ).inc()
            if round_report.clean:
                report.converged = True
                break
        report.duration_s = self.now
        report.quarantined = tuple(self.registry.quarantined())
        report.health = self.registry.snapshot()
        o.set_time(self.now)
        return report

    def _round(self, number: int) -> RoundReport:
        o = obs.current()
        started = self.now
        with o.span("heal.round", number=number) as span:
            observations: List[Observation] = []
            drifted: List[str] = []
            for element in sorted(self.configs):
                observation = self._observe(element)
                observations.append(observation)
                if observation.kind == DriftKind.DIGEST_MISMATCH:
                    drifted.append(element)
            repaired, failed = self._redrive(drifted, observations)
            round_report = RoundReport(
                number=number,
                at_s=started,
                observations=observations,
                redriven=tuple(drifted),
                repaired=tuple(repaired),
                failed=tuple(failed),
                quarantined=tuple(self.registry.quarantined()),
                duration_s=self.now - started,
            )
            span.annotate(
                drift=len(round_report.drift),
                repaired=len(repaired),
                clean=round_report.clean,
            )
        return round_report

    def _observe(self, element: str) -> Observation:
        o = obs.current()
        if self.registry.is_quarantined(element):
            return Observation(element, DriftKind.QUARANTINED)
        if not self.registry.allow(element, self.now):
            breaker = self.registry.breaker(element)
            return Observation(
                element,
                DriftKind.COOLING,
                detail=(
                    f"breaker open for another "
                    f"{breaker.opened_at + breaker.current_cooldown() - self.now:.1f}s"
                ),
            )
        observation = self.poll(element)
        if observation.kind == DriftKind.UNREACHABLE:
            self.registry.note_failure(element, self.now)
        else:
            self.registry.note_success(element, self.now)
        if observation.kind in DriftKind.DRIFT and o.enabled:
            o.counter(
                "repro_heal_drift_detected_total",
                "drift observations, by element and kind",
                element=element,
                kind=observation.kind,
            ).inc()
        if observation.kind == DriftKind.GENERATION_REGRESSION:
            # The store still matches: the agent merely restarted and
            # reloaded it.  Re-baseline our expectation; no wire work.
            if observation.generation is not None:
                self._expected[element] = observation.generation
            observation.repaired = True
            if o.enabled:
                o.counter(
                    "repro_heal_drift_repaired_total",
                    "drift events repaired, by element and kind",
                    element=element,
                    kind=observation.kind,
                ).inc()
        return observation

    def _redrive(
        self, drifted: List[str], observations: List[Observation]
    ) -> Tuple[List[str], List[str]]:
        """Re-apply the desired configuration to digest-drifted elements."""
        if not drifted:
            return [], []
        o = obs.current()
        # Deliberately no last_known_good: rolling a drifted element back
        # to its (corrupted) stored text would institutionalise the drift.
        coordinator = RolloutCoordinator(
            channels={e: self.channels[e] for e in drifted},
            configs={e: self.configs[e] for e in drifted},
            policy=self.policy,
            jobs=self.jobs,
            seed=self.seed + self._redrive_seed(),
            chunk_size=self.chunk_size,
            health=self.registry,
        )
        campaign = coordinator.run()
        self.now += campaign.duration_s
        repaired: List[str] = []
        failed: List[str] = []
        by_element = {obs_.element: obs_ for obs_ in observations}
        for element in drifted:
            record = campaign.elements[element]
            if record.state is RolloutState.COMMITTED:
                repaired.append(element)
                if record.generation is not None:
                    self._expected[element] = record.generation
                by_element[element].repaired = True
                self.registry.note_success(element, self.now)
                if o.enabled:
                    o.counter(
                        "repro_heal_drift_repaired_total",
                        "drift events repaired, by element and kind",
                        element=element,
                        kind=DriftKind.DIGEST_MISMATCH,
                    ).inc()
            else:
                failed.append(element)
                self.registry.note_failure(element, self.now)
        return repaired, failed

    def _redrive_seed(self) -> int:
        """A distinct, deterministic sub-campaign seed per redrive."""
        self._redrives += 1
        return self._redrives * 7919
