"""The health registry: one shared verdict per element.

The :class:`HealthRegistry` owns a :class:`~repro.heal.breaker.CircuitBreaker`
per element and distils it into three statuses:

* **healthy** — breaker closed, no recent failures;
* **degraded** — the breaker has seen failures, is cooling down, or is
  probing half-open;
* **quarantined** — the breaker opened ``quarantine_after`` times; the
  element is written off until an operator intervenes.  Both the rollout
  coordinator (via its ``health=`` hook) and the reconciler skip
  quarantined elements, so a dead router can never stall a campaign.

The registry is the single writer of breaker state; callers report
outcomes through :meth:`note_success` / :meth:`note_failure` and ask
permission through :meth:`allow`.  Breaker-state gauges are published
through :mod:`repro.obs` on every change.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List

from repro import obs
from repro.heal.breaker import BreakerState, CircuitBreaker


class HealthStatus(Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"


class HealthRegistry:
    """Tracks per-element health; consulted by rollout and reconciler."""

    def __init__(
        self,
        elements: Iterable[str] = (),
        failure_threshold: int = 3,
        cooldown_s: float = 60.0,
        cooldown_multiplier: float = 2.0,
        max_cooldown_s: float = 900.0,
        half_open_successes: int = 1,
        quarantine_after: int = 3,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.cooldown_multiplier = cooldown_multiplier
        self.max_cooldown_s = max_cooldown_s
        self.half_open_successes = half_open_successes
        self.quarantine_after = quarantine_after
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._quarantined: Dict[str, bool] = {}
        for element in elements:
            self.breaker(element)

    def breaker(self, element: str) -> CircuitBreaker:
        if element not in self.breakers:
            self.breakers[element] = CircuitBreaker(
                element=element,
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
                cooldown_multiplier=self.cooldown_multiplier,
                max_cooldown_s=self.max_cooldown_s,
                half_open_successes=self.half_open_successes,
            )
            self._publish(self.breakers[element])
        return self.breakers[element]

    # ------------------------------------------------------------------
    # Outcome reporting.
    # ------------------------------------------------------------------
    def note_success(self, element: str, now: float) -> None:
        breaker = self.breaker(element)
        breaker.record_success(now)
        self._publish(breaker)

    def note_failure(self, element: str, now: float) -> None:
        breaker = self.breaker(element)
        breaker.record_failure(now)
        if (
            breaker.opens >= self.quarantine_after
            and not self._quarantined.get(element)
        ):
            self.quarantine(element)
        self._publish(breaker)

    def quarantine(self, element: str) -> None:
        """Write the element off; only an operator brings it back."""
        if self._quarantined.get(element):
            return
        self._quarantined[element] = True
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_heal_quarantined_total",
                "elements quarantined by the health registry",
                element=element,
            ).inc()

    def release(self, element: str) -> None:
        """Operator override: lift a quarantine and reset the breaker."""
        self._quarantined.pop(element, None)
        self.breakers.pop(element, None)
        self.breaker(element)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def allow(self, element: str, now: float) -> bool:
        """May the element be contacted at *now*?"""
        if self.is_quarantined(element):
            return False
        return self.breaker(element).allow(now)

    def is_quarantined(self, element: str) -> bool:
        return bool(self._quarantined.get(element))

    def status(self, element: str) -> HealthStatus:
        if self.is_quarantined(element):
            return HealthStatus.QUARANTINED
        breaker = self.breaker(element)
        if (
            breaker.state is not BreakerState.CLOSED
            or breaker.consecutive_failures > 0
        ):
            return HealthStatus.DEGRADED
        return HealthStatus.HEALTHY

    def quarantined(self) -> List[str]:
        return sorted(e for e, q in self._quarantined.items() if q)

    def snapshot(self) -> dict:
        """Deterministic, JSON-ready view of every tracked element."""
        return {
            element: {
                "status": self.status(element).value,
                "breaker": self.breakers[element].as_dict(),
            }
            for element in sorted(self.breakers)
        }

    def _publish(self, breaker: CircuitBreaker) -> None:
        o = obs.current()
        if o.enabled:
            o.gauge(
                "repro_heal_breaker_state",
                "circuit-breaker state per element "
                "(0=closed, 1=half-open, 2=open)",
                element=breaker.element,
            ).set(breaker.gauge_value())
