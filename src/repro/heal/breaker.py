"""Per-element circuit breakers on the campaign's logical clock.

A breaker protects the reconciler (and the elements themselves) from
futile work: after ``failure_threshold`` consecutive failures the
breaker **opens** and the element is left alone for a cool-down period;
once the cool-down elapses the breaker goes **half-open** and admits
probe traffic; a success closes it again, a failure re-opens it with an
escalated cool-down (exponential, capped).  All decisions are pure
functions of the logical clock and the failure history — no wall time,
no randomness — so heal runs stay byte-identical per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class BreakerState(Enum):
    """The classic three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Stable numeric encoding for the breaker-state gauge (Prometheus
#: convention: bigger is worse).
BREAKER_GAUGE_VALUES = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


@dataclass
class CircuitBreaker:
    """One element's breaker; all times are campaign-clock seconds."""

    element: str
    #: Consecutive failures that trip a closed breaker open.
    failure_threshold: int = 3
    #: Cool-down after the first open; doubles (by ``cooldown_multiplier``)
    #: on every subsequent open, capped at ``max_cooldown_s``.
    cooldown_s: float = 60.0
    cooldown_multiplier: float = 2.0
    max_cooldown_s: float = 900.0
    #: Successes needed in half-open before the breaker closes again.
    half_open_successes: int = 1

    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opens: int = 0
    opened_at: Optional[float] = None
    _half_open_streak: int = 0

    def current_cooldown(self) -> float:
        """The cool-down in force for the most recent open."""
        if self.opens == 0:
            return self.cooldown_s
        scaled = self.cooldown_s * (
            self.cooldown_multiplier ** (self.opens - 1)
        )
        return min(scaled, self.max_cooldown_s)

    def allow(self, now: float) -> bool:
        """May the element be contacted at *now*?  (May move open→half-open.)"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if (
                self.opened_at is not None
                and now >= self.opened_at + self.current_cooldown()
            ):
                self.state = BreakerState.HALF_OPEN
                self._half_open_streak = 0
                return True
            return False
        return True  # HALF_OPEN admits probe traffic

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._half_open_streak += 1
            if self._half_open_streak >= self.half_open_successes:
                self.state = BreakerState.CLOSED
                self.consecutive_failures = 0
                self.opened_at = None
        else:
            self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: re-open with an escalated cool-down.
            self._trip(now)
            return
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.opens += 1
        self.opened_at = now
        self.consecutive_failures = 0
        self._half_open_streak = 0

    def gauge_value(self) -> int:
        return BREAKER_GAUGE_VALUES[self.state]

    def as_dict(self) -> dict:
        return {
            "element": self.element,
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
            "opened_at": self.opened_at,
            "cooldown_s": self.current_cooldown(),
        }
