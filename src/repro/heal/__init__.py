"""Self-healing management runtime: drift reconciliation with back-pressure.

The paper's prescriptive loop (Section 6) assumes the shipped
configuration *stays* applied; its verification goal demands noticing
when it doesn't.  This package closes that loop with level-based
reconciliation in the style of declarative network controllers:

* :mod:`repro.heal.breaker` — per-element closed/open/half-open circuit
  breakers with deterministic, escalating cool-downs on the campaign
  clock, so a dead element is probed ever more rarely instead of being
  hammered every round;
* :mod:`repro.heal.registry` — the :class:`HealthRegistry` tracking each
  element as healthy/degraded/quarantined; both the rollout coordinator
  and the reconciler consult it (quarantined elements are skipped);
* :mod:`repro.heal.reconciler` — the :class:`Reconciler` loop: poll each
  element's running-config digest and generation over SNMP, classify
  drift (digest mismatch, generation regression after an agent restart,
  unreachable), re-drive only the drifted elements through a
  :class:`~repro.rollout.coordinator.RolloutCoordinator`, and repeat
  until convergence (zero drift on reachable elements) or quarantine.

Everything runs on logical time and seeded randomness: two same-seed
heal runs produce byte-identical :class:`HealReport`\\ s and metrics
snapshots.  See ``docs/HEALING.md``.
"""

from repro.heal.breaker import BreakerState, CircuitBreaker
from repro.heal.registry import HealthRegistry, HealthStatus
from repro.heal.reconciler import (
    DriftKind,
    HealReport,
    Reconciler,
    RoundReport,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "DriftKind",
    "HealReport",
    "HealthRegistry",
    "HealthStatus",
    "Reconciler",
    "RoundReport",
]
