"""Cooperative per-request deadlines.

A :class:`Deadline` is an absolute expiry instant on *some* clock — wall
time in service mode, a logical clock in the simulated runtime — plus a
cheap ``check()`` that long-running engines call at safe points.  The
clock is injected as a plain ``() -> float`` callable so the same engine
code runs deterministically under the simulated service runtime and in
real time under ``nmsld``:

* the consistency checker polls between reference reductions;
* the rollout coordinator polls between campaign event-loop steps;
* the heal reconciler polls between rounds.

``check()`` raises :class:`~repro.errors.DeadlineExceeded`; the service
layer turns that into a structured 504-style response, never a silent
drop.  A ``None`` deadline everywhere means "no limit", and the helpers
tolerate it so call sites stay one line (``Deadline.poll(deadline, ...)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import DeadlineExceeded

__all__ = ["Deadline", "DeadlineExceeded"]


@dataclass
class Deadline:
    """An absolute expiry instant against an injected clock."""

    at_s: float
    clock: Callable[[], float]
    label: str = ""

    @classmethod
    def after(
        cls, budget_s: float, clock: Callable[[], float], label: str = ""
    ) -> "Deadline":
        """A deadline *budget_s* seconds from the clock's current time."""
        return cls(at_s=clock() + budget_s, clock=clock, label=label)

    def now(self) -> float:
        return self.clock()

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at_s - self.clock()

    @property
    def expired(self) -> bool:
        return self.clock() >= self.at_s

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        now_s = self.clock()
        if now_s >= self.at_s:
            raise DeadlineExceeded(where or self.label, self.at_s, now_s)

    @staticmethod
    def poll(deadline: Optional["Deadline"], where: str = "") -> None:
        """``deadline.check(where)`` that tolerates ``None``."""
        if deadline is not None:
            deadline.check(where)
