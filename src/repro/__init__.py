"""NMSL: Specification and Verification of Network Managers for Large Internets.

A from-scratch reproduction of Cohrs & Miller (SIGCOMM 1989).  The public
API re-exports the pieces a user typically composes:

>>> from repro import NmslCompiler, ConsistencyChecker
>>> compiler = NmslCompiler()
>>> result = compiler.compile(open("internet.nmsl").read())
>>> outcome = ConsistencyChecker(result.specification, compiler.tree).check()
>>> print(outcome.render())

Subpackages
-----------
``repro.nmsl``
    The specification language: lexer, generalized parser (pass 1),
    action-driven semantics (pass 2), extension mechanism, compiler.
``repro.consistency``
    The consistency model of Figure 4.9, the closure-based checker, the
    faithful CLP(R) path, and the speculative/reverse modes.
``repro.codegen``
    Configuration Generators (snmpd-style, ACL table, OSI) and shipping
    transports.
``repro.clpr``
    The CLP(R) substrate: SLD resolution + linear real constraints.
``repro.asn1`` / ``repro.mib`` / ``repro.snmp``
    ASN.1 subset + BER, the RFC 1066 MIB-I, and an SNMPv1 subset.
``repro.netsim``
    The discrete-event internet simulator and the runtime verifier.
``repro.workloads``
    The paper's verbatim examples, a campus scenario, and synthetic
    internets for the scale evaluation.
"""

from repro.nmsl.compiler import (
    CompileResult,
    CompilerOptions,
    NmslCompiler,
    compile_text,
)
from repro.nmsl.extension import Extension, ExtensionAction, parse_extension
from repro.consistency.checker import ConsistencyChecker, check_with_clpr
from repro.consistency.report import ConsistencyResult, Inconsistency, InconsistencyKind
from repro.consistency.speculative import SpeculativeChecker, solve_for_frequency
from repro.codegen.base import ConfigurationGenerator
from repro.codegen.transport import (
    CallbackTransport,
    FileDropTransport,
    MailSpoolTransport,
    ReliableTransport,
)
from repro.netsim.processes import ManagementRuntime
from repro.netsim.monitor import RuntimeVerifier
from repro.netsim.faults import FaultInjector, FaultSpec
from repro.rollout import (
    RetryPolicy,
    RolloutCoordinator,
    RolloutReport,
    RolloutState,
)

__version__ = "1.0.0"

__all__ = [
    "CallbackTransport",
    "CompileResult",
    "CompilerOptions",
    "ConfigurationGenerator",
    "ConsistencyChecker",
    "ConsistencyResult",
    "Extension",
    "ExtensionAction",
    "FaultInjector",
    "FaultSpec",
    "FileDropTransport",
    "Inconsistency",
    "InconsistencyKind",
    "MailSpoolTransport",
    "ManagementRuntime",
    "NmslCompiler",
    "ReliableTransport",
    "RetryPolicy",
    "RolloutCoordinator",
    "RolloutReport",
    "RolloutState",
    "RuntimeVerifier",
    "SpeculativeChecker",
    "check_with_clpr",
    "compile_text",
    "parse_extension",
    "solve_for_frequency",
]
