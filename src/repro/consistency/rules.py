"""The consistency rules as CLP(R) program text (the faithful path).

"The Consistency Checker adds statements describing the consistency of any
NMSL specification to [the compiler's] output and executes the CLP(R)
interpreter" (paper Section 4.2).  These are those statements: the
transitivity rule for containment, the distribution rules for containment
and instantiation over reference and permission, and the reduction rules
relating references to permissions.  The final goal proves
*inconsistency*: a reference with no covering permission, valid under the
closed-world assumption.
"""

CONSISTENCY_RULES = r"""
% ---- transitivity: containment is transitive -------------------------
contains_tc(X, Y) :- contains(X, Y).
contains_tc(X, Z) :- contains(X, Y), contains_tc(Y, Z).

% ---- distribution: instantiation places instances in domains ---------
in_domain(I, D) :- contains_tc(domain(D), instance(I)).
in_domain(I, D) :- instance(I, S, _), contains_tc(domain(D), system(S)).

% ---- instance-level references (distribute queries over instan) ------
% literal process target: the client may reach any instance of it.
ref_inst(I, J, V, A, T) :-
    instance(I, _, P), proc_query(P, proc(Q), V, A, T), instance(J, _, Q).
% parameter target bound at instantiation to a system name.
ref_inst(I, J, V, A, T) :-
    instance(I, _, P), proc_query(P, param(N), V, A, T),
    inst_arg(I, N, system(S)), instance(J, S, _).
% parameter target bound to a process-type name.
ref_inst(I, J, V, A, T) :-
    instance(I, _, P), proc_query(P, param(N), V, A, T),
    inst_arg(I, N, proc(Q)), instance(J, _, Q).

% ---- instance-level permissions (distribute exports over instan) -----
perm_inst(J, D, V, A, T) :-
    instance(J, _, P), proc_export(P, D, V, A, T).
perm_inst(J, D, V, A, T) :-
    instance(J, S, _), contains_tc(domain(G), system(S)),
    dom_export(G, D, V, A, T).
perm_inst(J, D, V, A, T) :-
    contains_tc(domain(G), instance(J)), dom_export(G, D, V, A, T).

% ---- reduction: a permission covers a reference ----------------------
grantee_ok(public, _).
grantee_ok(D, I) :- in_domain(I, D).

server_ok(J, V) :-
    instance(J, S, P),
    proc_supports(P, PV), data_covers(PV, V),
    system_supports(S, SV), data_covers(SV, V).
% proxy management (Section 3.1): an instance of a proxy process serves
% the PROXIED element's data; its translation ability is its own
% supports clause, the data must be on the proxied element.
server_ok(J, V) :-
    instance(J, _, P), proxy_for(P, system(S), _),
    proc_supports(P, PV), data_covers(PV, V),
    system_supports(S, SV), data_covers(SV, V).

% references reaching a proxied element resolve to the proxy instances.
ref_inst(I, J, V, A, T) :-
    instance(I, _, P), proc_query(P, param(N), V, A, T),
    inst_arg(I, N, system(S)), proxy_for(Q, system(S), _), instance(J, _, Q).

covered(I, J, V, A, T) :-
    perm_inst(J, D, PV, PA, PT),
    grantee_ok(D, I),
    data_covers(PV, V),
    access_covers(PA, A),
    T >= PT.

ok(I, J, V, A, T) :- server_ok(J, V), covered(I, J, V, A, T).
% exports govern access from OUTSIDE the domain: sharing an IMMEDIATE
% containing domain implicitly permits the reference (Section 4.1.5);
% a distant common ancestor grants nothing.
in_domain_direct(I, D) :- contains(domain(D), instance(I)).
in_domain_direct(I, D) :- instance(I, S, _), contains(domain(D), system(S)).
ok(I, J, V, A, T) :-
    server_ok(J, V), in_domain_direct(I, D), in_domain_direct(J, D).

% ---- the inconsistency proof (closed world) --------------------------
inconsistent(ref(I, J, V, A, T)) :-
    ref_inst(I, J, V, A, T), \+ ok(I, J, V, A, T).
"""
