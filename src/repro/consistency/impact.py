"""Relational impact analysis: what a spec revision actually changes.

*Relational Network Verification* argues the right verification object
for an evolving network is the **delta** between two states, not each
state in isolation.  This module computes that delta's *impact set* for
a pair of NMSL specification revisions A and B:

* which references changed verdict (broke / fixed / changed causes),
  reusing the incremental recheck so the cost is near-O(change);
* which permissions were widened or tightened, grantor by grantor —
  access-widening grants are the changes worth refusing to ship without
  an explicit waiver (Diekmann, *Provably Secure Networks*);
* which generated per-element configurations change byte-wise (content
  fingerprints from :mod:`repro.codegen.fingerprints`), i.e. which
  elements a rollout must redrive;
* which elements were orphaned (removed from B while still carrying an
  A-side configuration).

The rendering into NM4xx diagnostics lives in
:mod:`repro.analysis.relational`; the rollout gate consuming the impact
set lives in :mod:`repro.rollout.gate`.

Cost model
----------
:meth:`ImpactAnalyzer.analyze` piggybacks on one persistent
:class:`~repro.consistency.checker.ConsistencyChecker`.  On the
exports-only fast path the recheck patches the cached fact set **in
place**, so everything that reads A-side state (config fingerprints for
impacted elements, the permission index snapshot, the verdict snapshot)
is captured *before* the recheck runs; verdict comparison then touches
only the tainted reference positions.  Config fingerprinting is scoped
to the impacted elements by default — ``config_scope="full"`` hashes
every element on both sides, which additionally exposes
config-rewrites-without-spec-cause (NM403) at full-check cost.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.evolution import (
    EvolutionDelta,
    SpecificationDiff,
)
from repro.consistency.relations import Permission, Reference
from repro.consistency.report import ConsistencyResult, Inconsistency
from repro.mib.tree import MibTree
from repro.nmsl.specs import PUBLIC_DOMAIN, Specification

#: The dimensions along which a grant can move.
DIMENSIONS = ("grantee", "view", "access", "frequency")


@dataclass(frozen=True)
class VerdictFlip:
    """One reference whose consistency verdict differs between A and B."""

    kind: str  # "broke" | "fixed" | "changed"
    reference: Reference
    old_problems: Tuple[Inconsistency, ...]
    new_problems: Tuple[Inconsistency, ...]

    def describe(self) -> str:
        return f"{self.kind}: {self.reference.describe()}"


@dataclass(frozen=True)
class PermissionChange:
    """One grant that moved between A and B, classified by direction.

    ``widened``   — B grants authority no A-side grant of this grantor
                    covered (the change a gate must refuse unwaived);
    ``tightened`` — an A-side grant is no longer covered in B;
    ``added``     — a new grant already covered by an A-side grant;
    ``removed``   — a dropped grant still covered by a remaining grant.
    """

    kind: str
    grantor: str
    old: Optional[Permission]
    new: Optional[Permission]
    reasons: Tuple[str, ...] = ()
    #: which of :data:`DIMENSIONS` moved (machine-readable).
    dimensions: Tuple[str, ...] = ()

    def subject(self) -> str:
        return self.grantor.replace(":", " ", 1)


@dataclass(frozen=True)
class ConfigChange:
    """One element whose generated configuration changes byte-wise."""

    element: str
    tag: str
    old_digest: Optional[str]
    new_digest: Optional[str]
    #: False when the rewrite has no corresponding spec-diff cause — a
    #: generator-nondeterminism signal (NM403), only detectable under
    #: ``config_scope="full"``.
    spec_caused: bool = True


@dataclass(frozen=True)
class ImpactSet:
    """The relational impact of evolving a specification from A to B."""

    diff: SpecificationDiff
    verdict_flips: Tuple[VerdictFlip, ...] = ()
    permission_changes: Tuple[PermissionChange, ...] = ()
    config_changes: Tuple[ConfigChange, ...] = ()
    #: elements whose declarations (or containing domains / instantiated
    #: processes) the diff touched — the superset a rollout may stage.
    impacted_elements: FrozenSet[str] = frozenset()
    #: elements removed in B that still carried an A-side configuration.
    orphaned: Tuple[str, ...] = ()
    stats: Dict[str, object] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not (
            self.verdict_flips
            or self.permission_changes
            or self.config_changes
            or self.orphaned
        )

    def widened(self) -> Tuple[PermissionChange, ...]:
        return tuple(
            change
            for change in self.permission_changes
            if change.kind == "widened"
        )

    def redrive_elements(self) -> Tuple[str, ...]:
        """Elements whose shipped configuration must be redriven in B."""
        return tuple(
            sorted(
                {
                    change.element
                    for change in self.config_changes
                    if change.new_digest is not None
                }
            )
        )


# ----------------------------------------------------------------------
# Grant-coverage algebra (the relational core).
# ----------------------------------------------------------------------
def _covers_grant(old: Permission, new: Permission, view, public: str) -> bool:
    """Does A-side grant *old* already confer everything *new* grants?"""
    if old.grantee_domain != public and (
        old.grantee_domain != new.grantee_domain
    ):
        return False
    if not view(old.variables).covers_view(view(new.variables)):
        return False
    if not old.access.permits(new.access):
        return False
    if not new.frequency.covered_by(old.frequency):
        return False
    return True


def _moved_dimensions(
    old: Permission, new: Permission, view, public: str
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(moved dimensions, human reasons) for *new* not covered by *old*."""
    dimensions: List[str] = []
    reasons: List[str] = []
    if old.grantee_domain != public and (
        old.grantee_domain != new.grantee_domain
    ):
        dimensions.append("grantee")
        reasons.append(
            f"grantee moved from {old.grantee_domain!r} "
            f"to {new.grantee_domain!r}"
        )
    if not view(old.variables).covers_view(view(new.variables)):
        dimensions.append("view")
        reasons.append(
            f"granted view grew beyond {', '.join(old.variables)} "
            f"(now {', '.join(new.variables)})"
        )
    if not old.access.permits(new.access):
        dimensions.append("access")
        reasons.append(
            f"access raised from {old.access.value} to {new.access.value}"
        )
    if not new.frequency.covered_by(old.frequency):
        dimensions.append("frequency")
        reasons.append(
            f"frequency loosened from {old.frequency.describe()} "
            f"to {new.frequency.describe()}"
        )
    return tuple(dimensions), tuple(reasons)


def _closest(
    grant: Permission, candidates: Sequence[Permission]
) -> Optional[Permission]:
    """The best A/B-side partner for a moved grant, for readable reasons."""
    for candidate in candidates:
        if (
            candidate.grantee_domain == grant.grantee_domain
            and candidate.variables == grant.variables
        ):
            return candidate
    for candidate in candidates:
        if candidate.grantee_domain == grant.grantee_domain:
            return candidate
    return candidates[0] if candidates else None


def grantor_permission_changes(
    grantor: str,
    old_grants: Sequence[Permission],
    new_grants: Sequence[Permission],
    view,
    public: str = PUBLIC_DOMAIN,
) -> List[PermissionChange]:
    """Classify one grantor's grant movements between A and B.

    Exact value matches cancel first (multiset-wise — grant equality
    ignores source location, so re-parses stay quiet); every surviving
    B-side grant is *widened* unless some A-side grant covers it, and
    every surviving A-side grant is *tightened* unless some B-side grant
    still covers it.
    """
    changes: List[PermissionChange] = []
    added = list((Counter(new_grants) - Counter(old_grants)).elements())
    removed = list((Counter(old_grants) - Counter(new_grants)).elements())
    for grant in added:
        if any(_covers_grant(old, grant, view, public) for old in old_grants):
            changes.append(
                PermissionChange(
                    "added",
                    grantor,
                    old=None,
                    new=grant,
                    reasons=("already covered by an A-side grant",),
                )
            )
            continue
        partner = _closest(grant, old_grants)
        if partner is None:
            dimensions: Tuple[str, ...] = DIMENSIONS
            reasons: Tuple[str, ...] = (
                "no A-side grant from this grantor covers it",
            )
        else:
            dimensions, reasons = _moved_dimensions(
                partner, grant, view, public
            )
        changes.append(
            PermissionChange(
                "widened",
                grantor,
                old=partner,
                new=grant,
                reasons=reasons,
                dimensions=dimensions,
            )
        )
    for grant in removed:
        if any(_covers_grant(new, grant, view, public) for new in new_grants):
            changes.append(
                PermissionChange(
                    "removed",
                    grantor,
                    old=grant,
                    new=None,
                    reasons=("still covered by a remaining B-side grant",),
                )
            )
            continue
        partner = _closest(grant, new_grants)
        if partner is None:
            dimensions = ()
            reasons = ("grant removed",)
        else:
            # The tightening is the reverse movement: what did the old
            # grant confer that the closest new grant no longer does?
            dimensions, reasons = _moved_dimensions(
                partner, grant, view, public
            )
            reasons = tuple(
                reason.replace("raised", "lowered")
                .replace("loosened", "tightened")
                .replace("grew beyond", "shrank from")
                for reason in reasons
            )
        changes.append(
            PermissionChange(
                "tightened",
                grantor,
                old=grant,
                new=partner,
                reasons=reasons,
                dimensions=dimensions,
            )
        )
    return changes


def _verdict_signature(problems: Sequence[Inconsistency]) -> Tuple:
    """Location-free identity of one reference's problem list."""
    return tuple(
        (problem.kind.value, problem.message, tuple(problem.causes))
        for problem in problems
    )


def _flip_kind(old_problems, new_problems) -> str:
    if not old_problems:
        return "broke"
    if not new_problems:
        return "fixed"
    return "changed"


def impacted_elements(
    diff: SpecificationDiff,
    old_spec: Specification,
    new_spec: Specification,
) -> FrozenSet[str]:
    """Network elements the diff could re-configure, from spec tables alone.

    Changed/added/removed domains taint their member systems through the
    subdomain closure (on both sides — membership itself may be what
    changed); changed systems taint themselves; changed processes taint
    every system instantiating them.  No fact expansion needed, so this
    is O(diff) except when processes changed (then one system-table scan).
    """
    impacted: Set[str] = set()
    pending = list(diff.changed_names("domain"))
    seen: Set[str] = set()
    while pending:
        name = pending.pop()
        if name in seen:
            continue
        seen.add(name)
        for spec in (old_spec, new_spec):
            domain = spec.domains.get(name)
            if domain is not None:
                impacted.update(domain.systems)
                pending.extend(domain.subdomains)
    impacted.update(diff.changed_names("system"))
    changed_processes = diff.changed_names("process")
    if changed_processes:
        for spec in (old_spec, new_spec):
            for system in spec.systems.values():
                if any(
                    invocation.process_name in changed_processes
                    for invocation in system.processes
                ):
                    impacted.add(system.name)
    return frozenset(impacted)


class ImpactAnalyzer:
    """Differential verification between successive spec revisions.

    Usage::

        analyzer = ImpactAnalyzer(tree)
        analyzer.baseline(revision_a)      # full check, state remembered
        impact = analyzer.analyze(revision_b)   # near-O(change)

    Successive :meth:`analyze` calls chain: each call diffs against the
    previously analyzed revision, keeping the checker warm throughout.
    """

    def __init__(
        self,
        tree: MibTree,
        *,
        engine: str = "indexed",
        jobs: int = 1,
        tags: Sequence[str] = ("BartsSnmpd",),
        config_scope: str = "impacted",
        registry=None,
    ):
        if config_scope not in ("impacted", "full"):
            raise ValueError(
                f"config_scope must be 'impacted' or 'full', "
                f"not {config_scope!r}"
            )
        self._tree = tree
        self._engine = engine
        self._jobs = jobs
        self._tags = tuple(tags)
        self._config_scope = config_scope
        self._registry = registry
        self._checker: Optional[ConsistencyChecker] = None

    @property
    def checker(self) -> Optional[ConsistencyChecker]:
        return self._checker

    def baseline(self, specification: Specification) -> ConsistencyResult:
        """Full-check revision A and remember its verdicts and facts."""
        self._checker = ConsistencyChecker(
            specification, self._tree, engine=self._engine
        )
        return self._checker.check(jobs=self._jobs)

    def _fingerprints(
        self, specification, elements, facts
    ) -> Dict[str, Dict[str, str]]:
        from repro.codegen.fingerprints import (
            config_fingerprints,
            default_fingerprint_registry,
        )

        if self._registry is None:
            self._registry = default_fingerprint_registry()
        return config_fingerprints(
            specification,
            self._tree,
            tags=self._tags,
            elements=elements,
            facts=facts,
            registry=self._registry,
        )

    def analyze(self, specification: Specification) -> ImpactSet:
        """The impact set of evolving the last-seen revision to B."""
        checker = self._checker
        if checker is None:
            raise RuntimeError(
                "ImpactAnalyzer.analyze needs a baseline() first"
            )
        old_spec = checker.specification
        delta = EvolutionDelta.between(old_spec, specification)
        diff = delta.diff

        impacted = impacted_elements(diff, old_spec, specification)
        removed_systems = sorted(
            entry.name
            for entry in diff.entries
            if entry.kind == "system" and entry.change == "removed"
        )

        # ---- A-side state, captured before the recheck can patch the
        # cached fact set in place (the exports-only fast path mutates
        # facts.permissions and the grantor index rather than building a
        # new FactSet).
        old_facts = checker.facts
        if self._config_scope == "full":
            old_scope = None
        else:
            old_scope = sorted(
                {name for name in impacted if name in old_spec.systems}
                | set(removed_systems)
            )
        old_prints = (
            self._fingerprints(old_spec, old_scope, old_facts)
            if old_scope is None or old_scope
            else {tag: {} for tag in self._tags}
        )
        old_by_grantor = dict(old_facts.permissions_by_grantor())
        old_verdicts = checker.reference_verdicts()
        old_instance_grantors = self._instance_grantors(diff, old_facts)

        result = checker.recheck(delta, jobs=self._jobs)
        new_facts = checker.facts

        # ---- B-side fingerprints over the impacted scope.
        if self._config_scope == "full":
            new_scope = None
        else:
            new_scope = sorted(
                name for name in impacted if name in specification.systems
            )
        new_prints = (
            self._fingerprints(specification, new_scope, new_facts)
            if new_scope is None or new_scope
            else {tag: {} for tag in self._tags}
        )

        verdict_flips = self._verdict_flips(
            diff, result, old_verdicts, checker, new_facts
        )
        permission_changes = self._permission_changes(
            diff,
            old_by_grantor,
            new_facts,
            old_instance_grantors,
            checker,
        )
        config_changes: List[ConfigChange] = []
        for tag in self._tags:
            old_map = old_prints.get(tag, {})
            new_map = new_prints.get(tag, {})
            for element in sorted(set(old_map) | set(new_map)):
                old_digest = old_map.get(element)
                new_digest = new_map.get(element)
                if old_digest != new_digest:
                    config_changes.append(
                        ConfigChange(
                            element,
                            tag,
                            old_digest,
                            new_digest,
                            spec_caused=(
                                element in impacted
                                or element in removed_systems
                            ),
                        )
                    )
        orphaned = tuple(
            name
            for name in removed_systems
            if any(name in old_prints.get(tag, {}) for tag in self._tags)
        )
        stats = {
            "diff_entries": len(diff),
            "patched": result.stats.get("patched", False),
            "rechecked": result.stats.get("rechecked", 0),
            "reused": result.stats.get("reused", 0),
            "impacted_elements": len(impacted),
            "verdict_flips": len(verdict_flips),
            "permission_changes": len(permission_changes),
            "config_changes": len(config_changes),
            "seconds": result.stats.get("seconds", 0.0),
        }
        return ImpactSet(
            diff=diff,
            verdict_flips=tuple(verdict_flips),
            permission_changes=tuple(permission_changes),
            config_changes=tuple(config_changes),
            impacted_elements=impacted,
            orphaned=orphaned,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Verdict comparison.
    # ------------------------------------------------------------------
    def _verdict_flips(
        self, diff, result, old_verdicts, checker, new_facts
    ) -> List[VerdictFlip]:
        flips: List[VerdictFlip] = []
        new_verdicts = checker.reference_verdicts() or []
        if old_verdicts is None:
            old_verdicts = []
        if result.stats.get("patched"):
            # Same reference list by position; only tainted positions can
            # have moved (everything else reused its verdict verbatim).
            index, wildcard = new_facts.domain_reference_taint()
            tainted = set(wildcard)
            for name in diff.changed_names("domain"):
                tainted.update(index.get(name, ()))
            for position in sorted(tainted):
                reference, new_problems = new_verdicts[position]
                old_problems = old_verdicts[position][1]
                if _verdict_signature(old_problems) != _verdict_signature(
                    new_problems
                ):
                    flips.append(
                        VerdictFlip(
                            _flip_kind(old_problems, new_problems),
                            reference,
                            tuple(old_problems),
                            tuple(new_problems),
                        )
                    )
            return flips
        # Regenerated facts: align by reference key, like the recheck's
        # own verdict-reuse path (O(references), the same order the
        # non-patched recheck already paid).
        key = ConsistencyChecker._reference_key
        old_map = {
            key(reference): (reference, problems)
            for reference, problems in old_verdicts
        }
        new_keys = set()
        for reference, new_problems in new_verdicts:
            reference_key = key(reference)
            new_keys.add(reference_key)
            old_entry = old_map.get(reference_key)
            old_problems = old_entry[1] if old_entry is not None else ()
            if _verdict_signature(old_problems) != _verdict_signature(
                new_problems
            ):
                flips.append(
                    VerdictFlip(
                        _flip_kind(old_problems, new_problems),
                        reference,
                        tuple(old_problems),
                        tuple(new_problems),
                    )
                )
        for reference_key, (reference, old_problems) in old_map.items():
            if reference_key not in new_keys and old_problems:
                # The offending reference itself disappeared in B.
                flips.append(
                    VerdictFlip("fixed", reference, tuple(old_problems), ())
                )
        return flips

    # ------------------------------------------------------------------
    # Permission comparison.
    # ------------------------------------------------------------------
    @staticmethod
    def _instance_grantors(diff, facts) -> Set[str]:
        """Instance grantor tags the diff could re-grant.

        Empty for domain-only deltas without an instance scan, keeping
        the exports-only fast path O(change).
        """
        changed_processes = diff.changed_names("process")
        changed_systems = diff.changed_names("system")
        if not changed_processes and not changed_systems:
            return set()
        keys: Set[str] = set()
        for instance in facts.instances:
            if instance.process_name in changed_processes or (
                instance.owner_kind == "system"
                and instance.owner in changed_systems
            ):
                keys.add(f"instance:{instance.id}")
        return keys

    def _permission_changes(
        self,
        diff,
        old_by_grantor,
        new_facts,
        old_instance_grantors,
        checker,
    ) -> List[PermissionChange]:
        grantors = {
            f"domain:{name}" for name in diff.changed_names("domain")
        }
        grantors.update(old_instance_grantors)
        grantors.update(self._instance_grantors(diff, new_facts))
        if not grantors:
            return []
        new_by_grantor = new_facts.permissions_by_grantor()
        changes: List[PermissionChange] = []
        for grantor in sorted(grantors):
            changes.extend(
                grantor_permission_changes(
                    grantor,
                    old_by_grantor.get(grantor, ()),
                    new_by_grantor.get(grantor, ()),
                    checker.view,
                    PUBLIC_DOMAIN,
                )
            )
        return changes
