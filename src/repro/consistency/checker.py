"""The Consistency Checker: prove inconsistency, report causes.

Three implementations of the paper's model:

* :class:`ConsistencyChecker` with ``engine="indexed"`` (the default) —
  the scalable path.  Reference→permission coverage goes through the
  :class:`~repro.consistency.index.PermissionIndex` (per-server OID-prefix
  buckets instead of permission scans), views are interned, coverage
  verdicts are memoized per reference shape, and the reduction step can
  be sharded per administrative domain across a thread pool (``jobs``).
  This is what the Section 3.1 scale goal demands.

* ``engine="scan"`` — the original closure implementation kept verbatim
  as the ablation baseline: containment closure and expansion in Python,
  reduction by scanning each reference's candidate permissions.

* :func:`check_with_clpr` — the faithful path.  The compiler's CLP(R)
  consistency output (:meth:`FactSet.to_clpr_text`) plus the rule text of
  :mod:`repro.consistency.rules` are handed to the
  :class:`repro.clpr.Engine`, and ``inconsistent(R)`` is queried — exactly
  the architecture of paper Figure 3.1.  Wildcard (``*``) query targets
  are outside this path (their values are unknown until run time); the
  scalable path checks them existentially.

Whatever the engine, reports are identical: the indexed path decides
coverage fast and falls back to the scan's detailed cause analysis only
for the (rare) uncovered references, so the differential test suite can
hold all paths to the same verdicts *and* the same rendered causes.

The checker's fact set, view cache and verdict memos are keyed by the
specification fingerprint (:meth:`Specification.fingerprint`), so
mutating the specification between ``check()`` calls is safe — the next
check regenerates what the mutation staled.

The ablation benchmark ``benchmarks/bench_consistency.py`` compares the
engines; ``ConsistencyChecker.recheck`` is the incremental API used by
:class:`repro.consistency.evolution.DeltaChecker`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import gc
import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs

from repro.clpr.program import parse_program
from repro.clpr.solver import Engine
from repro.clpr.terms import Struct
from repro.consistency.facts import (
    FactGenerator,
    FactSet,
    IncrementalFactGenerator,
    InstanceId,
)
from repro.consistency.index import PermissionIndex
from repro.consistency.relations import (
    Permission,
    Reference,
    permission_covers,
)
from repro.consistency.report import (
    ConsistencyResult,
    Inconsistency,
    InconsistencyKind,
)
from repro.consistency.rules import CONSISTENCY_RULES
from repro.mib.tree import MibTree
from repro.mib.view import MibView
from repro.nmsl.specs import Specification, PUBLIC_DOMAIN

#: Below this many references a shard pool costs more than it saves.
_MIN_REFERENCES_PER_JOB = 64

#: Serial reductions between cooperative deadline polls (cheap: one
#: clock read per poll, so the unloaded path stays unmeasurable).
_DEADLINE_POLL_REFERENCES = 32

#: Fork-inherited state for reduction workers: (checker, facts, buckets).
#: Set immediately before the pool forks and cleared after the merge, so
#: workers read the parent's checker without pickling the fact set.
_WORKER_STATE: Optional[Tuple] = None


@contextlib.contextmanager
def frozen_fork_heap():
    """Freeze the GC heap around a fork so children share pages cleanly.

    Forked workers inherit the parent's heap copy-on-write; a GC pass in
    either side rewrites object headers and duplicates every touched
    page.  Collecting then freezing immediately before the fork keeps
    the shared structures (fact sets, warm spec caches) on read-only
    pages for the workers' lifetime.  Used by the ``--jobs`` shard
    reduction below and by the service worker pool
    (:mod:`repro.service.pool`), which forks long-lived workers off the
    same warm heap.
    """
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


def _reduce_shard_worker(bucket_index: int):
    """Reduce one shard bucket inside a forked worker process.

    Returns ``(verdicts, tallies)``: the per-position verdict tuples and
    the memo/index counter deltas this worker accrued, which the parent
    folds back into its own tallies so obs metrics aggregate across
    workers.  Module-level so the fork-context pool can name it.
    """
    checker, facts, buckets = _WORKER_STATE
    o = obs.current()
    tracer = getattr(o, "tracer", None)
    # Everything recorded past this mark was closed by *this* worker;
    # the fork inherited the parent's records below it.
    span_mark = len(tracer) if tracer is not None else 0
    hits_before = dict(checker._memo_hits)
    misses_before = dict(checker._memo_misses)
    index = (
        checker._permission_index(facts)
        if checker._engine == "indexed"
        else None
    )
    index_before = (index.hits, index.misses) if index is not None else (0, 0)
    # The fork preserved this thread's span stack, so the shard span
    # parents onto the request's in-flight consistency.check span and
    # carries its trace id into the worker subtree.
    with o.span(
        "consistency.shard",
        bucket=bucket_index,
        references=len(buckets[bucket_index]),
    ):
        results = [
            (position, checker._reference_problems(reference, facts))
            for position, reference in buckets[bucket_index]
        ]
    tallies = {
        "memo_hits": {
            memo: checker._memo_hits[memo] - hits_before[memo]
            for memo in checker._memo_hits
        },
        "memo_misses": {
            memo: checker._memo_misses[memo] - misses_before[memo]
            for memo in checker._memo_misses
        },
        "index_hits": (index.hits - index_before[0]) if index else 0,
        "index_misses": (index.misses - index_before[1]) if index else 0,
        "spans": (
            tracer.export_spans(since=span_mark)
            if tracer is not None
            else []
        ),
    }
    return results, tallies


class ConsistencyChecker:
    """Closure-based consistency checking over a typed specification."""

    def __init__(
        self,
        specification: Specification,
        tree: MibTree,
        public_domain: str = PUBLIC_DOMAIN,
        *,
        engine: str = "indexed",
        generator: Optional[IncrementalFactGenerator] = None,
        shard_threshold: Optional[int] = None,
    ):
        if engine not in ("indexed", "scan"):
            raise ValueError(f"unknown consistency engine {engine!r}")
        self._spec = specification
        self._tree = tree
        self._public = public_domain
        self._engine = engine
        self._generator = generator or (
            IncrementalFactGenerator(tree) if engine == "indexed" else None
        )
        #: Minimum pending references before ``jobs`` shards the
        #: reduction; overridable so the sharding oracle tests can force
        #: multi-process reduction on small corpora.
        self._shard_threshold = (
            _MIN_REFERENCES_PER_JOB if shard_threshold is None
            else shard_threshold
        )
        self._facts: Optional[FactSet] = None
        self._facts_fingerprint: Optional[Tuple] = None
        self._view_cache: Dict[Tuple[str, ...], MibView] = {}
        #: Verdicts of the last check, aligned by position with the
        #: reference list they were computed over (recheck fuel).
        self._verdict_list: Optional[List[Tuple[Inconsistency, ...]]] = None
        self._checked_references: Optional[List[Reference]] = None
        # Per-fact-set state (reset whenever the fingerprint changes):
        self._index: Optional[PermissionIndex] = None
        self._candidate_memo: Dict[str, Tuple] = {}
        self._shape_memo: Dict[Tuple, Tuple[Inconsistency, ...]] = {}
        # Pure view-pair memos (views are interned; results never stale):
        self._cover_memo: Dict[Tuple[int, int], bool] = {}
        self._fit_memo: Dict[Tuple[int, int], Tuple] = {}
        self._memo_pins: List[MibView] = []  # keep ids in the memos alive
        #: Instantiation verdicts for the current fact-set object; an
        #: exports-only patch leaves instances and views untouched, so
        #: the recheck path reuses these instead of re-walking every
        #: instance (identity-keyed: regeneration makes a new FactSet).
        self._instantiation_memo: Optional[
            Tuple[FactSet, Tuple[Inconsistency, ...], Tuple[str, ...]]
        ] = None
        # Plain-int memo tallies — cheap enough to keep unconditionally;
        # published to repro.obs after each check when enabled.
        self._memo_hits: Dict[str, int] = {
            "shape": 0, "cover": 0, "fit": 0, "candidate": 0
        }
        self._memo_misses: Dict[str, int] = {
            "shape": 0, "cover": 0, "fit": 0, "candidate": 0
        }
        self._published: Dict[Tuple, float] = {}
        self._published_registry = None

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def specification(self) -> Specification:
        return self._spec

    @property
    def facts(self) -> FactSet:
        """The expanded fact set, keyed by the specification fingerprint.

        Regenerated (and all per-fact-set memos dropped) whenever the
        specification's structural fingerprint changes — including
        in-place mutation of the specification the checker was built
        with.
        """
        fp_tuple = self._spec.fingerprint_tuple()
        if self._facts is None or not self._fingerprints_match(
            self._facts_fingerprint, fp_tuple
        ):
            if self._generator is not None:
                self._facts = self._generator.generate(
                    self._spec, fingerprint_tuple=fp_tuple
                )
            else:
                self._facts = FactGenerator(self._spec, self._tree).generate()
            self._facts_fingerprint = fp_tuple
            self._view_cache = {}
            self._index = None
            self._candidate_memo = {}
            self._shape_memo = {}
        elif self._facts.expansion:
            # Wholesale reuse: this access expanded no declarations.
            declarations = self._facts.expansion.get("declarations", 0)
            self._facts.expansion = {
                "expanded": 0,
                "reused": declarations,
                "declarations": declarations,
            }
        return self._facts

    @staticmethod
    def _fingerprints_match(old: Optional[Tuple], new: Tuple) -> bool:
        """Whether two whole-spec fingerprint tuples are equal.

        Identity-aware: the per-table memo in
        :meth:`Specification.fingerprint_tuple` returns the *same* table
        tuples while a table is unchanged, so the common case is a few
        pointer comparisons — hashing a 100,000-entry fingerprint on
        every ``facts`` access is exactly what the paper-scale budget
        cannot afford.  Falls back to value equality per element.
        """
        if old is None or len(old) != len(new):
            return False
        if old is new:
            return True
        return all(a is b or a == b for a, b in zip(old, new))

    # ------------------------------------------------------------------
    # The check.
    # ------------------------------------------------------------------
    def check(
        self,
        check_capacity: bool = False,
        jobs: int = 1,
        deadline=None,
    ) -> ConsistencyResult:
        o = obs.current()
        with o.span("consistency.check", engine=self._engine, jobs=jobs) as span:
            if deadline is not None:
                deadline.check("consistency.check")
            with o.span("consistency.facts"):
                facts = self.facts
            problems: List[Inconsistency] = []
            warnings: List[str] = list(facts.warnings)

            inst_problems, inst_warnings = self._instantiation_problems(facts)
            problems.extend(inst_problems)
            warnings.extend(inst_warnings)
            with o.span("consistency.reduce", references=len(facts.references)):
                verdicts = self._reduce(
                    facts,
                    list(enumerate(facts.references)),
                    jobs,
                    deadline=deadline,
                )
            self._verdict_list = [
                verdicts[position]
                for position in range(len(facts.references))
            ]
            self._checked_references = facts.references
            for verdict in self._verdict_list:
                problems.extend(verdict)
            if self._engine == "indexed":
                # Prime the per-domain taint index now, while we are on
                # the full-check clock, so the first incremental recheck
                # does not pay for building it.
                facts.domain_reference_taint()
            if check_capacity:
                warnings.extend(self._check_capacity(facts))
            span.annotate(inconsistencies=len(problems))

        stats = {
            "instances": len(facts.instances),
            "references": len(facts.references),
            "permissions": len(facts.permissions),
            "containment_edges": len(facts.containment),
            "engine": self._engine,
            "jobs": jobs,
            "seconds": span.elapsed,
        }
        stats.update(
            {f"facts_{key}": value for key, value in facts.expansion.items()}
        )
        if o.enabled:
            self._publish_metrics(o, facts, consistent=not problems)
        return ConsistencyResult(
            consistent=not problems,
            inconsistencies=problems,
            warnings=warnings,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Incremental re-checking (the evolution API).
    # ------------------------------------------------------------------
    def recheck(
        self,
        delta,
        check_capacity: bool = False,
        jobs: int = 1,
        deadline=None,
    ) -> ConsistencyResult:
        """Re-check after an evolution delta, reusing unaffected verdicts.

        *delta* is an :class:`repro.consistency.evolution.EvolutionDelta`
        (or a plain new :class:`Specification`, diffed against the
        current one).  Fact expansion is incremental — only declarations
        the delta touched are re-expanded (see
        :class:`IncrementalFactGenerator`) — and only references whose
        client, server or containing domains changed are re-reduced; the
        rest reuse their remembered verdicts.  The result is equal to a
        from-scratch :meth:`check` of the new specification (asserted by
        the differential and property suites).
        """
        from repro.consistency.evolution import (
            EvolutionDelta,
            affected_entities,
            diff_specifications,
            reference_affected,
        )

        if isinstance(delta, Specification):
            delta = EvolutionDelta(
                specification=delta,
                diff=diff_specifications(self._spec, delta),
            )
        o = obs.current()
        with o.span(
            "consistency.recheck", engine=self._engine, jobs=jobs
        ) as span:
            previous_list = (
                self._verdict_list if self._facts is not None else None
            )
            previous_references = self._checked_references
            # The exports-only fast path: a delta that touches nothing
            # but domain export clauses patches the cached fact set in
            # place (references, instances, containment and views are
            # untouched by construction), so the millisecond budget is
            # spent on the few re-reduced references, not on fact
            # regeneration.
            patched = self._try_export_patch(delta)
            self._spec = delta.specification
            with o.span("consistency.facts"):
                facts = self._facts if patched else self.facts
            problems: List[Inconsistency] = []
            warnings: List[str] = list(facts.warnings)
            inst_problems, inst_warnings = self._instantiation_problems(facts)
            problems.extend(inst_problems)
            warnings.extend(inst_warnings)

            rechecked = reused = 0
            new_list: List[Tuple[Inconsistency, ...]] = (
                [()] * len(facts.references)
            )
            if previous_list is None or previous_references is None:
                pending = list(enumerate(facts.references))
            elif patched:
                # Same reference list, so verdicts are reusable by
                # position; only positions the changed domains taint
                # (per the precomputed taint index) are re-reduced.
                tainted = self._tainted_positions(delta.diff, facts)
                pending = [
                    (position, facts.references[position])
                    for position in sorted(tainted)
                ]
                for position in range(len(facts.references)):
                    if position not in tainted:
                        new_list[position] = previous_list[position]
                        reused += 1
            else:
                previous_verdicts = {
                    self._reference_key(reference): previous_list[position]
                    for position, reference in enumerate(previous_references)
                }
                affected = affected_entities(delta.diff, facts)
                pending = []
                for position, reference in enumerate(facts.references):
                    key = self._reference_key(reference)
                    if key in previous_verdicts and not reference_affected(
                        reference, affected
                    ):
                        new_list[position] = previous_verdicts[key]
                        reused += 1
                    else:
                        pending.append((position, reference))
            with o.span("consistency.reduce", references=len(pending)):
                computed = self._reduce(facts, pending, jobs, deadline=deadline)
            for position, _reference in pending:
                new_list[position] = computed[position]
                rechecked += 1
            self._verdict_list = new_list
            self._checked_references = facts.references
            for verdict in new_list:
                problems.extend(verdict)
            if check_capacity:
                warnings.extend(self._check_capacity(facts))
            span.annotate(rechecked=rechecked, reused=reused, patched=patched)

        stats = {
            "instances": len(facts.instances),
            "references": len(facts.references),
            "permissions": len(facts.permissions),
            "rechecked": rechecked,
            "reused": reused,
            "diff_entries": len(delta.diff),
            "patched": patched,
            "engine": self._engine,
            "jobs": jobs,
            "seconds": span.elapsed,
        }
        stats.update(
            {f"facts_{key}": value for key, value in facts.expansion.items()}
        )
        if o.enabled:
            self._publish_metrics(o, facts, consistent=not problems)
        return ConsistencyResult(
            consistent=not problems,
            inconsistencies=problems,
            warnings=warnings,
            stats=stats,
        )

    def cache_tallies(self) -> Dict[str, int]:
        """Cumulative memo + index hit/miss totals.

        Callers that want *per-request* cache behaviour (the service's
        resource accounting) snapshot this before and after a check and
        difference the totals.
        """
        hits = sum(self._memo_hits.values())
        misses = sum(self._memo_misses.values())
        if self._index is not None:
            hits += self._index.hits
            misses += self._index.misses
        return {"hits": hits, "misses": misses}

    # ------------------------------------------------------------------
    # Metrics publication (tallies stay plain ints on the hot path).
    # ------------------------------------------------------------------
    def _publish_metrics(self, o, facts: FactSet, consistent: bool) -> None:
        """Flush cumulative tallies into the active metrics registry.

        Tallies accumulate for the checker's lifetime; only the delta
        since the last publish to *this* registry is added, so repeated
        checks never double-count and a fresh ``obs.scope()`` starts
        from zero.
        """
        if self._published_registry is not o.metrics:
            self._published = {}
            self._published_registry = o.metrics
        o.counter(
            "repro_consistency_checks_total",
            "consistency checks run",
            engine=self._engine,
        ).inc()
        for kind, count in (
            ("instances", len(facts.instances)),
            ("references", len(facts.references)),
            ("permissions", len(facts.permissions)),
            ("containment_edges", len(facts.containment)),
        ):
            o.gauge(
                "repro_consistency_facts",
                "fact counts from the last checked fact set",
                kind=kind,
            ).set(count)
        hits = misses = 0
        for memo in sorted(self._memo_hits):
            hits += self._memo_hits[memo]
            misses += self._memo_misses[memo]
            self._flush_counter(
                o,
                "repro_consistency_memo_hits_total",
                self._memo_hits[memo],
                "coverage-memo lookups answered from cache",
                memo=memo,
            )
            self._flush_counter(
                o,
                "repro_consistency_memo_misses_total",
                self._memo_misses[memo],
                "coverage-memo lookups computed fresh",
                memo=memo,
            )
        if self._index is not None:
            self._flush_counter(
                o,
                "repro_consistency_index_hits_total",
                self._index.hits,
                "PermissionIndex lookups that found a covering permission",
            )
            self._flush_counter(
                o,
                "repro_consistency_index_misses_total",
                self._index.misses,
                "PermissionIndex lookups that found none",
            )
        if hits + misses:
            o.gauge(
                "repro_consistency_cache_hit_ratio",
                "memo hits / lookups over this checker's lifetime",
            ).set(round(hits / (hits + misses), 9))

    def _flush_counter(
        self, o, name: str, value: float, help_text: str, **labels: str
    ) -> None:
        key = (name, tuple(sorted(labels.items())))
        last = self._published.get(key, 0)
        if value > last:
            o.counter(name, help_text, **labels).inc(value - last)
            self._published[key] = value

    @staticmethod
    def _reference_key(reference: Reference) -> Tuple:
        return (
            reference.client,
            reference.server,
            reference.variables,
            reference.access,
            reference.frequency.as_tuple(),
            reference.client_domains,
        )

    # ------------------------------------------------------------------
    # Incremental helpers: the exports-only patch and its taint set.
    # ------------------------------------------------------------------
    def _instantiation_problems(
        self, facts: FactSet
    ) -> Tuple[Tuple[Inconsistency, ...], Tuple[str, ...]]:
        """Instantiation verdicts, memoized per fact-set object.

        Valid as long as the fact set's instances and views are the ones
        the verdicts were computed over — exactly the identity of the
        ``FactSet`` (regeneration builds a new one; the exports-only
        patch leaves instances and views alone).
        """
        memo = self._instantiation_memo
        if memo is not None and memo[0] is facts:
            return memo[1], memo[2]
        warnings: List[str] = []
        problems = tuple(self._check_instantiations(facts, warnings))
        self._instantiation_memo = (facts, problems, tuple(warnings))
        return problems, self._instantiation_memo[2]

    def _tainted_positions(self, diff, facts: FactSet) -> Set[int]:
        """Reference positions a patched domain delta could re-verdict."""
        index, wildcard = facts.domain_reference_taint()
        tainted: Set[int] = set(wildcard)
        for name in diff.changed_names("domain"):
            tainted.update(index.get(name, ()))
        return tainted

    def _try_export_patch(self, delta) -> bool:
        """Patch the cached facts in place for an exports-only delta.

        Sound only when the delta changes *nothing but domain export
        clauses*: instances, containment, references and views are then
        functions of unchanged declarations, so swapping the domain-
        granted permissions (and the specification pointer) yields
        exactly the fact set a cold generation of the new specification
        would build — in microseconds instead of a full expansion.
        Returns False (leaving all state untouched) in every other case.
        """
        facts = self._facts
        if (
            facts is None
            or self._engine != "indexed"
            or self._verdict_list is None
            or self._checked_references is not facts.references
            or not delta.diff.entries
        ):
            return False
        old_spec, new_spec = self._spec, delta.specification
        changed: Dict[str, object] = {}
        for entry in delta.diff.entries:
            if entry.kind != "domain" or entry.change != "changed":
                return False
            old = old_spec.domains.get(entry.name)
            new = new_spec.domains.get(entry.name)
            if old is None or new is None:
                return False
            if (
                sorted(old.systems) != sorted(new.systems)
                or sorted(old.subdomains) != sorted(new.subdomains)
                or [(p.process_name, p.args) for p in old.processes]
                != [(p.process_name, p.args) for p in new.processes]
            ):
                return False
            changed[entry.name] = new
        # The diff tracks processes/systems/domains; everything else in
        # the fingerprint must be shared or value-equal for the patch to
        # be sound.
        if not self._same_entries(old_spec.types, new_spec.types):
            return False
        if (
            old_spec.extras != new_spec.extras
            or old_spec.extension_clauses != new_spec.extension_clauses
        ):
            return False
        # Domain-granted permissions form the tail of the permission
        # list (generation order: instance grants first); rebuild just
        # that tail in the new specification's declaration order.
        by_grantor = facts.permissions_by_grantor()
        split = len(facts.permissions)
        while split and facts.permissions[split - 1].grantor.startswith(
            "domain:"
        ):
            split -= 1
        new_permissions = facts.permissions[:split]
        new_grants: Dict[str, List[Permission]] = {}
        for domain in new_spec.domains.values():
            replacement = changed.get(domain.name)
            if replacement is None:
                new_permissions.extend(
                    by_grantor.get(f"domain:{domain.name}", ())
                )
                continue
            grants: List[Permission] = []
            for export in replacement.exports:
                grants.append(
                    Permission(
                        grantor=f"domain:{domain.name}",
                        grantor_domains=(domain.name,),
                        grantee_domain=export.to_domain,
                        variables=export.variables,
                        access=export.access,
                        frequency=export.frequency,
                        origin=f"domain {domain.name} exports",
                        location=export.location,
                    )
                )
            new_permissions.extend(grants)
            new_grants[domain.name] = grants
        facts.permissions = new_permissions
        # Patch the grantor index in place: every unchanged entry still
        # holds the exact Permission objects in new_permissions, so only
        # the changed domains' grants move (rebuilding the index walks
        # every permission — a paper-scale internet has 100,000+).
        for name, grants in new_grants.items():
            key = f"domain:{name}"
            if grants:
                by_grantor[key] = grants
            else:
                by_grantor.pop(key, None)
        facts.specification = new_spec
        declarations = (
            len(new_spec.processes)
            + len(new_spec.systems)
            + len(new_spec.domains)
        )
        facts.expansion = {
            "expanded": len(changed),
            "reused": declarations - len(changed),
            "declarations": declarations,
        }
        # Permission-dependent state restarts; views, candidate sets and
        # the containment closure survive (none read permissions).
        self._index = None
        self._shape_memo = {}
        if self._generator is not None:
            for name in changed:
                domain = new_spec.domains[name]
                self._generator.note_declaration(
                    "domain", name, domain.fingerprint_tuple()
                )
        # Splice the changed domains' entry fingerprints into old_spec's
        # memoised table fingerprints rather than re-walking every
        # declaration — at paper scale the full walk dominates an
        # incremental recheck's budget.
        new_spec.adopt_patched_fingerprints(old_spec, changed)
        self._facts_fingerprint = new_spec.fingerprint_tuple()
        return True

    @staticmethod
    def _same_entries(old: Dict, new: Dict) -> bool:
        """Whether two declaration tables hold identical entry objects."""
        if old is new:
            return True
        if len(old) != len(new):
            return False
        return all(new.get(name) is spec for name, spec in old.items())

    # ------------------------------------------------------------------
    # The reduction step, optionally sharded per administrative domain
    # across forked worker processes.
    # ------------------------------------------------------------------
    def _reduce(
        self,
        facts: FactSet,
        pending: List[Tuple[int, Reference]],
        jobs: int = 1,
        deadline=None,
    ) -> Dict[int, Tuple[Inconsistency, ...]]:
        """Verdicts (by reference position) for the pending references.

        With ``jobs > 1`` and enough pending work, references are
        sharded by client administrative domain, shards are dealt
        round-robin (in sorted key order) onto ``jobs`` buckets, and the
        buckets reduce in parallel — in forked worker processes where
        the platform has ``fork``, threads otherwise.  The merge is
        deterministic: verdicts are keyed by reference position, and
        every verdict is a pure function of (reference, facts), so the
        result is byte-identical to a serial reduction regardless of
        worker scheduling.  Worker memo/index tallies are folded back
        into the parent so obs metrics aggregate across workers.

        A *deadline* (:class:`repro.deadline.Deadline`) is polled every
        :data:`_DEADLINE_POLL_REFERENCES` reductions on the serial path
        and at shard boundaries on the parallel one (deadline clocks are
        closures and do not cross a fork), so an ``nmsld`` request whose
        budget expires mid-check aborts with
        :class:`~repro.errors.DeadlineExceeded` instead of finishing a
        check nobody is waiting for.
        """
        if jobs <= 1 or len(pending) < self._shard_threshold:
            verdicts: Dict[int, Tuple[Inconsistency, ...]] = {}
            for serial, (position, reference) in enumerate(pending):
                if deadline is not None and (
                    serial % _DEADLINE_POLL_REFERENCES == 0
                ):
                    deadline.check("consistency.reduce")
                verdicts[position] = self._reference_problems(reference, facts)
            return verdicts
        if deadline is not None:
            deadline.check("consistency.reduce")
        shards: Dict[str, List[Tuple[int, Reference]]] = {}
        for position, reference in pending:
            key = (
                reference.client_domains[0]
                if reference.client_domains
                else reference.client
            )
            shards.setdefault(key, []).append((position, reference))
        buckets: List[List[Tuple[int, Reference]]] = [[] for _ in range(jobs)]
        for shard_index, key in enumerate(sorted(shards)):
            buckets[shard_index % jobs].extend(shards[key])
        buckets = [bucket for bucket in buckets if bucket]

        verdicts: Dict[int, Tuple[Inconsistency, ...]] = {}
        if "fork" in multiprocessing.get_all_start_methods():
            global _WORKER_STATE
            # Build the shared lazy structures once in the parent so
            # every worker inherits them via copy-on-write instead of
            # rebuilding its own.
            if self._engine == "indexed":
                self._permission_index(facts)
            facts.direct_domains_map()
            facts.transitive_containment()
            facts.permissions_by_grantor()
            _WORKER_STATE = (self, facts, buckets)
            # Freeze the heap so the collector never rewrites object
            # headers in the workers: at paper scale the fact set is
            # hundreds of MB, and every page a worker's GC pass touches
            # is a page copy-on-write duplicates.
            try:
                with frozen_fork_heap():
                    context = multiprocessing.get_context("fork")
                    with context.Pool(processes=len(buckets)) as pool:
                        outcomes = pool.map(
                            _reduce_shard_worker, range(len(buckets))
                        )
            finally:
                _WORKER_STATE = None
            o = obs.current()
            for results, tallies in outcomes:
                for position, verdict in results:
                    verdicts[position] = verdict
                for memo, delta in tallies["memo_hits"].items():
                    self._memo_hits[memo] += delta
                for memo, delta in tallies["memo_misses"].items():
                    self._memo_misses[memo] += delta
                if self._index is not None:
                    self._index.hits += tallies["index_hits"]
                    self._index.misses += tallies["index_misses"]
                # Re-attach each worker's span subtree, in bucket order
                # (pool.map preserves it), so the splice is as
                # deterministic as the verdict merge.
                o.splice_spans(tallies.get("spans") or [])
        else:
            # No fork on this platform: same shards, same merge, worker
            # threads instead of processes.  Pool threads have empty
            # span stacks, so they adopt the submitting thread's
            # context to keep shard spans inside the request's trace.
            o = obs.current()
            parent_context = o.current_context()

            def reduce_bucket(
                indexed_bucket: Tuple[int, List[Tuple[int, Reference]]]
            ):
                bucket_index, bucket = indexed_bucket
                with o.adopt(parent_context):
                    with o.span(
                        "consistency.shard",
                        bucket=bucket_index,
                        references=len(bucket),
                    ):
                        return [
                            (
                                position,
                                self._reference_problems(reference, facts),
                            )
                            for position, reference in bucket
                        ]

            with ThreadPoolExecutor(max_workers=jobs) as pool:
                for chunk in pool.map(reduce_bucket, enumerate(buckets)):
                    for position, verdict in chunk:
                        verdicts[position] = verdict
        return verdicts

    def _reference_problems(
        self, reference: Reference, facts: FactSet
    ) -> Tuple[Inconsistency, ...]:
        """This reference's problems, via the engine selected at build."""
        if self._engine == "scan":
            return tuple(self._check_reference(reference, facts))
        key = (
            reference.server,
            reference.variables,
            reference.access,
            reference.frequency.as_tuple(),
            reference.client_domains,
            facts.direct_domains_map().get(reference.client, ()),
        )
        verdict = self._shape_memo.get(key)
        if verdict is None:
            self._memo_misses["shape"] += 1
            if self._covered_fast(reference, facts):
                verdict = ()
            else:
                # Fall back to the scan for byte-identical cause reports.
                verdict = tuple(self._check_reference(reference, facts))
            self._shape_memo[key] = verdict
        else:
            self._memo_hits["shape"] += 1
        return tuple(
            dataclasses.replace(problem, reference=reference)
            if problem.reference is not None
            else problem
            for problem in verdict
        )

    # ------------------------------------------------------------------
    # The indexed fast path: decide coverage without building reports.
    # ------------------------------------------------------------------
    def _covered_fast(self, reference: Reference, facts: FactSet) -> bool:
        candidates, existential, data_system = self._candidates(
            reference, facts
        )
        if candidates is None:  # unknown/external target: cannot check
            return True
        if not candidates:
            return False
        reference_view = self._view(reference.variables)
        for server in candidates:
            ok = self._server_covers(
                reference, server, reference_view, facts, data_system
            )
            if existential:
                if ok:
                    return True
            elif not ok:
                return False
        return not existential

    def _server_covers(
        self,
        reference: Reference,
        server: InstanceId,
        reference_view: MibView,
        facts: FactSet,
        data_system: Optional[str],
    ) -> bool:
        """Mirror of :meth:`_check_against_server`, verdict only."""
        process_view = facts.instance_supports[server.id]
        if not self._covers(process_view, reference_view):
            return False
        element_name = data_system
        if element_name is None and server.owner_kind == "system":
            element_name = server.owner
        if element_name is not None:
            element_view = facts.system_supports.get(element_name)
            if element_view is not None and not self._covers(
                element_view, reference_view
            ):
                return False
        direct = facts.direct_domains_map()
        client_direct = direct.get(reference.client, ())
        server_direct = direct.get(f"instance:{server.id}", ())
        for domain in client_direct:
            if domain in server_direct:
                return True
        index = self._permission_index(facts)
        return (
            index.covering_permission(server, reference, reference_view)
            is not None
        )

    def _covers(self, container: MibView, contained: MibView) -> bool:
        """Memoized ``container.covers_view(contained)`` over interned views."""
        key = (id(container), id(contained))
        got = self._cover_memo.get(key)
        if got is None:
            self._memo_misses["cover"] += 1
            got = container.covers_view(contained)
            self._cover_memo[key] = got
            self._memo_pins.append(container)
            self._memo_pins.append(contained)
        else:
            self._memo_hits["cover"] += 1
        return got

    def _permission_index(self, facts: FactSet) -> PermissionIndex:
        if self._index is None:
            self._index = PermissionIndex(
                facts, self._view, public_domain=self._public
            )
        return self._index

    def _candidates(
        self, reference: Reference, facts: FactSet
    ) -> Tuple[Optional[List[InstanceId]], bool, Optional[str]]:
        """Candidate servers, memoized per target when indexed."""
        if self._engine == "scan":
            return self._candidate_servers(reference, facts)
        got = self._candidate_memo.get(reference.server)
        if got is None:
            self._memo_misses["candidate"] += 1
            got = self._candidate_servers(reference, facts)
            self._candidate_memo[reference.server] = got
        else:
            self._memo_hits["candidate"] += 1
        return got

    # ------------------------------------------------------------------
    # Instantiation consistency: a process must fit its network element.
    # ------------------------------------------------------------------
    def _check_instantiations(
        self, facts: FactSet, warnings: List[str]
    ) -> List[Inconsistency]:
        """An agent's effective view is ``process supports ∩ element supports``.

        The paper's own example instantiates an agent supporting the full
        MIB on an element without EGP — the view is silently clipped, so a
        non-empty intersection is only worth a warning.  An *empty*
        intersection means the instantiation can serve nothing: reported
        as an inconsistency.
        """
        problems: List[Inconsistency] = []
        instance_supports = facts.instance_supports
        system_supports = facts.system_supports
        for instance in facts.instances:
            if instance.owner_kind != "system":
                continue
            supported = instance_supports[instance.id]
            element_view = system_supports.get(instance.owner)
            if element_view is None or supported.is_empty():
                continue
            state, effective_paths = self._fit(supported, element_view)
            if state == "ok":
                continue
            if state == "empty":
                problems.append(
                    Inconsistency(
                        kind=InconsistencyKind.INSTANTIATION_CONFLICT,
                        message=(
                            f"process {instance.process_name!r} on "
                            f"{instance.owner!r} supports no data the element "
                            f"supports (process: {sorted(supported.paths())}, "
                            f"element: {sorted(element_view.paths())})"
                        ),
                    )
                )
            else:
                warnings.append(
                    f"process {instance.process_name!r} on {instance.owner!r}: "
                    "supported view clipped to what the element supports "
                    f"({effective_paths})"
                )
        return problems

    def _fit(
        self, supported: MibView, element_view: MibView
    ) -> Tuple[str, Optional[List[str]]]:
        """Classify a (process view, element view) pair, memoized when
        indexed: ``ok`` (covered), ``clipped`` (non-empty intersection,
        with its sorted paths) or ``empty``."""
        if self._engine == "indexed":
            key = (id(supported), id(element_view))
            got = self._fit_memo.get(key)
            if got is not None:
                self._memo_hits["fit"] += 1
                return got
            self._memo_misses["fit"] += 1
        if element_view.covers_view(supported):
            result: Tuple[str, Optional[List[str]]] = ("ok", None)
        else:
            effective = supported.intersection(element_view)
            if effective.is_empty():
                result = ("empty", None)
            else:
                result = ("clipped", sorted(effective.paths()))
        if self._engine == "indexed":
            self._fit_memo[key] = result
            self._memo_pins.append(supported)
            self._memo_pins.append(element_view)
        return result

    # ------------------------------------------------------------------
    # Reference reduction (the scan path, and the cause reporter for the
    # indexed path's uncovered references).
    # ------------------------------------------------------------------
    def _check_reference(
        self, reference: Reference, facts: FactSet
    ) -> List[Inconsistency]:
        candidates, existential, data_system = self._candidates(
            reference, facts
        )
        if candidates is None:  # unknown/external target: cannot check
            return []
        if not candidates:
            return [
                Inconsistency(
                    kind=InconsistencyKind.NO_SERVER,
                    message=(
                        f"no server instance (or proxy) exists for query "
                        f"target {reference.server!r}"
                    ),
                    reference=reference,
                )
            ]
        reference_view = self._view(reference.variables)
        failures: List[Tuple[InstanceId, Inconsistency]] = []
        successes = 0
        for server in candidates:
            problem = self._check_against_server(
                reference, server, reference_view, facts, data_system
            )
            if problem is None:
                successes += 1
                if existential:
                    return []
            else:
                failures.append((server, problem))
        if existential:
            # No candidate worked; report the nearest misses.
            causes = tuple(
                f"{server.id}: {problem.causes[0] if problem.causes else problem.message}"
                for server, problem in failures[:5]
            )
            return [
                Inconsistency(
                    kind=failures[0][1].kind if failures else InconsistencyKind.NO_SERVER,
                    message=(
                        f"no instantiated server can satisfy this query "
                        f"(tried {len(failures)})"
                    ),
                    reference=reference,
                    causes=causes,
                )
            ]
        return [problem for _server, problem in failures]

    def _candidate_servers(
        self, reference: Reference, facts: FactSet
    ) -> Tuple[Optional[List[InstanceId]], bool, Optional[str]]:
        """Candidate servers, coverage mode, and whose data is served.

        Returns ``(candidates, existential, data_system)``:

        * literal process targets: the client may reach *any* instance of
          the process type, so every instance must be covered (universal);
        * system targets: the client addresses that element; any agent on
          it may answer (existential).  An element with *no* agents may be
          proxy-managed (paper Section 3.1): the candidates are then the
          proxy instances, still serving the *target* element's data —
          ``data_system`` names that element either way;
        * domain targets: any agent in the domain may answer — the client
          cannot know which, so all must be covered (universal);
        * ``*`` targets (run-time values): existential over all agents;
        * external targets (IP literals etc.): unknown, not checkable.
        """
        server = reference.server
        if server == "*":
            return facts.agents(), True, None
        kind, _sep, name = server.partition(":")
        if kind == "process":
            return facts.instances_of_process(name), False, None
        if kind == "system":
            agents = [
                instance
                for instance in facts.instances_on_system(name)
                if self._spec.processes[instance.process_name].is_agent()
            ]
            if not agents:
                return facts.proxies_for_system(name), True, name
            return agents, True, name
        if kind == "domain":
            containment = facts.transitive_containment()
            members = [
                instance
                for instance in facts.agents()
                if f"domain:{name}"
                in containment.get(f"instance:{instance.id}", set())
            ]
            return members, False, None
        return None, False, None

    def _check_against_server(
        self,
        reference: Reference,
        server: InstanceId,
        reference_view: MibView,
        facts: FactSet,
        data_system: Optional[str] = None,
    ) -> Optional[Inconsistency]:
        """None if covered; otherwise the inconsistency for this server.

        ``data_system`` names the element whose data is being served when
        it differs from the server instance's host (the proxy case).
        """
        process_view = facts.instance_supports[server.id]
        if not process_view.covers_view(reference_view):
            return Inconsistency(
                kind=InconsistencyKind.UNSUPPORTED_BY_PROCESS,
                message=(
                    f"server process {server.process_name!r} ({server.id}) does "
                    f"not support the requested data"
                ),
                reference=reference,
                causes=(f"process supports only {sorted(process_view.paths())}",),
            )
        element_name: Optional[str] = data_system
        if element_name is None and server.owner_kind == "system":
            element_name = server.owner
        if element_name is not None:
            element_view = facts.system_supports.get(element_name, None)
            if element_view is not None and not element_view.covers_view(
                reference_view
            ):
                return Inconsistency(
                    kind=InconsistencyKind.UNSUPPORTED_BY_ELEMENT,
                    message=(
                        f"network element {element_name!r} does not support "
                        f"the requested data"
                    ),
                    reference=reference,
                    causes=(f"element supports only {sorted(element_view.paths())}",),
                )
        # Exports govern access "from outside the domain" (Section 4.1.5):
        # a reference whose client shares an *immediate* containing domain
        # with the server is implicitly permitted.  A distant common
        # ancestor (an umbrella domain) grants nothing.
        client_instance = self._instance_by_tag(reference.client, facts)
        if client_instance is not None:
            if self._engine == "scan":
                client_direct = set(
                    facts.direct_domains_of_instance(client_instance)
                )
                server_direct = set(
                    facts.direct_domains_of_instance(server)
                )
            else:
                direct = facts.direct_domains_map()
                client_direct = set(
                    direct.get(f"instance:{client_instance.id}", ())
                )
                server_direct = set(
                    direct.get(f"instance:{server.id}", ())
                )
            if client_direct.intersection(server_direct):
                return None
        permissions = self._permissions_for_server(server, facts)
        if not permissions:
            return Inconsistency(
                kind=InconsistencyKind.MISSING_PERMISSION,
                message=f"no permission is exported for data at {server.id}",
                reference=reference,
            )
        causes: List[str] = []
        best_kind = InconsistencyKind.MISSING_PERMISSION
        for permission in permissions:
            permission_view = self._view(permission.variables)
            verdict = permission_covers(
                reference,
                permission,
                reference_view,
                permission_view,
                public_domain=self._public,
            )
            if verdict.covered:
                return None
            causes.append(f"{permission.origin or permission.grantor}: {verdict.reason}")
            if "frequency" in verdict.reason or "violates permitted" in verdict.reason:
                best_kind = InconsistencyKind.FREQUENCY_CONFLICT
            elif "access" in verdict.reason and best_kind is not InconsistencyKind.FREQUENCY_CONFLICT:
                best_kind = InconsistencyKind.ACCESS_EXCEEDED
        return Inconsistency(
            kind=best_kind,
            message=(
                f"reference has no corresponding permission at {server.id}"
            ),
            reference=reference,
            causes=tuple(causes),
        )

    @staticmethod
    def _instance_by_tag(tag: str, facts: FactSet) -> Optional[InstanceId]:
        if not tag.startswith("instance:"):
            return None
        return facts.instance_by_id(tag.split(":", 1)[1])

    def _permissions_for_server(
        self, server: InstanceId, facts: FactSet
    ) -> List[Permission]:
        by_grantor = facts.permissions_by_grantor()
        containment = facts.transitive_containment()
        containers = containment.get(f"instance:{server.id}", set())
        result = list(by_grantor.get(f"instance:{server.id}", ()))
        for container in containers:
            if container.startswith("domain:"):
                result.extend(by_grantor.get(container, ()))
        return result

    # ------------------------------------------------------------------
    # Capacity warnings (element swamping, paper Section 4.1.4).
    # ------------------------------------------------------------------
    def _check_capacity(
        self, facts: FactSet, bits_per_request: float = 8192.0
    ) -> List[str]:
        load: Dict[str, float] = {}
        for reference in facts.references:
            rate = reference.frequency.max_rate_per_second()
            if rate == float("inf"):
                continue
            candidates, _existential, _data_system = self._candidates(
                reference, facts
            )
            for server in candidates or ():
                if server.owner_kind == "system":
                    load[server.owner] = load.get(server.owner, 0.0) + rate
        warnings = []
        for system_name, rate in sorted(load.items()):
            system = self._spec.systems.get(system_name)
            if system is None or not system.total_speed_bps():
                continue
            demand = rate * bits_per_request
            capacity = system.total_speed_bps()
            if demand > 0.1 * capacity:  # >10% of link budget on management
                warnings.append(
                    f"element {system_name!r} may be swamped: management "
                    f"traffic {demand:.0f} bps vs interface speed {capacity} bps"
                )
        return warnings

    def _view(self, paths: Sequence[str]) -> MibView:
        if self._generator is not None:
            return self._generator.view(paths)
        key = tuple(paths)
        cached = self._view_cache.get(key)
        if cached is None:
            cached = MibView(
                self._tree, [path for path in paths if self._tree.knows(path)]
            )
            self._view_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Public accessors for differential clients (repro.consistency.impact).
    # ------------------------------------------------------------------
    def view(self, paths: Sequence[str]) -> MibView:
        """A (cached) MIB view over ``paths``, sharing the checker's memo."""
        return self._view(paths)

    def reference_verdicts(self):
        """Per-reference verdicts from the last check/recheck.

        Returns a list of ``(reference, problems)`` pairs aligned with the
        checked reference list, or ``None`` if no check has run yet.  The
        returned list is a snapshot: a subsequent :meth:`recheck` replaces
        the underlying storage rather than mutating it, so callers may
        hold the result across a recheck to compare old vs new verdicts.
        """
        if self._verdict_list is None or self._checked_references is None:
            return None
        return list(zip(self._checked_references, self._verdict_list))


def check_with_clpr(
    specification: Specification,
    tree: MibTree,
    limit: int = 1000,
) -> ConsistencyResult:
    """The faithful CLP(R) path: facts text + rules text -> engine query."""
    o = obs.current()
    with o.span("consistency.check", engine="clpr") as span:
        with o.span("consistency.facts"):
            facts = FactGenerator(specification, tree).generate()
            program_text = facts.to_clpr_text() + CONSISTENCY_RULES
            program = parse_program(program_text)
        engine = Engine(program, max_depth=100_000)
        problems: List[Inconsistency] = []
        seen = set()
        with o.span("consistency.solve", clauses=len(program)):
            for answer in engine.solve("inconsistent(R)", limit=limit):
                term = answer.value("R")
                rendered = repr(term)
                if rendered in seen:
                    continue
                seen.add(rendered)
                causes: Tuple[str, ...] = ()
                if (
                    isinstance(term, Struct)
                    and term.functor == "ref"
                    and len(term.args) == 5
                ):
                    client, server, variable, _access, _period = term.args
                    causes = (
                        f"client {client!r}",
                        f"server {server!r}",
                        f"variable {variable!r}",
                    )
                problems.append(
                    Inconsistency(
                        kind=InconsistencyKind.MISSING_PERMISSION,
                        message=f"CLP(R) proved: inconsistent({rendered})",
                        causes=causes,
                    )
                )
        span.annotate(**engine.stats)
    if o.enabled:
        o.counter(
            "repro_consistency_checks_total",
            "consistency checks run",
            engine="clpr",
        ).inc()
        o.counter(
            "repro_clpr_unifications_total",
            "head/argument unification attempts in the SLD engine",
        ).inc(engine.stats["unifications"])
        o.counter(
            "repro_clpr_constraint_propagations_total",
            "linear constraints pushed to the store",
        ).inc(engine.stats["constraint_propagations"])
    return ConsistencyResult(
        consistent=not problems,
        inconsistencies=problems,
        stats={
            "clauses": len(program),
            "seconds": span.elapsed,
            "engine": "clpr-sld",
            "unifications": engine.stats["unifications"],
            "constraint_propagations": engine.stats["constraint_propagations"],
        },
    )


def failing_clients(result: ConsistencyResult) -> frozenset:
    """The client instance ids implicated by a result's inconsistencies.

    Works across engines: the closure engines name the client via the
    offending :class:`Reference`; the CLP(R) path names it in the
    structured ``client ...`` cause.  Used by the differential oracle to
    compare *causes*, not just verdicts.
    """
    clients = set()
    for problem in result.inconsistencies:
        if problem.reference is not None and problem.reference.client.startswith(
            "instance:"
        ):
            clients.add(problem.reference.client.split(":", 1)[1])
            continue
        for cause in problem.causes:
            if cause.startswith("client "):
                clients.add(cause.split(" ", 1)[1].strip("'"))
    return frozenset(clients)
