"""The Consistency Checker: prove inconsistency, report causes.

Two implementations of the paper's model:

* :class:`ConsistencyChecker` — the scalable path.  Containment closure
  and reference/permission expansion are computed in Python (they are the
  transitivity/distribution rules applied to ground facts), and the
  reduction step is a closed-world set check: every reference must find a
  covering permission.  This is what the Section 3.1 scale goal demands.

* :func:`check_with_clpr` — the faithful path.  The compiler's CLP(R)
  consistency output (:meth:`FactSet.to_clpr_text`) plus the rule text of
  :mod:`repro.consistency.rules` are handed to the
  :class:`repro.clpr.Engine`, and ``inconsistent(R)`` is queried — exactly
  the architecture of paper Figure 3.1.  Wildcard (``*``) query targets
  are outside this path (their values are unknown until run time); the
  scalable path checks them existentially.

The ablation benchmark ``benchmarks/bench_consistency.py`` compares both.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clpr.program import parse_program
from repro.clpr.solver import Engine
from repro.consistency.facts import FactGenerator, FactSet, InstanceId
from repro.consistency.relations import (
    Permission,
    Reference,
    permission_covers,
)
from repro.consistency.report import (
    ConsistencyResult,
    Inconsistency,
    InconsistencyKind,
)
from repro.consistency.rules import CONSISTENCY_RULES
from repro.mib.tree import MibTree
from repro.mib.view import MibView
from repro.nmsl.specs import Specification, PUBLIC_DOMAIN


class ConsistencyChecker:
    """Closure-based consistency checking over a typed specification."""

    def __init__(
        self,
        specification: Specification,
        tree: MibTree,
        public_domain: str = PUBLIC_DOMAIN,
    ):
        self._spec = specification
        self._tree = tree
        self._public = public_domain
        self._facts: Optional[FactSet] = None
        self._view_cache: Dict[Tuple[str, ...], MibView] = {}

    @property
    def facts(self) -> FactSet:
        if self._facts is None:
            self._facts = FactGenerator(self._spec, self._tree).generate()
        return self._facts

    # ------------------------------------------------------------------
    # The check.
    # ------------------------------------------------------------------
    def check(self, check_capacity: bool = False) -> ConsistencyResult:
        started = time.perf_counter()
        facts = self.facts
        problems: List[Inconsistency] = []
        warnings: List[str] = list(facts.warnings)

        problems.extend(self._check_instantiations(facts, warnings))
        for reference in facts.references:
            problems.extend(self._check_reference(reference, facts))
        if check_capacity:
            warnings.extend(self._check_capacity(facts))

        elapsed = time.perf_counter() - started
        return ConsistencyResult(
            consistent=not problems,
            inconsistencies=problems,
            warnings=warnings,
            stats={
                "instances": len(facts.instances),
                "references": len(facts.references),
                "permissions": len(facts.permissions),
                "containment_edges": len(facts.containment),
                "seconds": elapsed,
            },
        )

    # ------------------------------------------------------------------
    # Instantiation consistency: a process must fit its network element.
    # ------------------------------------------------------------------
    def _check_instantiations(
        self, facts: FactSet, warnings: List[str]
    ) -> List[Inconsistency]:
        """An agent's effective view is ``process supports ∩ element supports``.

        The paper's own example instantiates an agent supporting the full
        MIB on an element without EGP — the view is silently clipped, so a
        non-empty intersection is only worth a warning.  An *empty*
        intersection means the instantiation can serve nothing: reported
        as an inconsistency.
        """
        problems: List[Inconsistency] = []
        for instance in facts.instances:
            if instance.owner_kind != "system":
                continue
            supported = facts.instance_supports[instance.id]
            element_view = facts.system_supports.get(instance.owner)
            if element_view is None or supported.is_empty():
                continue
            if element_view.covers_view(supported):
                continue
            effective = supported.intersection(element_view)
            if effective.is_empty():
                problems.append(
                    Inconsistency(
                        kind=InconsistencyKind.INSTANTIATION_CONFLICT,
                        message=(
                            f"process {instance.process_name!r} on "
                            f"{instance.owner!r} supports no data the element "
                            f"supports (process: {sorted(supported.paths())}, "
                            f"element: {sorted(element_view.paths())})"
                        ),
                    )
                )
            else:
                warnings.append(
                    f"process {instance.process_name!r} on {instance.owner!r}: "
                    "supported view clipped to what the element supports "
                    f"({sorted(effective.paths())})"
                )
        return problems

    # ------------------------------------------------------------------
    # Reference reduction.
    # ------------------------------------------------------------------
    def _check_reference(
        self, reference: Reference, facts: FactSet
    ) -> List[Inconsistency]:
        candidates, existential, data_system = self._candidate_servers(
            reference, facts
        )
        if candidates is None:  # unknown/external target: cannot check
            return []
        if not candidates:
            return [
                Inconsistency(
                    kind=InconsistencyKind.NO_SERVER,
                    message=(
                        f"no server instance (or proxy) exists for query "
                        f"target {reference.server!r}"
                    ),
                    reference=reference,
                )
            ]
        reference_view = self._view(reference.variables)
        failures: List[Tuple[InstanceId, Inconsistency]] = []
        successes = 0
        for server in candidates:
            problem = self._check_against_server(
                reference, server, reference_view, facts, data_system
            )
            if problem is None:
                successes += 1
                if existential:
                    return []
            else:
                failures.append((server, problem))
        if existential:
            # No candidate worked; report the nearest misses.
            causes = tuple(
                f"{server.id}: {problem.causes[0] if problem.causes else problem.message}"
                for server, problem in failures[:5]
            )
            return [
                Inconsistency(
                    kind=failures[0][1].kind if failures else InconsistencyKind.NO_SERVER,
                    message=(
                        f"no instantiated server can satisfy this query "
                        f"(tried {len(failures)})"
                    ),
                    reference=reference,
                    causes=causes,
                )
            ]
        return [problem for _server, problem in failures]

    def _candidate_servers(
        self, reference: Reference, facts: FactSet
    ) -> Tuple[Optional[List[InstanceId]], bool, Optional[str]]:
        """Candidate servers, coverage mode, and whose data is served.

        Returns ``(candidates, existential, data_system)``:

        * literal process targets: the client may reach *any* instance of
          the process type, so every instance must be covered (universal);
        * system targets: the client addresses that element; any agent on
          it may answer (existential).  An element with *no* agents may be
          proxy-managed (paper Section 3.1): the candidates are then the
          proxy instances, still serving the *target* element's data —
          ``data_system`` names that element either way;
        * domain targets: any agent in the domain may answer — the client
          cannot know which, so all must be covered (universal);
        * ``*`` targets (run-time values): existential over all agents;
        * external targets (IP literals etc.): unknown, not checkable.
        """
        server = reference.server
        if server == "*":
            return facts.agents(), True, None
        kind, _sep, name = server.partition(":")
        if kind == "process":
            return facts.instances_of_process(name), False, None
        if kind == "system":
            agents = [
                instance
                for instance in facts.instances_on_system(name)
                if self._spec.processes[instance.process_name].is_agent()
            ]
            if not agents:
                return facts.proxies_for_system(name), True, name
            return agents, True, name
        if kind == "domain":
            containment = facts.transitive_containment()
            members = [
                instance
                for instance in facts.agents()
                if f"domain:{name}"
                in containment.get(f"instance:{instance.id}", set())
            ]
            return members, False, None
        return None, False, None

    def _check_against_server(
        self,
        reference: Reference,
        server: InstanceId,
        reference_view: MibView,
        facts: FactSet,
        data_system: Optional[str] = None,
    ) -> Optional[Inconsistency]:
        """None if covered; otherwise the inconsistency for this server.

        ``data_system`` names the element whose data is being served when
        it differs from the server instance's host (the proxy case).
        """
        process_view = facts.instance_supports[server.id]
        if not process_view.covers_view(reference_view):
            return Inconsistency(
                kind=InconsistencyKind.UNSUPPORTED_BY_PROCESS,
                message=(
                    f"server process {server.process_name!r} ({server.id}) does "
                    f"not support the requested data"
                ),
                reference=reference,
                causes=(f"process supports only {sorted(process_view.paths())}",),
            )
        element_name: Optional[str] = data_system
        if element_name is None and server.owner_kind == "system":
            element_name = server.owner
        if element_name is not None:
            element_view = facts.system_supports.get(element_name, None)
            if element_view is not None and not element_view.covers_view(
                reference_view
            ):
                return Inconsistency(
                    kind=InconsistencyKind.UNSUPPORTED_BY_ELEMENT,
                    message=(
                        f"network element {element_name!r} does not support "
                        f"the requested data"
                    ),
                    reference=reference,
                    causes=(f"element supports only {sorted(element_view.paths())}",),
                )
        # Exports govern access "from outside the domain" (Section 4.1.5):
        # a reference whose client shares an *immediate* containing domain
        # with the server is implicitly permitted.  A distant common
        # ancestor (an umbrella domain) grants nothing.
        client_instance = self._instance_by_tag(reference.client, facts)
        if client_instance is not None:
            client_direct = set(facts.direct_domains_of_instance(client_instance))
            server_direct = set(facts.direct_domains_of_instance(server))
            if client_direct.intersection(server_direct):
                return None
        permissions = self._permissions_for_server(server, facts)
        if not permissions:
            return Inconsistency(
                kind=InconsistencyKind.MISSING_PERMISSION,
                message=f"no permission is exported for data at {server.id}",
                reference=reference,
            )
        causes: List[str] = []
        best_kind = InconsistencyKind.MISSING_PERMISSION
        for permission in permissions:
            permission_view = self._view(permission.variables)
            verdict = permission_covers(
                reference,
                permission,
                reference_view,
                permission_view,
                public_domain=self._public,
            )
            if verdict.covered:
                return None
            causes.append(f"{permission.origin or permission.grantor}: {verdict.reason}")
            if "frequency" in verdict.reason or "violates permitted" in verdict.reason:
                best_kind = InconsistencyKind.FREQUENCY_CONFLICT
            elif "access" in verdict.reason and best_kind is not InconsistencyKind.FREQUENCY_CONFLICT:
                best_kind = InconsistencyKind.ACCESS_EXCEEDED
        return Inconsistency(
            kind=best_kind,
            message=(
                f"reference has no corresponding permission at {server.id}"
            ),
            reference=reference,
            causes=tuple(causes),
        )

    @staticmethod
    def _instance_by_tag(tag: str, facts: FactSet) -> Optional[InstanceId]:
        if not tag.startswith("instance:"):
            return None
        return facts.instance_by_id(tag.split(":", 1)[1])

    def _permissions_for_server(
        self, server: InstanceId, facts: FactSet
    ) -> List[Permission]:
        by_grantor = facts.permissions_by_grantor()
        containment = facts.transitive_containment()
        containers = containment.get(f"instance:{server.id}", set())
        result = list(by_grantor.get(f"instance:{server.id}", ()))
        for container in containers:
            if container.startswith("domain:"):
                result.extend(by_grantor.get(container, ()))
        return result

    # ------------------------------------------------------------------
    # Capacity warnings (element swamping, paper Section 4.1.4).
    # ------------------------------------------------------------------
    def _check_capacity(
        self, facts: FactSet, bits_per_request: float = 8192.0
    ) -> List[str]:
        load: Dict[str, float] = {}
        for reference in facts.references:
            rate = reference.frequency.max_rate_per_second()
            if rate == float("inf"):
                continue
            candidates, _existential, _data_system = self._candidate_servers(
                reference, facts
            )
            for server in candidates or ():
                if server.owner_kind == "system":
                    load[server.owner] = load.get(server.owner, 0.0) + rate
        warnings = []
        for system_name, rate in sorted(load.items()):
            system = self._spec.systems.get(system_name)
            if system is None or not system.total_speed_bps():
                continue
            demand = rate * bits_per_request
            capacity = system.total_speed_bps()
            if demand > 0.1 * capacity:  # >10% of link budget on management
                warnings.append(
                    f"element {system_name!r} may be swamped: management "
                    f"traffic {demand:.0f} bps vs interface speed {capacity} bps"
                )
        return warnings

    def _view(self, paths: Sequence[str]) -> MibView:
        key = tuple(paths)
        cached = self._view_cache.get(key)
        if cached is None:
            cached = MibView(
                self._tree, [path for path in paths if self._tree.knows(path)]
            )
            self._view_cache[key] = cached
        return cached


def check_with_clpr(
    specification: Specification,
    tree: MibTree,
    limit: int = 1000,
) -> ConsistencyResult:
    """The faithful CLP(R) path: facts text + rules text -> engine query."""
    started = time.perf_counter()
    facts = FactGenerator(specification, tree).generate()
    program_text = facts.to_clpr_text() + CONSISTENCY_RULES
    program = parse_program(program_text)
    engine = Engine(program, max_depth=100_000)
    problems: List[Inconsistency] = []
    seen = set()
    for answer in engine.solve("inconsistent(R)", limit=limit):
        rendered = repr(answer.value("R"))
        if rendered in seen:
            continue
        seen.add(rendered)
        problems.append(
            Inconsistency(
                kind=InconsistencyKind.MISSING_PERMISSION,
                message=f"CLP(R) proved: inconsistent({rendered})",
            )
        )
    elapsed = time.perf_counter() - started
    return ConsistencyResult(
        consistent=not problems,
        inconsistencies=problems,
        stats={
            "clauses": len(program),
            "seconds": elapsed,
            "engine": "clpr-sld",
        },
    )
