"""Inconsistency reports.

"If an inconsistency is proved, it is reported to the system administrator
... the immediate causes for inconsistency are listed" (paper Sections 3.2
and 4.2).  Each :class:`Inconsistency` names the offending reference and
the near-miss causes — which candidate permissions exist and why each one
fails to cover the reference.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Tuple

from repro.consistency.relations import Reference


class InconsistencyKind(Enum):
    """Why a reference lacks a corresponding permission."""

    #: No candidate server instance exists for the query target.
    NO_SERVER = "no-server"
    #: The server's process type does not support the requested data.
    UNSUPPORTED_BY_PROCESS = "unsupported-by-process"
    #: The network element does not support the requested data.
    UNSUPPORTED_BY_ELEMENT = "unsupported-by-element"
    #: No permission reaches the client's domain at all.
    MISSING_PERMISSION = "missing-permission"
    #: A permission exists but its access mode is too weak.
    ACCESS_EXCEEDED = "access-exceeded"
    #: A permission exists but the reference may query too often.
    FREQUENCY_CONFLICT = "frequency-conflict"
    #: A process instantiation conflicts with its network element.
    INSTANTIATION_CONFLICT = "instantiation-conflict"


@dataclass
class Inconsistency:
    """One proved inconsistency with its immediate causes."""

    kind: InconsistencyKind
    message: str
    reference: Reference = None  # type: ignore[assignment]
    causes: Tuple[str, ...] = ()

    def render(self) -> str:
        lines = [f"[{self.kind.value}] {self.message}"]
        if self.reference is not None:
            lines.append(f"  reference: {self.reference.describe()}")
            if self.reference.origin:
                lines.append(f"  origin:    {self.reference.origin}")
        for cause in self.causes:
            lines.append(f"  cause:     {cause}")
        return "\n".join(lines)


@dataclass
class ConsistencyResult:
    """The outcome of a consistency check."""

    consistent: bool
    inconsistencies: List[Inconsistency] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def render(self) -> str:
        if self.consistent and not self.warnings:
            return "specification is consistent"
        lines: List[str] = []
        if self.consistent:
            lines.append("specification is consistent (with warnings)")
        else:
            lines.append(
                f"specification is INCONSISTENT "
                f"({len(self.inconsistencies)} problem(s))"
            )
        for item in self.inconsistencies:
            lines.append(item.render())
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)

    def kinds(self) -> List[InconsistencyKind]:
        return [item.kind for item in self.inconsistencies]

    #: Stats that legitimately vary between two checks of the same
    #: specification (timings, worker counts) — everything else must be
    #: a pure function of the specification.
    VOLATILE_STATS = ("seconds", "jobs")

    def to_json(self) -> str:
        """Canonical JSON for byte-level comparison of two checks.

        Two checks of the same specification must serialize to the same
        bytes regardless of engine internals, shard count or worker
        scheduling, so the volatile stats (:data:`VOLATILE_STATS`) are
        dropped and all keys are emitted sorted.
        """
        payload = {
            "consistent": self.consistent,
            "inconsistencies": [
                {
                    "kind": item.kind.value,
                    "message": item.message,
                    "reference": (
                        None
                        if item.reference is None
                        else item.reference.describe()
                    ),
                    "origin": (
                        None
                        if item.reference is None
                        else item.reference.origin
                    ),
                    "causes": list(item.causes),
                }
                for item in self.inconsistencies
            ],
            "warnings": list(self.warnings),
            "stats": {
                key: value
                for key, value in self.stats.items()
                if key not in self.VOLATILE_STATS
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)
