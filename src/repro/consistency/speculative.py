"""Speculative uses of the Consistency Checker (paper Section 4.2).

Two modes:

* **what-if** — "a network administrator is about to connect a new
  organization to the internet ... the administrator can make a
  specification of the new organization's expected interactions with the
  existing parts of the internet [and test it] with the existing internet
  specifications."  :class:`SpeculativeChecker` merges a candidate
  specification with the existing one, re-checks, and reports only the
  problems that involve the new parts.

* **reverse** — "make the consistency of the combined specification a
  premise of the proof, and ask CLP(R) to solve for the parameters to the
  references and permissions of the new specification that satisfy this
  premise."  :func:`solve_for_frequency` runs the ``ok/5`` goal with a
  *free* frequency variable through the CLP(R) engine and returns the
  residual bounds (e.g. ``T >= 300``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.clpr.program import parse_program, parse_term
from repro.clpr.solver import Answer, Engine
from repro.clpr.terms import Struct, Var
from repro.consistency.checker import ConsistencyChecker
from repro.consistency.facts import FactGenerator
from repro.consistency.report import ConsistencyResult, Inconsistency
from repro.consistency.rules import CONSISTENCY_RULES
from repro.errors import ConsistencyError
from repro.mib.tree import MibTree
from repro.nmsl.specs import Specification


class SpeculativeChecker:
    """What-if checking of a new specification against an existing one."""

    def __init__(self, existing: Specification, tree: MibTree):
        self._existing = existing
        self._tree = tree

    def check_addition(self, candidate: Specification) -> ConsistencyResult:
        """Check ``existing + candidate``, reporting only new problems.

        A problem is *new* if it names a process instance, system or
        domain declared in the candidate, or if the existing specification
        alone did not exhibit it.
        """
        baseline = ConsistencyChecker(self._existing, self._tree).check()
        baseline_keys = {
            self._problem_key(problem) for problem in baseline.inconsistencies
        }
        merged = self._existing.merged_with(candidate)
        combined = ConsistencyChecker(merged, self._tree).check()
        new_problems = [
            problem
            for problem in combined.inconsistencies
            if self._problem_key(problem) not in baseline_keys
        ]
        return ConsistencyResult(
            consistent=not new_problems,
            inconsistencies=new_problems,
            warnings=combined.warnings,
            stats={
                "existing_problems": len(baseline.inconsistencies),
                "combined_problems": len(combined.inconsistencies),
                "new_problems": len(new_problems),
                **{f"combined_{k}": v for k, v in combined.stats.items()},
            },
        )

    def estimated_new_load(
        self, candidate: Specification, bits_per_request: float = 8192.0
    ) -> float:
        """Approximate management traffic (bps) the candidate would add.

        "If summary data is available for the existing internet,
        approximate values can be used to determine the amount of traffic
        generated."  Sums the maximum query rates of the candidate's
        references.
        """
        merged = self._existing.merged_with(candidate)
        facts = FactGenerator(merged, self._tree).generate()
        candidate_owners = set(candidate.systems) | set(candidate.domains)
        total_rate = 0.0
        for reference in facts.references:
            instance_id = reference.client.split(":", 1)[1]
            owner = instance_id.split("@", 1)[1].rsplit("#", 1)[0]
            if owner in candidate_owners:
                rate = reference.frequency.max_rate_per_second()
                if rate != float("inf"):
                    total_rate += rate
        return total_rate * bits_per_request

    @staticmethod
    def _problem_key(problem: Inconsistency) -> Tuple[str, str]:
        origin = problem.reference.origin if problem.reference else ""
        return (problem.kind.value, problem.message + "|" + origin)


@dataclass
class FrequencyBound:
    """A solved constraint on a reference's frequency parameter."""

    op: str
    seconds: float

    def describe(self) -> str:
        return f"period {self.op} {self.seconds:g} seconds"


def solve_for_frequency(
    specification: Specification,
    tree: MibTree,
    client_process: str,
    server_process: str,
    limit: int = 50,
) -> List[FrequencyBound]:
    """Reverse mode: solve for the query periods that keep the spec consistent.

    Builds the CLP(R) program (facts + rules) but replaces the client
    process's query frequency with a free variable ``T``, then asks for
    ``ok(I, J, V, A, T)`` where ``I`` is an instance of *client_process*
    and ``J`` an instance of *server_process*.  The union of residual
    bounds across answers describes the satisfying periods.
    """
    facts = FactGenerator(specification, tree).generate()
    text = facts.to_clpr_text() + CONSISTENCY_RULES
    program = parse_program(text)

    # Find an instance pair to ask about.
    client_instances = [
        instance
        for instance in facts.instances
        if instance.process_name == client_process
    ]
    server_instances = [
        instance
        for instance in facts.instances
        if instance.process_name == server_process
    ]
    if not client_instances or not server_instances:
        raise ConsistencyError(
            f"need at least one instance each of {client_process!r} and "
            f"{server_process!r} to solve for frequency"
        )
    client = client_instances[0]
    server = server_instances[0]

    process = specification.processes[client_process]
    if not process.queries:
        raise ConsistencyError(f"process {client_process!r} has no queries")
    variable_path = process.queries[0].requests[0]

    engine = Engine(program, max_depth=100_000)
    query = (
        f"ok('{client.id}', '{server.id}', '{variable_path}', readonly, T)"
    )
    bounds: List[FrequencyBound] = []
    seen = set()
    for answer in engine.solve(query, limit=limit):
        for bound in answer.residual:
            key = (bound.op, bound.value)
            if key in seen:
                continue
            seen.add(key)
            bounds.append(FrequencyBound(bound.op, float(bound.value)))
        value = answer.bindings.get("T")
        if value is not None and not isinstance(value, Var):
            rendered = getattr(value, "value", None)
            if rendered is not None:
                key = ("=", Fraction(rendered))
                if key not in seen:
                    seen.add(key)
                    bounds.append(FrequencyBound("=", float(rendered)))
    return bounds
