"""Specification evolution: diffing and incremental re-checking.

Section 5 observes that the cost of regenerating everything "depends on
the frequency of changes to the management specification".  The same is
true of re-checking consistency.  This module provides:

* :class:`SpecificationDiff` — a structural diff between two versions of
  an internet specification: added/removed/changed processes, systems
  and domains (each declaration compared by its
  :meth:`~repro.nmsl.specs.ProcessSpec.fingerprint_tuple`);
* :class:`EvolutionDelta` — a new specification version paired with its
  diff against the previous one: the unit
  :meth:`ConsistencyChecker.recheck` consumes;
* :func:`affected_entities` / :func:`reference_affected` — the
  affectedness analysis shared by the incremental engine: which entity
  tags a diff taints, and whether a reference touches any of them;
* :class:`DeltaChecker` — the convenience wrapper: feed it successive
  specification versions and it keeps one persistent
  :class:`ConsistencyChecker` warm, so fact expansion is incremental
  (only declarations the diff touched are re-expanded) and only the
  references that could be affected are re-reduced, with untouched
  verdicts reused.  A reference is affected when its client instance,
  its target, or any domain containing either changed.

The delta check is exact (proved by the equivalence test-suite and by
construction: coverage of a reference depends only on the entities the
affectedness test tracks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.facts import FactSet
from repro.consistency.report import ConsistencyResult
from repro.mib.tree import MibTree
from repro.nmsl.specs import Specification


@dataclass(frozen=True)
class DiffEntry:
    kind: str  # "process" | "system" | "domain"
    name: str
    change: str  # "added" | "removed" | "changed"

    def render(self) -> str:
        return f"{self.change} {self.kind} {self.name}"


@dataclass
class SpecificationDiff:
    """What changed between two specification versions."""

    entries: List[DiffEntry] = field(default_factory=list)

    def changed_names(self, kind: str) -> Set[str]:
        return {entry.name for entry in self.entries if entry.kind == kind}

    def is_empty(self) -> bool:
        return not self.entries

    def render(self) -> str:
        if not self.entries:
            return "no changes"
        return "\n".join(entry.render() for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def _spec_tables(specification: Specification):
    return (
        ("process", specification.processes),
        ("system", specification.systems),
        ("domain", specification.domains),
    )


def _fingerprint(spec_obj) -> Tuple:
    """A comparable value-summary of one declaration."""
    fingerprint_tuple = getattr(spec_obj, "fingerprint_tuple", None)
    if fingerprint_tuple is not None:
        return fingerprint_tuple()
    return (repr(spec_obj),)


def diff_specifications(
    old: Specification, new: Specification
) -> SpecificationDiff:
    """Structural diff of two specification versions."""
    diff = SpecificationDiff()
    for (kind, old_table), (_kind2, new_table) in zip(
        _spec_tables(old), _spec_tables(new)
    ):
        if old_table is new_table:
            # A shared table (the clone-one-table evolution idiom) needs
            # no per-entry walk — at paper scale the unchanged 100,000-
            # system table dominates the diff otherwise.
            continue
        for name in sorted(set(old_table) | set(new_table)):
            if name not in new_table:
                diff.entries.append(DiffEntry(kind, name, "removed"))
            elif name not in old_table:
                diff.entries.append(DiffEntry(kind, name, "added"))
            elif old_table[name] is new_table[name]:
                continue
            elif _fingerprint(old_table[name]) != _fingerprint(new_table[name]):
                diff.entries.append(DiffEntry(kind, name, "changed"))
    return diff


@dataclass(frozen=True)
class EvolutionDelta:
    """A specification version plus its diff from the previous version."""

    specification: Specification
    diff: SpecificationDiff

    @classmethod
    def between(
        cls, old: Specification, new: Specification
    ) -> "EvolutionDelta":
        return cls(specification=new, diff=diff_specifications(old, new))


def affected_entities(diff: SpecificationDiff, facts: FactSet) -> Set[str]:
    """Entity tags whose involvement forces a re-check.

    Changed domains taint everything they transitively contain (their
    exports and memberships gate coverage); changed systems taint their
    instances; changed processes taint their instances; and the
    transitive-ancestor expansion makes grantee-side changes visible too.
    """
    affected: Set[str] = set()
    for name in diff.changed_names("domain"):
        affected.add(f"domain:{name}")
    for name in diff.changed_names("system"):
        affected.add(f"system:{name}")
    changed_processes = diff.changed_names("process")
    for name in changed_processes:
        affected.add(f"process:{name}")
    for instance in facts.instances:
        if instance.process_name in changed_processes:
            affected.add(f"instance:{instance.id}")
            # A changed agent process changes what its host can serve.
            if instance.owner_kind == "system":
                affected.add(f"system:{instance.owner}")
    # Expand domain taint downward: members of changed domains.
    containment = facts.transitive_containment()
    for child, parents in containment.items():
        if parents & affected:
            affected.add(child)
    # A tainted instance taints the targets it can answer for: a literal
    # ``process:P`` reference is covered universally over P's instances,
    # and a proxied element is served from wherever its proxies live —
    # so a domain change around any such instance must re-verdict those
    # references even when client and literal target are elsewhere.
    for instance in facts.instances:
        if f"instance:{instance.id}" in affected:
            affected.add(f"process:{instance.process_name}")
            process = facts.specification.processes.get(instance.process_name)
            if process is not None:
                for proxied in process.proxied_systems():
                    affected.add(f"system:{proxied}")
    return affected


def reference_affected(reference, affected: Set[str]) -> bool:
    """Could this reference's verdict have changed under the taint set?"""
    if reference.client in affected:
        return True
    if reference.server in affected:
        return True
    if reference.server == "*":
        # Wildcard coverage can shift with any change at all.
        return bool(affected)
    for domain in reference.client_domains:
        if f"domain:{domain}" in affected:
            return True
    return False


class DeltaChecker:
    """Incremental consistency checking across specification versions.

    Usage::

        checker = DeltaChecker(tree)
        first  = checker.check(version1)   # full check, verdicts remembered
        second = checker.check(version2)   # only affected references re-run

    A thin convenience wrapper over one persistent
    :class:`ConsistencyChecker` and its :meth:`~ConsistencyChecker.recheck`
    — the checker's memoized views, containment closures and per-shape
    verdicts stay warm across versions.
    """

    def __init__(self, tree: MibTree, engine: str = "indexed", jobs: int = 1):
        self._tree = tree
        self._engine = engine
        self._jobs = jobs
        self._checker: Optional[ConsistencyChecker] = None
        self.last_rechecked = 0
        self.last_reused = 0

    @property
    def checker(self) -> Optional[ConsistencyChecker]:
        """The persistent engine (None before the first check)."""
        return self._checker

    def check(self, specification: Specification) -> ConsistencyResult:
        if self._checker is None:
            self._checker = ConsistencyChecker(
                specification, self._tree, engine=self._engine
            )
            result = self._checker.check(jobs=self._jobs)
            self.last_rechecked = result.stats["references"]
            self.last_reused = 0
            return result
        delta = EvolutionDelta.between(
            self._checker.specification, specification
        )
        result = self._checker.recheck(delta, jobs=self._jobs)
        self.last_rechecked = result.stats["rechecked"]
        self.last_reused = result.stats["reused"]
        return result
