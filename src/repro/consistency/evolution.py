"""Specification evolution: diffing and incremental re-checking.

Section 5 observes that the cost of regenerating everything "depends on
the frequency of changes to the management specification".  The same is
true of re-checking consistency.  This module provides:

* :class:`SpecificationDiff` — a structural diff between two versions of
  an internet specification: added/removed/changed processes, systems
  and domains;
* :class:`DeltaChecker` — incremental consistency checking: only the
  references that could be affected by the changed declarations are
  re-checked, and the remembered verdicts of untouched references are
  reused.  A reference is affected when its client instance, its target,
  or any domain containing either changed.

The delta check is exact (proved by the equivalence test-suite and by
construction: coverage of a reference depends only on the entities the
affectedness test tracks).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.facts import FactSet
from repro.consistency.report import ConsistencyResult, Inconsistency
from repro.mib.tree import MibTree
from repro.nmsl.specs import (
    DomainSpec,
    ProcessSpec,
    Specification,
    SystemSpec,
)


@dataclass(frozen=True)
class DiffEntry:
    kind: str  # "process" | "system" | "domain"
    name: str
    change: str  # "added" | "removed" | "changed"

    def render(self) -> str:
        return f"{self.change} {self.kind} {self.name}"


@dataclass
class SpecificationDiff:
    """What changed between two specification versions."""

    entries: List[DiffEntry] = field(default_factory=list)

    def changed_names(self, kind: str) -> Set[str]:
        return {entry.name for entry in self.entries if entry.kind == kind}

    def is_empty(self) -> bool:
        return not self.entries

    def render(self) -> str:
        if not self.entries:
            return "no changes"
        return "\n".join(entry.render() for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def _spec_tables(specification: Specification):
    return (
        ("process", specification.processes),
        ("system", specification.systems),
        ("domain", specification.domains),
    )


def _fingerprint(spec_obj) -> Tuple:
    """A comparable value-summary of one declaration."""
    if isinstance(spec_obj, ProcessSpec):
        return (
            spec_obj.params,
            tuple(sorted(spec_obj.supports)),
            tuple(
                (e.variables, e.to_domain, e.access, e.frequency.as_tuple())
                for e in spec_obj.exports
            ),
            tuple(
                (q.target, q.requests, q.kind, q.access, q.frequency.as_tuple())
                for q in spec_obj.queries
            ),
            tuple((p.target_system, p.protocol) for p in spec_obj.proxies),
        )
    if isinstance(spec_obj, SystemSpec):
        return (
            spec_obj.cpu,
            tuple(
                (i.name, i.network, i.if_type, i.speed_bps)
                for i in spec_obj.interfaces
            ),
            tuple(sorted(spec_obj.supports)),
            tuple((p.process_name, p.args) for p in spec_obj.processes),
        )
    if isinstance(spec_obj, DomainSpec):
        return (
            tuple(sorted(spec_obj.systems)),
            tuple(sorted(spec_obj.subdomains)),
            tuple((p.process_name, p.args) for p in spec_obj.processes),
            tuple(
                (e.variables, e.to_domain, e.access, e.frequency.as_tuple())
                for e in spec_obj.exports
            ),
        )
    return (repr(spec_obj),)


def diff_specifications(
    old: Specification, new: Specification
) -> SpecificationDiff:
    """Structural diff of two specification versions."""
    diff = SpecificationDiff()
    for (kind, old_table), (_kind2, new_table) in zip(
        _spec_tables(old), _spec_tables(new)
    ):
        for name in sorted(set(old_table) | set(new_table)):
            if name not in new_table:
                diff.entries.append(DiffEntry(kind, name, "removed"))
            elif name not in old_table:
                diff.entries.append(DiffEntry(kind, name, "added"))
            elif _fingerprint(old_table[name]) != _fingerprint(new_table[name]):
                diff.entries.append(DiffEntry(kind, name, "changed"))
    return diff


class DeltaChecker:
    """Incremental consistency checking across specification versions.

    Usage::

        checker = DeltaChecker(tree)
        first  = checker.check(version1)   # full check, verdicts remembered
        second = checker.check(version2)   # only affected references re-run
    """

    def __init__(self, tree: MibTree):
        self._tree = tree
        self._previous: Optional[Specification] = None
        #: reference key -> problems from the last check.
        self._verdicts: Dict[Tuple, List[Inconsistency]] = {}
        self.last_rechecked = 0
        self.last_reused = 0

    @staticmethod
    def _reference_key(reference) -> Tuple:
        return (
            reference.client,
            reference.server,
            reference.variables,
            reference.access,
            reference.frequency.as_tuple(),
            reference.client_domains,
        )

    def check(self, specification: Specification) -> ConsistencyResult:
        started = time.perf_counter()
        checker = ConsistencyChecker(specification, self._tree)
        facts = checker.facts
        if self._previous is None:
            result = checker.check()
            self._remember(facts, checker)
            self._previous = specification
            self.last_rechecked = len(facts.references)
            self.last_reused = 0
            return result

        diff = diff_specifications(self._previous, specification)
        affected = self._affected_entities(diff, facts)
        problems: List[Inconsistency] = []
        warnings: List[str] = []
        problems.extend(checker._check_instantiations(facts, warnings))
        rechecked = reused = 0
        new_verdicts: Dict[Tuple, List[Inconsistency]] = {}
        for reference in facts.references:
            key = self._reference_key(reference)
            if key in self._verdicts and not self._is_affected(
                reference, affected
            ):
                verdict = self._verdicts[key]
                reused += 1
            else:
                verdict = checker._check_reference(reference, facts)
                rechecked += 1
            new_verdicts[key] = verdict
            problems.extend(verdict)
        self._verdicts = new_verdicts
        self._previous = specification
        self.last_rechecked = rechecked
        self.last_reused = reused
        elapsed = time.perf_counter() - started
        return ConsistencyResult(
            consistent=not problems,
            inconsistencies=problems,
            warnings=warnings,
            stats={
                "instances": len(facts.instances),
                "references": len(facts.references),
                "permissions": len(facts.permissions),
                "rechecked": rechecked,
                "reused": reused,
                "diff_entries": len(diff),
                "seconds": elapsed,
            },
        )

    def _remember(self, facts: FactSet, checker: ConsistencyChecker) -> None:
        self._verdicts = {}
        for reference in facts.references:
            self._verdicts[self._reference_key(reference)] = (
                checker._check_reference(reference, facts)
            )

    def _affected_entities(
        self, diff: SpecificationDiff, facts: FactSet
    ) -> Set[str]:
        """Entity tags whose involvement forces a re-check.

        Changed domains taint everything they transitively contain (their
        exports and memberships gate coverage); changed systems taint
        their instances; changed processes taint their instances; and the
        transitive-ancestor expansion makes grantee-side changes visible
        too.
        """
        affected: Set[str] = set()
        for name in diff.changed_names("domain"):
            affected.add(f"domain:{name}")
        for name in diff.changed_names("system"):
            affected.add(f"system:{name}")
        changed_processes = diff.changed_names("process")
        for name in changed_processes:
            affected.add(f"process:{name}")
        for instance in facts.instances:
            if instance.process_name in changed_processes:
                affected.add(f"instance:{instance.id}")
                # A changed agent process changes what its host can serve.
                if instance.owner_kind == "system":
                    affected.add(f"system:{instance.owner}")
        # Expand domain taint downward: members of changed domains.
        containment = facts.transitive_containment()
        for child, parents in containment.items():
            if parents & affected:
                affected.add(child)
        return affected

    def _is_affected(self, reference, affected: Set[str]) -> bool:
        if reference.client in affected:
            return True
        if reference.server in affected:
            return True
        if reference.server == "*":
            # Wildcard coverage can shift with any change at all.
            return bool(affected)
        for domain in reference.client_domains:
            if f"domain:{domain}" in affected:
                return True
        return False
