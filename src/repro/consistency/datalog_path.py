"""The datalog path: bottom-up evaluation of the consistency rules.

A third engine between the closure fast path and full SLD resolution:
the same facts and (positive) rules as the CLP(R) path, evaluated
bottom-up with semi-naive iteration over interned fact tuples
(:mod:`repro.consistency.seminaive`).  The rule text below is still the
single source of truth — it is parsed with the CLP(R) parser and
translated mechanically into the tuple engine's compiled-rule IR, so
the two logical paths cannot drift apart.  The closed-world negation of
the ``inconsistent`` rule is applied afterwards as a set difference:
every derived ``ref_inst`` without a matching ``ok`` is an
inconsistency — which is exactly what negation-as-failure computes over
a finite model.

Provenance comes for free: the fact base records why each fact was
derived, so the report can show the derivation of the offending
reference (the "immediate causes" of Section 4.2).
"""

from __future__ import annotations

from typing import List, Sequence

from repro import obs
from repro.clpr.program import Clause, parse_clauses
from repro.clpr.terms import Atom, Num, Struct, Term
from repro.clpr.terms import Var as ClprVar
from repro.consistency.facts import FactGenerator
from repro.consistency.report import (
    ConsistencyResult,
    Inconsistency,
    InconsistencyKind,
)
from repro.consistency.seminaive import (
    Guard,
    Literal,
    Rule,
    Var,
    seminaive_fixpoint,
)
from repro.errors import ClprError
from repro.mib.tree import MibTree
from repro.nmsl.specs import Specification

#: The positive consistency rules (the CLP(R) rule text minus the
#: negation-bearing ``inconsistent`` rule, which the closed-world step
#: below replaces).
POSITIVE_RULES = r"""
contains_tc(X, Y) :- contains(X, Y).
contains_tc(X, Z) :- contains(X, Y), contains_tc(Y, Z).

in_domain(I, D) :- contains_tc(domain(D), instance(I)).
in_domain(I, D) :- instance(I, S, _), contains_tc(domain(D), system(S)).

ref_inst(I, J, V, A, T) :-
    instance(I, _, P), proc_query(P, proc(Q), V, A, T), instance(J, _, Q).
ref_inst(I, J, V, A, T) :-
    instance(I, _, P), proc_query(P, param(N), V, A, T),
    inst_arg(I, N, system(S)), instance(J, S, _).
ref_inst(I, J, V, A, T) :-
    instance(I, _, P), proc_query(P, param(N), V, A, T),
    inst_arg(I, N, proc(Q)), instance(J, _, Q).
ref_inst(I, J, V, A, T) :-
    instance(I, _, P), proc_query(P, param(N), V, A, T),
    inst_arg(I, N, system(S)), proxy_for(Q, system(S), _), instance(J, _, Q).

perm_inst(J, D, V, A, T) :-
    instance(J, _, P), proc_export(P, D, V, A, T).
perm_inst(J, D, V, A, T) :-
    instance(J, S, _), contains_tc(domain(G), system(S)),
    dom_export(G, D, V, A, T).
perm_inst(J, D, V, A, T) :-
    contains_tc(domain(G), instance(J)), dom_export(G, D, V, A, T).

grantee_ok(public, I) :- instance(I, _, _).
grantee_ok(D, I) :- in_domain(I, D).

server_ok(J, V) :-
    instance(J, S, P),
    proc_supports(P, PV), data_covers(PV, V),
    system_supports(S, SV), data_covers(SV, V).
server_ok(J, V) :-
    instance(J, _, P), proxy_for(P, system(S), _),
    proc_supports(P, PV), data_covers(PV, V),
    system_supports(S, SV), data_covers(SV, V).

covered(I, J, V, A, T) :-
    ref_inst(I, J, V, A, T),
    perm_inst(J, D, PV, PA, PT),
    grantee_ok(D, I),
    data_covers(PV, V),
    access_covers(PA, A),
    T >= PT.

in_domain_direct(I, D) :- contains(domain(D), instance(I)).
in_domain_direct(I, D) :- instance(I, S, _), contains(domain(D), system(S)).
covered(I, J, V, A, T) :-
    ref_inst(I, J, V, A, T),
    in_domain_direct(I, D), in_domain_direct(J, D).

ok(I, J, V, A, T) :- covered(I, J, V, A, T), server_ok(J, V).
"""

_GUARD_FUNCTORS = {"<", "=<", ">", ">=", "=:=", "=\\="}


def _pattern_of(term: Term):
    """CLP(R) term -> tuple-engine pattern."""
    if isinstance(term, ClprVar):
        # Keep the parser's identity: distinct anonymous ``_`` variables
        # carry distinct ids and must stay distinct.
        return Var(f"{term.name}.{term.id}")
    if isinstance(term, Atom):
        return term.name
    if isinstance(term, Num):
        value = term.value
        return int(value) if value.denominator == 1 else float(value)
    if isinstance(term, Struct):
        return (term.functor,) + tuple(
            _pattern_of(arg) for arg in term.args
        )
    raise ClprError(f"cannot translate term {term!r} to the tuple engine")


def _literal_of(term: Term) -> Literal:
    if not isinstance(term, Struct):
        raise ClprError(f"rule literal {term!r} is not a compound term")
    return Literal(
        term.functor, tuple(_pattern_of(arg) for arg in term.args)
    )


def translate_clauses(clauses: Sequence[Clause]) -> List[Rule]:
    """Parsed CLP(R) rule clauses -> tuple-engine rules, semantics kept."""
    rules: List[Rule] = []
    for clause in clauses:
        body: List[Literal] = []
        guards: List[Guard] = []
        for goal in clause.body:
            if (
                isinstance(goal, Struct)
                and goal.functor in _GUARD_FUNCTORS
                and len(goal.args) == 2
            ):
                guards.append(
                    Guard(
                        goal.functor,
                        _pattern_of(goal.args[0]),
                        _pattern_of(goal.args[1]),
                    )
                )
            else:
                body.append(_literal_of(goal))
        rules.append(
            Rule(_literal_of(clause.head), tuple(body), tuple(guards))
        )
    return rules


_COMPILED_RULES: List[Rule] = []


def consistency_rules() -> List[Rule]:
    """The translated POSITIVE_RULES (parsed and translated once)."""
    if not _COMPILED_RULES:
        _COMPILED_RULES.extend(translate_clauses(parse_clauses(POSITIVE_RULES)))
    return _COMPILED_RULES


def check_with_datalog(
    specification: Specification,
    tree: MibTree,
) -> ConsistencyResult:
    """Bottom-up consistency check; same model as the CLP(R) path."""
    o = obs.current()
    with o.span("consistency.check", engine="datalog") as span:
        with o.span("consistency.facts"):
            facts = FactGenerator(specification, tree).generate()
            base_facts = facts.to_tuples()
            rules = consistency_rules()
        with o.span("consistency.forward_chain"):
            fb = seminaive_fixpoint(base_facts, rules)

        # Closed-world step: ref_inst without a matching ok.
        ok_tuples = {fact[1:] for fact in fb.facts_for("ok")}
        problems: List[Inconsistency] = []
        for fact in sorted(fb.facts_for("ref_inst"), key=repr):
            if fact[1:] not in ok_tuples:
                derivation = "\n".join(fb.explain(fact, depth=3)[:4])
                problems.append(
                    Inconsistency(
                        kind=InconsistencyKind.MISSING_PERMISSION,
                        message=(
                            f"datalog proved: reference without permission "
                            f"{fact!r}"
                        ),
                        causes=(derivation,),
                    )
                )
        span.annotate(derived_facts=len(fb))
    if o.enabled:
        o.counter(
            "repro_consistency_checks_total",
            "consistency checks run",
            engine="datalog",
        ).inc()
        for rule in sorted(fb.rule_stats):
            stats = fb.rule_stats[rule]
            if stats["firings"]:
                o.counter(
                    "repro_datalog_rule_firings_total",
                    "new facts derived per rule",
                    rule=rule,
                ).inc(stats["firings"])
            o.histogram(
                "repro_datalog_rule_seconds",
                _help="per-rule evaluation time across rounds",
                rule=rule,
            ).observe(round(stats["seconds"], 9))
    return ConsistencyResult(
        consistent=not problems,
        inconsistencies=problems,
        stats={
            "engine": "datalog-seminaive",
            "derived_facts": len(fb),
            "seconds": span.elapsed,
            "rule_stats": fb.rule_stats,
        },
    )
