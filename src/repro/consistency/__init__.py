"""The NMSL Consistency Checker (paper Section 4.2).

The consistency model has six relationships (paper Figure 4.9):

=====================  ====================================================
``contains(X, Y)``     X contains Y
``instan(X, Y, Z)``    X instantiates Y with unique id Z
``ref_eq(X,Y,A,T)``    it is possible that X references Y for access A
                       every T seconds
``ref_gt(X,Y,A,T)``    ... at most every T seconds
``perm_eq(X,Y,A,T)``   X has permission to reference Y for access A every
                       T seconds
``perm_gt(X,Y,A,T)``   ... at most every T seconds
=====================  ====================================================

"A NMSL specification is said to be consistent if, for every reference
relationship, there is a corresponding permission."  Three rule families
drive the proof: **transitivity** (containment), **distribution**
(containment/instantiation over each other and over reference and
permission), and **reduction** (relating references to permissions).  The
proof is a *proof of inconsistency* under a closed-world assumption; found
inconsistencies are reported with their immediate causes.

Two implementations are provided, compared by an ablation benchmark:

* :class:`~repro.consistency.checker.ConsistencyChecker` — the scalable
  closure-based checker (bottom-up datalog for the closure rules, set
  difference for the closed-world reduction step);
* :func:`~repro.consistency.checker.check_with_clpr` — the faithful path:
  the compiler's CLP(R) consistency output plus the rule text of
  :mod:`repro.consistency.rules`, run through :class:`repro.clpr.Engine`;
* :func:`~repro.consistency.datalog_path.check_with_datalog` — the middle
  ground: the same rules evaluated bottom-up (semi-naive), with the
  closed-world negation as a final set difference.

Speculative modes (paper Section 4.2) live in
:mod:`repro.consistency.speculative`: checking a new organisation's
specification against an existing internet, and running the check "in
reverse" to solve for the reference/permission parameters that keep the
combined specification consistent.
"""

from repro.consistency.relations import (
    ACCESS_ORDER,
    Permission,
    Reference,
    access_atom,
)
from repro.consistency.facts import FactGenerator, InstanceId
from repro.consistency.checker import (
    ConsistencyChecker,
    ConsistencyResult,
    check_with_clpr,
)
from repro.consistency.datalog_path import check_with_datalog
from repro.consistency.evolution import (
    DeltaChecker,
    SpecificationDiff,
    diff_specifications,
)
from repro.consistency.impact import (
    ConfigChange,
    ImpactAnalyzer,
    ImpactSet,
    PermissionChange,
    VerdictFlip,
    impacted_elements,
)
from repro.consistency.report import Inconsistency, InconsistencyKind
from repro.consistency.speculative import SpeculativeChecker, solve_for_frequency

__all__ = [
    "ACCESS_ORDER",
    "ConfigChange",
    "ConsistencyChecker",
    "ConsistencyResult",
    "DeltaChecker",
    "FactGenerator",
    "ImpactAnalyzer",
    "ImpactSet",
    "SpecificationDiff",
    "diff_specifications",
    "Inconsistency",
    "InconsistencyKind",
    "InstanceId",
    "Permission",
    "PermissionChange",
    "Reference",
    "SpeculativeChecker",
    "VerdictFlip",
    "access_atom",
    "check_with_clpr",
    "check_with_datalog",
    "impacted_elements",
    "solve_for_frequency",
]
