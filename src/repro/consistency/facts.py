"""Fact generation: from a typed Specification to consistency relations.

This is the compiler's "consistency output" (paper Section 3.2/6.2) in two
forms:

* Python objects (:class:`FactSet`) — instances, containment, references
  and permissions — consumed by the closure-based checker;
* CLP(R) program text (:meth:`FactSet.to_clpr_text`) — the literal
  "statements of a logic programming language" handed to the CLP(R)
  engine by the faithful checker path.

Instantiation: every ``process`` clause of a system or domain creates an
*instance* with a unique id (``instan(X, Y, Z)`` of Figure 4.9).
References are expanded per client instance; query targets may be
parameters (bound by invocation arguments or left ``*``), literal process
names, or system names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConsistencyError
from repro.mib.tree import Access, MibTree
from repro.mib.view import MibView
from repro.nmsl.frequency import FrequencySpec
from repro.nmsl.specs import (
    WILDCARD,
    DomainSpec,
    ProcessInvocation,
    ProcessSpec,
    Specification,
    SystemSpec,
    PUBLIC_DOMAIN,
)
from repro.consistency.relations import Permission, Reference, access_atom


@dataclass(frozen=True)
class InstanceId:
    """A unique process instantiation: ``instan(owner, process, ordinal)``."""

    owner: str  # system or domain name
    owner_kind: str  # "system" | "domain"
    process_name: str
    ordinal: int
    args: Tuple[object, ...] = ()

    @cached_property
    def id(self) -> str:
        # cached_property writes to the instance __dict__ directly, which
        # a frozen dataclass permits: the id string is built once, not on
        # every lookup (the checker keys several hot dicts on it).
        return f"{self.process_name}@{self.owner}#{self.ordinal}"

    def __str__(self) -> str:
        return self.id


@dataclass
class FactSet:
    """Everything the checker needs, plus CLP(R) rendering."""

    specification: Specification
    tree: MibTree
    instances: List[InstanceId] = field(default_factory=list)
    #: containment edges parent -> child, entities named as
    #: ``domain:<name>``, ``system:<name>``, ``instance:<id>``.
    containment: List[Tuple[str, str]] = field(default_factory=list)
    references: List[Reference] = field(default_factory=list)
    permissions: List[Permission] = field(default_factory=list)
    #: instance id -> the view its process type supports.
    instance_supports: Dict[str, MibView] = field(default_factory=dict)
    #: system name -> the view the element supports.
    system_supports: Dict[str, MibView] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)
    #: expansion accounting filled in by :class:`IncrementalFactGenerator`:
    #: how many declarations were expanded fresh vs reused from the
    #: previous generation (empty for the plain :class:`FactGenerator`).
    expansion: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived lookups.
    # ------------------------------------------------------------------
    _containment_cache: Optional[Dict[str, Set[str]]] = None

    def transitive_containment(self) -> Dict[str, Set[str]]:
        """child -> set of all (transitive) containers (computed once).

        Entities whose *direct* parent sets are identical share one
        ancestor set object: at paper scale the ten thousand systems of
        a domain (and the instances on them) would otherwise each build
        an identical set.  Callers treat the returned sets as read-only.
        """
        if self._containment_cache is not None:
            return self._containment_cache
        parents: Dict[str, Set[str]] = {}
        direct: Dict[str, Set[str]] = {}
        for parent, child in self.containment:
            direct.setdefault(child, set()).add(parent)
        #: canonical direct-parent key -> the shared ancestor set.
        shared: Dict[Tuple[str, ...], Set[str]] = {}

        def collect(child: str) -> Set[str]:
            got = parents.get(child)
            if got is not None:
                return got
            parents[child] = set()  # cycle guard (cycles reported elsewhere)
            key = tuple(sorted(direct.get(child, ())))
            result = shared.get(key)
            if result is None:
                result = set()
                for parent in key:
                    result.add(parent)
                    result.update(collect(parent))
                shared[key] = result
            parents[child] = result
            return result

        for child in direct:
            collect(child)
        self._containment_cache = parents
        return parents

    def invalidate_caches(self) -> None:
        """Call after mutating ``containment`` post-generation."""
        self._containment_cache = None
        self._grantor_cache = None
        self._instance_cache = None
        self._direct_domains_cache = None
        self._taint_cache = None

    _taint_cache: Optional[Tuple[Dict[str, Set[int]], Set[int]]] = None

    def domain_reference_taint(
        self,
    ) -> Tuple[Dict[str, Set[int]], Set[int]]:
        """domain name -> positions of references its exports may affect.

        Returns ``(index, wildcard)``: a conservative superset — every
        reference whose verdict could change when the named domain's
        export clauses change appears in its position set; ``wildcard``
        holds the positions of run-time (``*``) targets, affected by any
        delta.  A function of references, containment and instances
        only, so it survives an exports-only permission patch; the
        checker uses it to re-reduce a handful of references after a
        one-domain delta instead of the whole internet.
        """
        if self._taint_cache is not None:
            return self._taint_cache
        closure = self.transitive_containment()
        index: Dict[str, Set[int]] = {}
        wildcard: Set[int] = set()
        for position, reference in enumerate(self.references):
            server = reference.server
            if server == "*":
                wildcard.add(position)
                continue
            # The client's domains grant implicit/exported access...
            domains = set(reference.client_domains)
            kind, _sep, name = server.partition(":")
            if kind == "domain":
                # ...and so do the server side's containing domains.
                domains.add(name)
                for parent in closure.get(server, ()):
                    if parent.startswith("domain:"):
                        domains.add(parent.split(":", 1)[1])
            elif kind == "system":
                for parent in closure.get(f"system:{name}", ()):
                    if parent.startswith("domain:"):
                        domains.add(parent.split(":", 1)[1])
                # An agentless element may be proxy-managed from another
                # domain; taint the proxies' domains too.
                for proxy in self.proxies_for_system(name):
                    domains.update(self.domains_of_instance(proxy))
            elif kind == "process":
                for instance in self.instances_of_process(name):
                    domains.update(self.domains_of_instance(instance))
            for domain in domains:
                index.setdefault(domain, set()).add(position)
        self._taint_cache = (index, wildcard)
        return self._taint_cache

    _grantor_cache: Optional[Dict[str, List[Permission]]] = None

    def permissions_by_grantor(self) -> Dict[str, List[Permission]]:
        """grantor tag -> its permissions (computed once)."""
        if self._grantor_cache is None:
            index: Dict[str, List[Permission]] = {}
            for permission in self.permissions:
                index.setdefault(permission.grantor, []).append(permission)
            self._grantor_cache = index
        return self._grantor_cache

    _instance_cache: Optional[Dict[str, InstanceId]] = None

    def instance_by_id(self, instance_id: str) -> Optional["InstanceId"]:
        if self._instance_cache is None:
            self._instance_cache = {
                instance.id: instance for instance in self.instances
            }
        return self._instance_cache.get(instance_id)

    def domains_of_instance(self, instance: InstanceId) -> Tuple[str, ...]:
        containers = self.transitive_containment().get(
            f"instance:{instance.id}", set()
        )
        return tuple(
            sorted(
                name.split(":", 1)[1]
                for name in containers
                if name.startswith("domain:")
            )
        )

    def direct_domains_of_instance(self, instance: InstanceId) -> Tuple[str, ...]:
        """Domains that directly contain the instance's owner.

        Used for the implicit intra-domain permission: only sharing an
        *immediate* administrative domain grants implicit access — a
        common distant ancestor (an umbrella domain) does not.
        """
        if instance.owner_kind == "domain":
            return (instance.owner,)
        owner = f"system:{instance.owner}"
        return tuple(
            sorted(
                parent.split(":", 1)[1]
                for parent, child in self.containment
                if child == owner and parent.startswith("domain:")
            )
        )

    _direct_domains_cache: Optional[Dict[str, Tuple[str, ...]]] = None

    def direct_domains_map(self) -> Dict[str, Tuple[str, ...]]:
        """``instance:<id>`` tag -> immediate administrative domains.

        Built in one pass over the containment edges — the indexed
        engine's replacement for the per-call edge scan of
        :meth:`direct_domains_of_instance` (which stays as written for
        the legacy scan engine's ablation baseline).
        """
        if self._direct_domains_cache is None:
            by_system: Dict[str, List[str]] = {}
            for parent, child in self.containment:
                if parent.startswith("domain:") and child.startswith("system:"):
                    by_system.setdefault(
                        child.split(":", 1)[1], []
                    ).append(parent.split(":", 1)[1])
            # Sort each system's domain list once (it is almost always a
            # single domain), not once per instance on the system.
            system_domains: Dict[str, Tuple[str, ...]] = {
                name: tuple(domains) if len(domains) == 1
                else tuple(sorted(domains))
                for name, domains in by_system.items()
            }
            mapping: Dict[str, Tuple[str, ...]] = {}
            empty: Tuple[str, ...] = ()
            for instance in self.instances:
                if instance.owner_kind == "domain":
                    mapping[f"instance:{instance.id}"] = (instance.owner,)
                else:
                    mapping[f"instance:{instance.id}"] = system_domains.get(
                        instance.owner, empty
                    )
            self._direct_domains_cache = mapping
        return self._direct_domains_cache

    _agents_cache: Optional[List[InstanceId]] = None
    _by_process_cache: Optional[Dict[str, List[InstanceId]]] = None
    _by_system_cache: Optional[Dict[str, List[InstanceId]]] = None

    def agents(self) -> List[InstanceId]:
        """Instances whose process type supports data (paper footnote 1)."""
        if self._agents_cache is None:
            self._agents_cache = [
                instance
                for instance in self.instances
                if self.specification.processes[instance.process_name].is_agent()
            ]
        return self._agents_cache

    def instances_of_process(self, process_name: str) -> List[InstanceId]:
        if self._by_process_cache is None:
            index: Dict[str, List[InstanceId]] = {}
            for instance in self.instances:
                index.setdefault(instance.process_name, []).append(instance)
            self._by_process_cache = index
        return self._by_process_cache.get(process_name, [])

    def instances_on_system(self, system_name: str) -> List[InstanceId]:
        if self._by_system_cache is None:
            index: Dict[str, List[InstanceId]] = {}
            for instance in self.instances:
                if instance.owner_kind == "system":
                    index.setdefault(instance.owner, []).append(instance)
            self._by_system_cache = index
        return self._by_system_cache.get(system_name, [])

    _proxy_cache: Optional[Dict[str, List[InstanceId]]] = None

    def proxies_for_system(self, system_name: str) -> List[InstanceId]:
        """Instances whose process type proxies *system_name*."""
        if self._proxy_cache is None:
            index: Dict[str, List[InstanceId]] = {}
            for instance in self.instances:
                process = self.specification.processes[instance.process_name]
                for proxied in process.proxied_systems():
                    index.setdefault(proxied, []).append(instance)
            self._proxy_cache = index
        return self._proxy_cache.get(system_name, [])

    # ------------------------------------------------------------------
    # CLP(R) text rendering (the paper's consistency output format).
    # ------------------------------------------------------------------
    def to_clpr_text(self) -> str:
        lines: List[str] = ["% NMSL consistency output (compiler-generated facts)"]
        spec = self.specification
        for name, process in sorted(spec.processes.items()):
            for path in process.supports:
                lines.append(f"proc_supports({_atom(name)}, {_atom(path)}).")
            for export in process.exports:
                for path in export.variables:
                    lines.append(
                        "proc_export("
                        f"{_atom(name)}, {_atom(export.to_domain)}, {_atom(path)}, "
                        f"{access_atom(export.access)}, "
                        f"{_period(export.frequency)})."
                    )
            for query in process.queries:
                target = self._render_target(process, query.target)
                for path in query.requests:
                    lines.append(
                        "proc_query("
                        f"{_atom(name)}, {target}, {_atom(path)}, "
                        f"{access_atom(query.access)}, "
                        f"{_period(query.frequency)})."
                    )
            for proxy in process.proxies:
                lines.append(
                    "proxy_for("
                    f"{_atom(name)}, system({_atom(proxy.target_system)}), "
                    f"{_atom(proxy.protocol or 'direct')})."
                )
        for instance in self.instances:
            lines.append(
                "instance("
                f"{_atom(instance.id)}, {_atom(instance.owner)}, "
                f"{_atom(instance.process_name)})."
            )
            for index, arg in enumerate(instance.args):
                if arg == WILDCARD:
                    continue
                value = str(arg)
                if value in spec.systems:
                    rendered = f"system({_atom(value)})"
                elif value in spec.processes:
                    rendered = f"proc({_atom(value)})"
                elif value in spec.domains:
                    rendered = f"domain({_atom(value)})"
                else:
                    rendered = f"val({_atom(value)})"
                lines.append(
                    f"inst_arg({_atom(instance.id)}, {index}, {rendered})."
                )
        for system_name, view in sorted(self.system_supports.items()):
            for path in sorted(view.paths()):
                lines.append(
                    f"system_supports({_atom(system_name)}, {_atom(path)})."
                )
        for system in spec.systems.values():
            for interface in system.interfaces:
                lines.append(
                    f"speed({_atom(system.name)}, {interface.speed_bps})."
                )
        for parent, child in self.containment:
            lines.append(f"contains({_entity(parent)}, {_entity(child)}).")
        for domain in spec.domains.values():
            for export in domain.exports:
                for path in export.variables:
                    lines.append(
                        "dom_export("
                        f"{_atom(domain.name)}, {_atom(export.to_domain)}, "
                        f"{_atom(path)}, {access_atom(export.access)}, "
                        f"{_period(export.frequency)})."
                    )
        lines.extend(self._data_containment_facts())
        lines.extend(_ACCESS_COVER_FACTS)
        return "\n".join(lines) + "\n"

    def _render_target(self, process: ProcessSpec, target: str) -> str:
        names = process.param_names()
        if target in names:
            return f"param({names.index(target)})"
        return f"proc({_atom(target)})"

    def _data_containment_facts(self) -> List[str]:
        """``data_covers(Parent, Child)`` for every mentioned path pair."""
        return [
            f"data_covers({_atom(parent)}, {_atom(child)})."
            for parent, child in self._data_containment_pairs()
        ]

    def _data_containment_pairs(self) -> List[Tuple[str, str]]:
        mentioned: Set[str] = set()
        spec = self.specification
        for process in spec.processes.values():
            mentioned.update(process.supports)
            for export in process.exports:
                mentioned.update(export.variables)
            for query in process.queries:
                mentioned.update(query.requests)
        for system in spec.systems.values():
            mentioned.update(system.supports)
        for domain in spec.domains.values():
            for export in domain.exports:
                mentioned.update(export.variables)
        resolvable = [path for path in sorted(mentioned) if self.tree.knows(path)]
        pairs = []
        for parent in resolvable:
            parent_oid = self.tree.resolve(parent).oid
            for child in resolvable:
                if self.tree.resolve(child).oid.starts_with(parent_oid):
                    pairs.append((parent, child))
        return pairs

    # ------------------------------------------------------------------
    # Tuple rendering (the semi-naive datalog engine's native format).
    # ------------------------------------------------------------------
    def to_tuples(self) -> List[tuple]:
        """The same base facts as :meth:`to_clpr_text`, as plain tuples.

        Feeds :func:`repro.consistency.seminaive.seminaive_fixpoint`
        directly — no text round-trip, no parser.  Schemas mirror the
        CLP(R) rendering exactly (tagged entities become ``(tag, name)``
        pairs, periods stay numeric) except that the ``speed`` facts are
        omitted: no consistency rule reads them.
        """
        facts: List[tuple] = []
        spec = self.specification
        for name, process in sorted(spec.processes.items()):
            for path in process.supports:
                facts.append(("proc_supports", name, path))
            for export in process.exports:
                access = access_atom(export.access)
                period = export.frequency.min_period
                for path in export.variables:
                    facts.append(
                        ("proc_export", name, export.to_domain, path,
                         access, period)
                    )
            for query in process.queries:
                target = self._target_tuple(process, query.target)
                access = access_atom(query.access)
                period = query.frequency.min_period
                for path in query.requests:
                    facts.append(
                        ("proc_query", name, target, path, access, period)
                    )
            for proxy in process.proxies:
                facts.append(
                    ("proxy_for", name, ("system", proxy.target_system),
                     proxy.protocol or "direct")
                )
        for instance in self.instances:
            facts.append(
                ("instance", instance.id, instance.owner,
                 instance.process_name)
            )
            for index, arg in enumerate(instance.args):
                if arg == WILDCARD:
                    continue
                value = str(arg)
                if value in spec.systems:
                    tag = "system"
                elif value in spec.processes:
                    tag = "proc"
                elif value in spec.domains:
                    tag = "domain"
                else:
                    tag = "val"
                facts.append(("inst_arg", instance.id, index, (tag, value)))
        for system_name, view in sorted(self.system_supports.items()):
            for path in sorted(view.paths()):
                facts.append(("system_supports", system_name, path))
        for parent, child in self.containment:
            facts.append(
                ("contains", _entity_tuple(parent), _entity_tuple(child))
            )
        for domain in spec.domains.values():
            for export in domain.exports:
                access = access_atom(export.access)
                period = export.frequency.min_period
                for path in export.variables:
                    facts.append(
                        ("dom_export", domain.name, export.to_domain, path,
                         access, period)
                    )
        for parent, child in self._data_containment_pairs():
            facts.append(("data_covers", parent, child))
        facts.extend(ACCESS_COVER_TUPLES)
        return facts

    def _target_tuple(self, process: ProcessSpec, target: str) -> tuple:
        names = process.param_names()
        if target in names:
            return ("param", names.index(target))
        return ("proc", target)


_ACCESS_COVER_PAIRS = [
    ("any", "readonly"),
    ("any", "writeonly"),
    ("any", "readwrite"),
    ("any", "any"),
    ("any", "none"),
    ("readwrite", "readonly"),
    ("readwrite", "writeonly"),
    ("readwrite", "readwrite"),
    ("readwrite", "none"),
    ("readonly", "readonly"),
    ("readonly", "none"),
    ("writeonly", "writeonly"),
    ("writeonly", "none"),
    ("none", "none"),
]

ACCESS_COVER_TUPLES = [
    ("access_covers", broad, narrow) for broad, narrow in _ACCESS_COVER_PAIRS
]


def _entity_tuple(tagged: str) -> tuple:
    kind, _sep, name = tagged.partition(":")
    return (kind, name)


_ACCESS_COVER_FACTS = [
    "access_covers(any, readonly).",
    "access_covers(any, writeonly).",
    "access_covers(any, readwrite).",
    "access_covers(any, any).",
    "access_covers(any, none).",
    "access_covers(readwrite, readonly).",
    "access_covers(readwrite, writeonly).",
    "access_covers(readwrite, readwrite).",
    "access_covers(readwrite, none).",
    "access_covers(readonly, readonly).",
    "access_covers(readonly, none).",
    "access_covers(writeonly, writeonly).",
    "access_covers(writeonly, none).",
    "access_covers(none, none).",
]


def _atom(text) -> str:
    text = str(text)
    if text and text[0].islower() and all(
        ch.isalnum() or ch == "_" for ch in text
    ):
        return text
    return f"'{text}'"


def _entity(tagged: str) -> str:
    kind, _sep, name = tagged.partition(":")
    return f"{kind}({_atom(name)})"


def _period(frequency: FrequencySpec) -> str:
    value = frequency.min_period
    if value == int(value):
        return str(int(value))
    return str(value)


class FactGenerator:
    """Expands a Specification into a :class:`FactSet`.

    ``view_of``, when given, supplies :class:`MibView` objects for a
    paths-tuple (used by :class:`IncrementalFactGenerator` to intern
    views across declarations and specification versions).
    """

    def __init__(
        self,
        specification: Specification,
        tree: MibTree,
        view_of=None,
    ):
        self._spec = specification
        self._tree = tree
        self._view_of = view_of

    def generate(self) -> FactSet:
        facts = FactSet(self._spec, self._tree)
        self._make_instances(facts)
        self._make_containment(facts)
        self._make_views(facts)
        self._make_permissions(facts)
        self._make_references(facts)
        return facts

    # ------------------------------------------------------------------
    # Instantiation (instan/3).
    # ------------------------------------------------------------------
    def _make_instances(self, facts: FactSet) -> None:
        # Ordinals count per (owner, process) so instance ids are stable
        # when specifications are merged (the speculative what-if relies
        # on re-identifying pre-existing instances).
        counters: Dict[Tuple[str, str], int] = {}

        def make(owner: str, owner_kind: str, invocation: ProcessInvocation) -> None:
            if invocation.process_name not in self._spec.processes:
                return  # linker already reported this
            key = (owner, invocation.process_name)
            counters[key] = counters.get(key, 0) + 1
            facts.instances.append(
                InstanceId(
                    owner=owner,
                    owner_kind=owner_kind,
                    process_name=invocation.process_name,
                    ordinal=counters[key],
                    args=invocation.args,
                )
            )

        for system in self._spec.systems.values():
            for invocation in system.processes:
                make(system.name, "system", invocation)
        for domain in self._spec.domains.values():
            for invocation in domain.processes:
                make(domain.name, "domain", invocation)

    # ------------------------------------------------------------------
    # Containment (contains/2) with distribution over instantiation.
    # ------------------------------------------------------------------
    def _make_containment(self, facts: FactSet) -> None:
        for domain in self._spec.domains.values():
            for system_name in domain.systems:
                facts.containment.append(
                    (f"domain:{domain.name}", f"system:{system_name}")
                )
            for subdomain in domain.subdomains:
                facts.containment.append(
                    (f"domain:{domain.name}", f"domain:{subdomain}")
                )
        for instance in facts.instances:
            facts.containment.append(
                (f"{instance.owner_kind}:{instance.owner}", f"instance:{instance.id}")
            )

    # ------------------------------------------------------------------
    # Supported views.
    # ------------------------------------------------------------------
    def _make_views(self, facts: FactSet) -> None:
        for system in self._spec.systems.values():
            facts.system_supports[system.name] = self._view(system.supports)
        for instance in facts.instances:
            process = self._spec.processes[instance.process_name]
            facts.instance_supports[instance.id] = self._view(process.supports)

    def _view(self, paths: Sequence[str]) -> MibView:
        if self._view_of is not None:
            return self._view_of(tuple(paths))
        known = [path for path in paths if self._tree.knows(path)]
        return MibView(self._tree, known)

    # ------------------------------------------------------------------
    # Permissions (perm_eq/perm_gt).
    # ------------------------------------------------------------------
    def _make_permissions(self, facts: FactSet) -> None:
        containment = facts.transitive_containment()
        for instance in facts.instances:
            process = self._spec.processes[instance.process_name]
            grantor_domains = tuple(
                sorted(
                    name.split(":", 1)[1]
                    for name in containment.get(f"instance:{instance.id}", set())
                    if name.startswith("domain:")
                )
            )
            for export in process.exports:
                facts.permissions.append(
                    Permission(
                        grantor=f"instance:{instance.id}",
                        grantor_domains=grantor_domains,
                        grantee_domain=export.to_domain,
                        variables=export.variables,
                        access=export.access,
                        frequency=export.frequency,
                        origin=f"process {process.name} exports",
                        location=export.location,
                    )
                )
        for domain in self._spec.domains.values():
            for export in domain.exports:
                facts.permissions.append(
                    Permission(
                        grantor=f"domain:{domain.name}",
                        grantor_domains=(domain.name,),
                        grantee_domain=export.to_domain,
                        variables=export.variables,
                        access=export.access,
                        frequency=export.frequency,
                        origin=f"domain {domain.name} exports",
                        location=export.location,
                    )
                )

    # ------------------------------------------------------------------
    # References (ref_eq/ref_gt).
    # ------------------------------------------------------------------
    def _make_references(self, facts: FactSet) -> None:
        containment = facts.transitive_containment()
        for instance in facts.instances:
            process = self._spec.processes[instance.process_name]
            client_domains = tuple(
                sorted(
                    name.split(":", 1)[1]
                    for name in containment.get(f"instance:{instance.id}", set())
                    if name.startswith("domain:")
                )
            )
            for query in process.queries:
                server = self._resolve_target(process, instance, query.target)
                facts.references.append(
                    Reference(
                        client=f"instance:{instance.id}",
                        client_domains=client_domains,
                        server=server,
                        variables=query.requests,
                        access=query.access,
                        frequency=query.frequency,
                        origin=(
                            f"process {process.name} queries {query.target} "
                            f"({instance.id})"
                        ),
                        location=query.location,
                    )
                )

    def _resolve_target(
        self, process: ProcessSpec, instance: InstanceId, target: str
    ) -> str:
        names = process.param_names()
        if target in names:
            position = names.index(target)
            if position < len(instance.args):
                value = instance.args[position]
                if value == WILDCARD:
                    return "*"
                return self._classify_target(str(value))
            return "*"
        return self._classify_target(target)

    def _classify_target(self, value: str) -> str:
        if value in self._spec.systems:
            return f"system:{value}"
        if value in self._spec.processes:
            return f"process:{value}"
        if value in self._spec.domains:
            return f"domain:{value}"
        return f"external:{value}"


class _InternedFactGenerator(FactGenerator):
    """FactGenerator variant used by :class:`IncrementalFactGenerator`.

    Behaviourally identical to the base generator (same facts, same
    ordering) but avoids its per-instance re-work: views are interned via
    ``view_of``, the containment closure may be supplied memoized, and
    the sorted domain tuples embedded in references/permissions are
    computed once per owner instead of once per instance.
    """

    def __init__(self, specification, tree, view_of, closure_of=None):
        super().__init__(specification, tree, view_of=view_of)
        self._closure_of = closure_of
        self._owner_domains: Dict[str, Tuple[str, ...]] = {}

    def generate(self) -> FactSet:
        facts = FactSet(self._spec, self._tree)
        self._make_instances(facts)
        self._make_containment(facts)
        if self._closure_of is not None:
            facts._containment_cache = self._closure_of(
                tuple(facts.containment), facts
            )
        self._make_views(facts)
        self._make_permissions(facts)
        self._make_references(facts)
        return facts

    def _domains_of_owner(self, facts: FactSet, instance: InstanceId) -> Tuple[str, ...]:
        """The sorted administrative domains containing *instance*.

        Equals the base generator's per-instance computation: every
        instance shares its owner's transitive containers plus the owner
        itself, so the tuple is a function of the owner tag alone.
        """
        owner_tag = f"{instance.owner_kind}:{instance.owner}"
        got = self._owner_domains.get(owner_tag)
        if got is None:
            containers = set(
                facts.transitive_containment().get(owner_tag, ())
            )
            containers.add(owner_tag)
            got = tuple(
                sorted(
                    name.split(":", 1)[1]
                    for name in containers
                    if name.startswith("domain:")
                )
            )
            self._owner_domains[owner_tag] = got
        return got

    def _make_permissions(self, facts: FactSet) -> None:
        for instance in facts.instances:
            process = self._spec.processes[instance.process_name]
            if not process.exports:
                continue
            grantor_domains = self._domains_of_owner(facts, instance)
            for export in process.exports:
                facts.permissions.append(
                    Permission(
                        grantor=f"instance:{instance.id}",
                        grantor_domains=grantor_domains,
                        grantee_domain=export.to_domain,
                        variables=export.variables,
                        access=export.access,
                        frequency=export.frequency,
                        origin=f"process {process.name} exports",
                        location=export.location,
                    )
                )
        for domain in self._spec.domains.values():
            for export in domain.exports:
                facts.permissions.append(
                    Permission(
                        grantor=f"domain:{domain.name}",
                        grantor_domains=(domain.name,),
                        grantee_domain=export.to_domain,
                        variables=export.variables,
                        access=export.access,
                        frequency=export.frequency,
                        origin=f"domain {domain.name} exports",
                        location=export.location,
                    )
                )

    def _make_references(self, facts: FactSet) -> None:
        for instance in facts.instances:
            process = self._spec.processes[instance.process_name]
            if not process.queries:
                continue
            client_domains = self._domains_of_owner(facts, instance)
            for query in process.queries:
                server = self._resolve_target(process, instance, query.target)
                facts.references.append(
                    Reference(
                        client=f"instance:{instance.id}",
                        client_domains=client_domains,
                        server=server,
                        variables=query.requests,
                        access=query.access,
                        frequency=query.frequency,
                        origin=(
                            f"process {process.name} queries {query.target} "
                            f"({instance.id})"
                        ),
                        location=query.location,
                    )
                )


class IncrementalFactGenerator:
    """Memoizing fact generation across specification versions.

    The scalable engine's generation path, re-usable across evolution
    deltas:

    * :class:`MibView` objects are interned per paths-tuple, so a
      10,000-element internet whose elements share one ``supports`` list
      resolves it once, not once per element;
    * the transitive containment closure is memoized per containment
      edge-set, so a delta that touches no domain membership reuses it;
    * per-declaration fingerprints (:meth:`ProcessSpec.fingerprint_tuple`
      et al.) are compared across calls, and the expanded/reused split is
      recorded in :attr:`FactSet.expansion` — an incremental recheck
      after a single-declaration delta performs strictly less expansion
      than a cold generation, which ``tests/consistency`` asserts.
    """

    #: How many containment closures to retain (delta checking flips
    #: between at most a handful of versions at a time).
    CLOSURE_CACHE_SIZE = 4

    def __init__(self, tree: MibTree):
        self._tree = tree
        self._views: Dict[Tuple[str, ...], MibView] = {}
        self._closures: Dict[Tuple[Tuple[str, str], ...], Dict[str, Set[str]]] = {}
        self._seen: Dict[Tuple[str, str], Tuple] = {}

    @property
    def tree(self) -> MibTree:
        return self._tree

    def view(self, paths: Sequence[str]) -> MibView:
        """The interned view for a paths-tuple (tree-scoped, never stale)."""
        key = tuple(paths)
        got = self._views.get(key)
        if got is None:
            got = MibView(
                self._tree,
                [path for path in key if self._tree.knows(path)],
            )
            self._views[key] = got
        return got

    def generate(
        self,
        specification: Specification,
        fingerprint_tuple: Optional[Tuple] = None,
    ) -> FactSet:
        fingerprints: Dict[Tuple[str, str], Tuple] = {}
        if fingerprint_tuple is not None:
            # Reuse the caller's whole-spec fingerprint pass: entries for
            # processes/systems/domains each lead with (kind, name).
            for table in fingerprint_tuple[1:4]:
                for declaration in table:
                    fingerprints[(declaration[0], declaration[1])] = declaration
        else:
            for kind, table in (
                ("process", specification.processes),
                ("system", specification.systems),
                ("domain", specification.domains),
            ):
                for name, declaration in table.items():
                    fingerprints[(kind, name)] = declaration.fingerprint_tuple()
        expanded = sum(
            1
            for key, fingerprint in fingerprints.items()
            if self._seen.get(key) != fingerprint
        )
        facts = _InternedFactGenerator(
            specification, self._tree, self.view, self._closure
        ).generate()
        facts.expansion = {
            "expanded": expanded,
            "reused": len(fingerprints) - expanded,
            "declarations": len(fingerprints),
        }
        self._seen = fingerprints
        return facts

    def note_declaration(self, kind: str, name: str, fingerprint: Tuple) -> None:
        """Record that a declaration's current fingerprint has been seen.

        Used by the checker's exports-only patch path, which updates the
        cached fact set without a :meth:`generate` call: noting the
        patched declarations keeps the expanded/reused accounting of the
        *next* full generation honest.
        """
        self._seen[(kind, name)] = fingerprint

    def _closure(self, edges, facts: FactSet) -> Dict[str, Set[str]]:
        got = self._closures.get(edges)
        if got is None:
            got = facts.transitive_containment()
            self._closures[edges] = got
            while len(self._closures) > self.CLOSURE_CACHE_SIZE:
                self._closures.pop(next(iter(self._closures)))
        return got
