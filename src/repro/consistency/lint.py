"""Specification lint: hygiene findings beyond the consistency model.

The consistency checker answers "is every reference permitted?"; the
linter answers the administrator's complementary questions about drift
and over-provisioning:

* **unused-process** — a process specification no system or domain ever
  instantiates;
* **unmanaged-element** — a network element with no agent and no proxy:
  nothing can answer management queries for it;
* **unused-permission** — an export no instantiated reference could ever
  use (granted to a domain with no querying clients, or over data nobody
  requests): the least-privilege principle says tighten it;
* **overbroad-grant** — write access (or ``Any``) exported to the public
  domain.

Findings are advisory; they never make a specification inconsistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Set

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.facts import FactGenerator, FactSet
from repro.consistency.relations import permission_covers
from repro.mib.tree import Access, MibTree
from repro.mib.view import MibView
from repro.nmsl.specs import Specification, PUBLIC_DOMAIN


class LintKind(Enum):
    UNUSED_PROCESS = "unused-process"
    UNMANAGED_ELEMENT = "unmanaged-element"
    UNUSED_PERMISSION = "unused-permission"
    OVERBROAD_GRANT = "overbroad-grant"


@dataclass(frozen=True)
class LintFinding:
    kind: LintKind
    subject: str
    message: str

    def render(self) -> str:
        return f"[{self.kind.value}] {self.subject}: {self.message}"


@dataclass
class LintReport:
    findings: List[LintFinding] = field(default_factory=list)

    def by_kind(self, kind: LintKind) -> List[LintFinding]:
        return [finding for finding in self.findings if finding.kind == kind]

    def render(self) -> str:
        if not self.findings:
            return "no lint findings"
        return "\n".join(finding.render() for finding in self.findings)

    def __len__(self) -> int:
        return len(self.findings)


class SpecificationLinter:
    """Runs all lint passes over a compiled specification."""

    def __init__(self, specification: Specification, tree: MibTree):
        self._spec = specification
        self._tree = tree
        self._facts: FactSet = FactGenerator(specification, tree).generate()

    def lint(self) -> LintReport:
        report = LintReport()
        self._unused_processes(report)
        self._unmanaged_elements(report)
        self._unused_permissions(report)
        self._overbroad_grants(report)
        return report

    # ------------------------------------------------------------------
    def _unused_processes(self, report: LintReport) -> None:
        instantiated: Set[str] = {
            instance.process_name for instance in self._facts.instances
        }
        for name in self._spec.processes:
            if name not in instantiated:
                report.findings.append(
                    LintFinding(
                        LintKind.UNUSED_PROCESS,
                        name,
                        "specified but never instantiated on any system "
                        "or domain",
                    )
                )

    def _unmanaged_elements(self, report: LintReport) -> None:
        for system_name in self._spec.systems:
            agents = [
                instance
                for instance in self._facts.instances_on_system(system_name)
                if self._spec.processes[instance.process_name].is_agent()
            ]
            if agents:
                continue
            if self._facts.proxies_for_system(system_name):
                continue
            report.findings.append(
                LintFinding(
                    LintKind.UNMANAGED_ELEMENT,
                    system_name,
                    "no agent process and no proxy: management queries "
                    "cannot be answered for this element",
                )
            )

    def _unused_permissions(self, report: LintReport) -> None:
        for permission in self._facts.permissions:
            if self._permission_used(permission):
                continue
            report.findings.append(
                LintFinding(
                    LintKind.UNUSED_PERMISSION,
                    permission.grantor,
                    f"export of {', '.join(permission.variables)} to "
                    f"{permission.grantee_domain!r} matches no specified "
                    "reference (consider removing or tightening it)",
                )
            )

    def _permission_used(self, permission) -> bool:
        permission_view = self._view(permission.variables)
        for reference in self._facts.references:
            # Does the permission's grantor serve any candidate for this
            # reference?  Approximate grantor reach through the checker's
            # candidate logic: test coverage directly.
            verdict = permission_covers(
                reference,
                permission,
                self._view(reference.variables),
                permission_view,
                public_domain=PUBLIC_DOMAIN,
            )
            if verdict.covered:
                return True
        return False

    def _overbroad_grants(self, report: LintReport) -> None:
        for permission in self._facts.permissions:
            if permission.grantee_domain != PUBLIC_DOMAIN:
                continue
            if permission.access.allows_write():
                report.findings.append(
                    LintFinding(
                        LintKind.OVERBROAD_GRANT,
                        permission.grantor,
                        f"exports {permission.access.value} access to the "
                        "public domain: any administration may modify this "
                        "data",
                    )
                )

    def _view(self, paths) -> MibView:
        return MibView(
            self._tree, [path for path in paths if self._tree.knows(path)]
        )


def lint_specification(
    specification: Specification, tree: MibTree
) -> LintReport:
    """Convenience wrapper."""
    return SpecificationLinter(specification, tree).lint()
