"""Deprecated: the seed linter now lives in :mod:`repro.analysis`.

The four original passes — unused-process, unmanaged-element,
unused-permission, overbroad-grant — are analysis passes NM101, NM102,
NM201 and NM202.  This module survives for one release as a warning
wrapper: :func:`lint_specification` delegates to
:func:`repro.analysis.analyze_specification` (returning its
:class:`~repro.analysis.diagnostics.AnalysisReport`) and emits a
:class:`DeprecationWarning`.  The legacy ``LintKind``/``LintReport``
value types are gone; filter the report with
:meth:`~repro.analysis.diagnostics.AnalysisReport.by_code` instead.
"""

from __future__ import annotations

import warnings

from repro.mib.tree import MibTree
from repro.nmsl.specs import Specification

#: Legacy lint slug -> analysis diagnostic code, for callers migrating
#: off the enum-keyed API.
SLUG_TO_CODE = {
    "unused-process": "NM101",
    "unmanaged-element": "NM102",
    "unused-permission": "NM201",
    "overbroad-grant": "NM202",
}


def lint_specification(specification: Specification, tree: MibTree):
    """Deprecated alias for the four legacy analysis passes.

    Returns the :class:`~repro.analysis.diagnostics.AnalysisReport` of
    NM101/NM102/NM201/NM202 over *specification*.
    """
    warnings.warn(
        "repro.consistency.lint is deprecated; use "
        "repro.analysis.analyze_specification",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.analysis import analyze_specification

    return analyze_specification(
        specification, tree, codes=tuple(sorted(SLUG_TO_CODE.values()))
    )
