"""Specification lint: compatibility shim over :mod:`repro.analysis`.

The seed linter's four passes — **unused-process**, **unmanaged-element**,
**unused-permission**, **overbroad-grant** — now live in the static-
analysis framework as passes NM101, NM102, NM201 and NM202, where they
gained stable codes, severities, source spans and SARIF output.  This
module keeps the original ``lint_specification`` API (and the
``[kind] subject: message`` rendering) for existing callers; new code
should use :func:`repro.analysis.analyze_specification` directly.

Findings are advisory; they never make a specification inconsistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List

from repro.mib.tree import MibTree
from repro.nmsl.specs import Specification


class LintKind(Enum):
    UNUSED_PROCESS = "unused-process"
    UNMANAGED_ELEMENT = "unmanaged-element"
    UNUSED_PERMISSION = "unused-permission"
    OVERBROAD_GRANT = "overbroad-grant"


#: Legacy lint kind -> analysis diagnostic code.
KIND_TO_CODE = {
    LintKind.UNUSED_PROCESS: "NM101",
    LintKind.UNMANAGED_ELEMENT: "NM102",
    LintKind.UNUSED_PERMISSION: "NM201",
    LintKind.OVERBROAD_GRANT: "NM202",
}

_CODE_TO_KIND = {code: kind for kind, code in KIND_TO_CODE.items()}


@dataclass(frozen=True)
class LintFinding:
    kind: LintKind
    subject: str
    message: str

    def render(self) -> str:
        return f"[{self.kind.value}] {self.subject}: {self.message}"


@dataclass
class LintReport:
    findings: List[LintFinding] = field(default_factory=list)

    def by_kind(self, kind: LintKind) -> List[LintFinding]:
        return [finding for finding in self.findings if finding.kind == kind]

    def render(self) -> str:
        if not self.findings:
            return "no lint findings"
        return "\n".join(finding.render() for finding in self.findings)

    def __len__(self) -> int:
        return len(self.findings)


class SpecificationLinter:
    """Runs the four legacy lint passes over a compiled specification."""

    def __init__(self, specification: Specification, tree: MibTree):
        self._spec = specification
        self._tree = tree

    def lint(self) -> LintReport:
        from repro.analysis import analyze_specification

        report = analyze_specification(
            self._spec, self._tree, codes=tuple(_CODE_TO_KIND)
        )
        return LintReport(
            [
                LintFinding(
                    kind=_CODE_TO_KIND[diagnostic.code],
                    subject=diagnostic.subject,
                    message=diagnostic.message,
                )
                for diagnostic in report.diagnostics
            ]
        )


def lint_specification(
    specification: Specification, tree: MibTree
) -> LintReport:
    """Convenience wrapper."""
    return SpecificationLinter(specification, tree).lint()
