"""Semi-naive datalog over interned fact tuples, compiled to closures.

The rewrite of the consistency engine's datalog core for paper scale
(Section 3.1).  The previous bottom-up evaluator
(:mod:`repro.clpr.datalog`) interprets parsed CLP(R) terms: every
candidate fact pays a ``clause.fresh()`` renaming and a general
unification, which is where the superlinear tail of the consistency
benchmark went.  This engine trades that generality for speed on the
function-free fragment the checker actually uses:

* **facts are plain tuples** — ``("contains", ("domain", "noc"),
  ("system", "romano"))`` — deduplicated ("interned") in one set, so a
  fact derived a million times is stored once and every justification
  references the same object;
* **rules are compiled once** into specialized closures: for each
  (rule, pivot-literal) pair the compiler fixes the join order, assigns
  every variable a slot in a flat environment array, and precomputes per
  body literal which argument paths are constants, which check an
  already-bound slot, and which bind a new one — evaluation never looks
  at the rule again;
* **joins are indexed**: each literal probes a hash index over exactly
  the argument paths that are bound at its position in the join,
  built lazily per (predicate, path-set) and maintained incrementally
  as facts are derived;
* **iteration is semi-naive**: each round fires each compiled closure
  only with the facts derived in the previous round as the pivot, so
  work is proportional to change, not to the whole database.

:func:`naive_fixpoint` is the slow reference implementation — full
re-scan of every rule against every fact combination each round, written
with none of the machinery above — kept as the oracle the property
tests compare the compiled engine against (the same
optimized-vs-reference discipline the rest of the checker follows).

Guard goals (``>=``, ``>`` …) are evaluated on ground substitutions,
matching the guard subset of the CLP(R) rule text.  Negation is not
supported; the consistency path applies its closed-world step as a set
difference afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.errors import ClprError

#: A compiled pattern argument is a Var, a nested tuple (constructor
#: with its functor as element 0), or a scalar constant.
Pattern = object

_GUARD_OPS: Dict[str, Callable[[object, object], bool]] = {
    "<": lambda a, b: a < b,
    "=<": lambda a, b: a <= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class Var:
    """A rule variable (named for diagnostics, compared by name)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal:
    """One positive body (or head) literal: predicate plus patterns."""

    pred: str
    args: Tuple[Pattern, ...]

    def variables(self) -> Set[Var]:
        found: Set[Var] = set()
        _collect_vars(self.args, found)
        return found


@dataclass(frozen=True)
class Guard:
    """A comparison over ground operands: ``(op, left, right)``."""

    op: str
    left: Pattern  # Var or number
    right: Pattern

    def variables(self) -> Set[Var]:
        found: Set[Var] = set()
        _collect_vars((self.left, self.right), found)
        return found


@dataclass(frozen=True)
class Rule:
    """A safe, function-free Horn rule with optional guards."""

    head: Literal
    body: Tuple[Literal, ...]
    guards: Tuple[Guard, ...] = ()

    def __post_init__(self):
        if not self.body:
            raise ClprError(f"rule for {self.head.pred!r} has an empty body")
        bound: Set[Var] = set()
        for literal in self.body:
            bound |= literal.variables()
        loose = self.head.variables()
        for guard in self.guards:
            loose |= guard.variables()
        loose -= bound
        if loose:
            names = ", ".join(sorted(var.name for var in loose))
            raise ClprError(
                f"unsafe rule for {self.head.pred!r}: "
                f"variables {names} not bound by the body"
            )


def _collect_vars(pattern, found: Set[Var]) -> None:
    if isinstance(pattern, Var):
        found.add(pattern)
    elif isinstance(pattern, tuple):
        for element in pattern:
            _collect_vars(element, found)


# ----------------------------------------------------------------------
# The fact store: one interning set, per-predicate lists, lazy indexes.
# ----------------------------------------------------------------------
class TupleFactBase:
    """Derived tuples with provenance and path-indexed retrieval."""

    def __init__(self):
        self._facts: Set[tuple] = set()
        self._by_pred: Dict[str, List[tuple]] = {}
        #: (pred, path-spec) -> key tuple -> facts.  A path-spec is a
        #: tuple of element paths, each a tuple of indices into the
        #: (possibly nested) fact tuple.
        self._indexes: Dict[Tuple[str, tuple], Dict[tuple, List[tuple]]] = {}
        self._specs_by_pred: Dict[str, List[tuple]] = {}
        self._why: Dict[tuple, Tuple[str, Tuple[tuple, ...]]] = {}
        #: rule label -> {"firings": ..., "seconds": ...} (filled by
        #: :func:`seminaive_fixpoint`).
        self.rule_stats: Dict[str, Dict[str, float]] = {}

    def add(
        self,
        fact: tuple,
        why: Optional[Tuple[str, Tuple[tuple, ...]]] = None,
    ) -> bool:
        """Insert; True if new.  The stored set is the intern table."""
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_pred.setdefault(fact[0], []).append(fact)
        if why is not None:
            self._why[fact] = why
        for spec in self._specs_by_pred.get(fact[0], ()):
            key = _key_at(fact, spec)
            if key is not None:
                self._indexes[(fact[0], spec)].setdefault(key, []).append(
                    fact
                )
        return True

    def contains(self, fact: tuple) -> bool:
        return fact in self._facts

    def facts_for(self, pred: str) -> Tuple[tuple, ...]:
        return tuple(self._by_pred.get(pred, ()))

    def all_facts(self) -> Iterable[tuple]:
        return iter(self._facts)

    def matching(
        self, pred: str, spec: tuple, key: tuple
    ) -> Sequence[tuple]:
        """Facts of *pred* whose values at *spec*'s paths equal *key*."""
        index = self._indexes.get((pred, spec))
        if index is None:
            index = {}
            for fact in self._by_pred.get(pred, ()):
                fact_key = _key_at(fact, spec)
                if fact_key is not None:
                    index.setdefault(fact_key, []).append(fact)
            self._indexes[(pred, spec)] = index
            self._specs_by_pred.setdefault(pred, []).append(spec)
        return index.get(key, ())

    def why(self, fact: tuple) -> Optional[Tuple[str, Tuple[tuple, ...]]]:
        return self._why.get(fact)

    def explain(self, fact: tuple, depth: int = 10) -> List[str]:
        """A human-readable derivation trace, root first."""
        lines: List[str] = []

        def visit(current: tuple, indent: int, budget: int) -> None:
            prefix = "  " * indent
            why = self._why.get(current)
            if why is None:
                lines.append(f"{prefix}{current!r}  [given]")
                return
            label, premises = why
            lines.append(f"{prefix}{current!r}  [by rule {label}]")
            if budget <= 0:
                lines.append(f"{prefix}  ...")
                return
            for premise in premises:
                visit(premise, indent + 1, budget - 1)

        visit(fact, 0, depth)
        return lines

    def __len__(self) -> int:
        return len(self._facts)


def _key_at(fact: tuple, spec: tuple) -> Optional[tuple]:
    """Values of *fact* at the spec's paths; None if a path is absent."""
    values = []
    for path in spec:
        value = fact
        for index in path:
            if not isinstance(value, tuple) or index >= len(value):
                return None
            value = value[index]
        values.append(value)
    return tuple(values)


# ----------------------------------------------------------------------
# Rule compilation: one closure per (rule, pivot literal).
# ----------------------------------------------------------------------
class _Step:
    """A compiled body literal: probe, then check/bind against a fact."""

    __slots__ = (
        "pred",
        "arity",
        "const_checks",
        "slot_checks",
        "binds",
        "shape_checks",
        "key_spec",
        "key_parts",
    )

    def __init__(self, pred, arity):
        self.pred = pred
        self.arity = arity
        self.const_checks: List[Tuple[tuple, object]] = []
        self.slot_checks: List[Tuple[tuple, int]] = []
        self.binds: List[Tuple[tuple, int]] = []
        self.shape_checks: List[Tuple[tuple, int]] = []  # (path, length)
        self.key_spec: tuple = ()
        #: key part: (True, constant) or (False, slot)
        self.key_parts: Tuple[Tuple[bool, object], ...] = ()

    def finish(self) -> None:
        # Index over every path whose value is known before the probe:
        # constants and already-bound slots.  Constant functor tags are
        # included, which is what narrows ``contains(domain(D), ...)``
        # to the domain edges without a scan.
        spec: List[tuple] = []
        parts: List[Tuple[bool, object]] = []
        for path, value in self.const_checks:
            spec.append(path)
            parts.append((True, value))
        for path, slot in self.slot_checks:
            spec.append(path)
            parts.append((False, slot))
        self.key_spec = tuple(spec)
        self.key_parts = tuple(parts)

    def key(self, env: List[object]) -> tuple:
        return tuple(
            value if is_const else env[value]
            for is_const, value in self.key_parts
        )

    def match(self, fact: tuple, env: List[object]) -> bool:
        """Check *fact* against the literal, binding new slots in *env*.

        Partial bindings on failure are harmless: slots are only read
        by later steps after a full match succeeds, and re-matched
        candidates overwrite them.
        """
        if len(fact) != self.arity + 1:
            return False
        for path, length in self.shape_checks:
            value = _value_at(fact, path)
            if not isinstance(value, tuple) or len(value) != length:
                return False
        for path, constant in self.const_checks:
            if _value_at(fact, path) != constant:
                return False
        for path, slot in self.binds:
            env[slot] = _value_at(fact, path)
        for path, slot in self.slot_checks:
            if _value_at(fact, path) != env[slot]:
                return False
        return True

    def candidates(
        self, fb: TupleFactBase, env: List[object]
    ) -> Sequence[tuple]:
        if self.key_spec:
            return fb.matching(self.pred, self.key_spec, self.key(env))
        return fb.facts_for(self.pred)


def _value_at(fact: tuple, path: tuple):
    value = fact
    for index in path:
        value = value[index]
    return value


def _compile_args(
    args: Sequence[Pattern],
    base_path: tuple,
    slots: Dict[Var, int],
    bound: Set[Var],
    step: _Step,
    skip: int = 0,
) -> None:
    """Compile patterns at ``base_path + (skip + i,)`` into *step*.

    Top-level calls pass ``skip=1``: element 0 of a fact tuple is the
    predicate name.  Nested constructor tuples carry their functor as a
    checked element, so recursion uses ``skip=0``.
    """
    for offset, pattern in enumerate(args):
        path = base_path + (skip + offset,)
        if isinstance(pattern, Var):
            slot = slots.setdefault(pattern, len(slots))
            if pattern in bound:
                step.slot_checks.append((path, slot))
            else:
                # Repeated new vars inside one literal: first occurrence
                # binds, later ones check — binds run before checks.
                step.binds.append((path, slot))
                bound.add(pattern)
        elif isinstance(pattern, tuple):
            if _is_ground(pattern):
                step.const_checks.append((path, pattern))
            else:
                step.shape_checks.append((path, len(pattern)))
                _compile_args(pattern, path, slots, bound, step)
        else:
            step.const_checks.append((path, pattern))


def _is_ground(pattern) -> bool:
    if isinstance(pattern, Var):
        return False
    if isinstance(pattern, tuple):
        return all(_is_ground(element) for element in pattern)
    return True


def _head_builder(
    head: Literal, slots: Dict[Var, int]
) -> Callable[[List[object], Dict[tuple, tuple]], tuple]:
    """Compile the head into env -> interned fact tuple."""

    def compile_pattern(pattern):
        if isinstance(pattern, Var):
            slot = slots[pattern]
            return lambda env, intern: env[slot]
        if isinstance(pattern, tuple):
            if _is_ground(pattern):
                return lambda env, intern: pattern
            parts = [compile_pattern(element) for element in pattern]
            def build(env, intern, parts=parts):
                value = tuple(part(env, intern) for part in parts)
                return intern.setdefault(value, value)
            return build
        return lambda env, intern: pattern

    parts = [compile_pattern(arg) for arg in head.args]
    pred = head.pred

    def build_head(env: List[object], intern: Dict[tuple, tuple]) -> tuple:
        return (pred,) + tuple(part(env, intern) for part in parts)

    return build_head


def _guard_fn(guard: Guard, slots: Dict[Var, int]):
    op = _GUARD_OPS.get(guard.op)
    if op is None:
        raise ClprError(f"unsupported guard operator {guard.op!r}")

    def operand(value):
        if isinstance(value, Var):
            slot = slots[value]
            return lambda env: env[slot]
        return lambda env: value

    left, right = operand(guard.left), operand(guard.right)

    def check(env: List[object]) -> bool:
        try:
            return op(left(env), right(env))
        except TypeError:
            return False

    return check


def compile_rule(rule: Rule, label: str):
    """Compile to ``[(pivot_pred, fire)]``, one entry per body literal.

    ``fire(delta_facts, fb, out, intern)`` joins each delta fact (as the
    pivot) against the full fact base for the other literals, evaluates
    the guards on the ground environment, and adds each derived head to
    *fb* (appending new ones to *out*) with provenance ``(label,
    premises)``.
    """
    compiled = []
    for pivot_index in range(len(rule.body)):
        order = [rule.body[pivot_index]] + [
            literal
            for index, literal in enumerate(rule.body)
            if index != pivot_index
        ]
        slots: Dict[Var, int] = {}
        bound: Set[Var] = set()
        steps: List[_Step] = []
        for literal in order:
            step = _Step(literal.pred, len(literal.args))
            _compile_args(literal.args, (), slots, bound, step, skip=1)
            step.finish()
            steps.append(step)
        build_head = _head_builder(rule.head, slots)
        guards = [_guard_fn(guard, slots) for guard in rule.guards]
        n_slots = len(slots)
        tail = steps[1:]
        pivot = steps[0]

        def fire(
            delta_facts: Sequence[tuple],
            fb: TupleFactBase,
            out: List[tuple],
            intern: Dict[tuple, tuple],
            pivot=pivot,
            tail=tail,
            build_head=build_head,
            guards=guards,
            n_slots=n_slots,
            label=label,
        ) -> None:
            env: List[object] = [None] * n_slots
            depth_max = len(tail)

            def walk(depth: int, premises: List[tuple]) -> None:
                if depth == depth_max:
                    for guard in guards:
                        if not guard(env):
                            return
                    fact = build_head(env, intern)
                    fact = intern.setdefault(fact, fact)
                    if fb.add(fact, (label, tuple(premises))):
                        out.append(fact)
                    return
                step = tail[depth]
                # Snapshot: the bucket can grow while this join runs
                # (recursive rules derive into their own relation).
                for fact in tuple(step.candidates(fb, env)):
                    if step.match(fact, env):
                        premises.append(fact)
                        walk(depth + 1, premises)
                        premises.pop()

            for fact in delta_facts:
                if pivot.match(fact, env):
                    walk(0, [fact])

        compiled.append((rule.body[pivot_index].pred, fire))
    return compiled


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------
def seminaive_fixpoint(
    base_facts: Iterable[tuple],
    rules: Sequence[Rule],
    max_rounds: int = 10_000,
) -> TupleFactBase:
    """Least fixpoint of *rules* over *base_facts*, semi-naive.

    Every returned fact is an interned tuple; provenance (which rule,
    which premises) is recorded for derived facts and per-rule firing
    counts and times land in :attr:`TupleFactBase.rule_stats`.
    """
    fb = TupleFactBase()
    intern: Dict[tuple, tuple] = {}
    delta: List[tuple] = []
    for fact in base_facts:
        if not isinstance(fact, tuple) or not fact:
            raise ClprError(f"base fact {fact!r} is not a predicate tuple")
        if not _is_ground(fact):
            raise ClprError(f"base fact {fact!r} is not ground")
        fact = intern.setdefault(fact, fact)
        if fb.add(fact):
            delta.append(fact)

    labels = rule_labels(rules)
    compiled = [
        (label, compile_rule(rule, label))
        for rule, label in zip(rules, labels)
    ]
    clock = obs.current().clock
    rounds = 0
    while delta:
        rounds += 1
        if rounds > max_rounds:
            raise ClprError("semi-naive evaluation did not converge")
        delta_by_pred: Dict[str, List[tuple]] = {}
        for fact in delta:
            delta_by_pred.setdefault(fact[0], []).append(fact)
        new_delta: List[tuple] = []
        for label, fires in compiled:
            before = len(new_delta)
            started = clock.now()
            for pivot_pred, fire in fires:
                delta_facts = delta_by_pred.get(pivot_pred)
                if delta_facts:
                    fire(delta_facts, fb, new_delta, intern)
            stats = fb.rule_stats.setdefault(
                label, {"firings": 0, "seconds": 0.0}
            )
            stats["firings"] += len(new_delta) - before
            stats["seconds"] += clock.now() - started
        delta = new_delta
    return fb


def rule_labels(rules: Sequence[Rule]) -> List[str]:
    """Stable labels: head indicator plus per-indicator ordinal."""
    seen: Dict[Tuple[str, int], int] = {}
    labels: List[str] = []
    for rule in rules:
        indicator = (rule.head.pred, len(rule.head.args))
        ordinal = seen.get(indicator, 0)
        seen[indicator] = ordinal + 1
        labels.append(f"{indicator[0]}/{indicator[1]}#{ordinal}")
    return labels


# ----------------------------------------------------------------------
# The reference implementation (the oracle, not the fast path).
# ----------------------------------------------------------------------
def naive_fixpoint(
    base_facts: Iterable[tuple],
    rules: Sequence[Rule],
    max_rounds: int = 10_000,
) -> Set[tuple]:
    """The same fixpoint, by exhaustive re-scan every round.

    No compilation, no indexes, no deltas: each round tries every rule
    against every combination of known facts until nothing new appears.
    Kept deliberately simple so the property suite can hold
    :func:`seminaive_fixpoint` to it.
    """
    known: Set[tuple] = set()
    for fact in base_facts:
        if not _is_ground(fact):
            raise ClprError(f"base fact {fact!r} is not ground")
        known.add(fact)
    for _round in range(max_rounds):
        fresh: Set[tuple] = set()
        for rule in rules:
            for env in _all_solutions(rule.body, 0, {}, known):
                if all(_guard_holds(guard, env) for guard in rule.guards):
                    fact = _substitute(rule.head, env)
                    if fact not in known:
                        fresh.add(fact)
        if not fresh:
            return known
        known |= fresh
    raise ClprError("naive evaluation did not converge")


def _all_solutions(
    body: Sequence[Literal],
    position: int,
    env: Dict[Var, object],
    known: Set[tuple],
):
    if position == len(body):
        yield env
        return
    literal = body[position]
    for fact in known:
        if fact[0] != literal.pred or len(fact) != len(literal.args) + 1:
            continue
        attempt = dict(env)
        if _match_args(literal.args, fact[1:], attempt):
            yield from _all_solutions(body, position + 1, attempt, known)


def _match_args(patterns, values, env: Dict[Var, object]) -> bool:
    if len(patterns) != len(values):
        return False
    for pattern, value in zip(patterns, values):
        if not _match_one(pattern, value, env):
            return False
    return True


def _match_one(pattern, value, env: Dict[Var, object]) -> bool:
    if isinstance(pattern, Var):
        if pattern in env:
            return env[pattern] == value
        env[pattern] = value
        return True
    if isinstance(pattern, tuple):
        if not isinstance(value, tuple) or len(pattern) != len(value):
            return False
        return all(_match_one(p, v, env) for p, v in zip(pattern, value))
    return pattern == value


def _guard_holds(guard: Guard, env: Dict[Var, object]) -> bool:
    op = _GUARD_OPS.get(guard.op)
    if op is None:
        raise ClprError(f"unsupported guard operator {guard.op!r}")
    left = env[guard.left] if isinstance(guard.left, Var) else guard.left
    right = env[guard.right] if isinstance(guard.right, Var) else guard.right
    try:
        return op(left, right)
    except TypeError:
        return False


def _substitute(literal: Literal, env: Dict[Var, object]) -> tuple:
    def value_of(pattern):
        if isinstance(pattern, Var):
            return env[pattern]
        if isinstance(pattern, tuple):
            return tuple(value_of(element) for element in pattern)
        return pattern

    return (literal.pred,) + tuple(value_of(arg) for arg in literal.args)
