"""The consistency relations of paper Figure 4.9 as Python values.

The checker reasons about *references* (a client may query some data with
some access mode and frequency) and *permissions* (a grantor allows a
grantee domain to access some data with some mode and frequency).  Both
carry the MIB view they touch and the frequency interval; the reduction
rules decide whether a permission *covers* a reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import SourceLocation
from repro.mib.tree import Access
from repro.mib.view import MibView
from repro.nmsl.frequency import FrequencySpec

#: Partial order of access modes for the reduction rules: a granted mode
#: covers a requested mode iff Access.permits holds; this table only lists
#: the atoms used when rendering CLP(R) text.
ACCESS_ORDER = ("none", "readonly", "writeonly", "readwrite", "any")


def access_atom(access: Access) -> str:
    """The CLP(R) atom for an access mode."""
    return access.value.lower()


def access_from_atom(atom: str) -> Access:
    return Access.parse(atom)


@dataclass(frozen=True)
class Reference:
    """``ref_eq``: *client* may reference *server*'s data.

    ``client`` / ``server`` are instance or domain identifiers (strings,
    see :class:`~repro.consistency.facts.InstanceId`).  ``variables`` are
    the requested MIB paths; ``view`` their resolved coverage.
    """

    client: str
    client_domains: Tuple[str, ...]
    server: str
    variables: Tuple[str, ...]
    access: Access
    frequency: FrequencySpec
    origin: str = ""  # human-readable source ("process snmpaddr queries ...")
    #: where the ``queries`` clause was written; excluded from equality so
    #: value-identical references stay interchangeable across re-parses.
    location: SourceLocation = field(
        default_factory=SourceLocation, compare=False
    )

    def describe(self) -> str:
        variables = ", ".join(self.variables)
        return (
            f"{self.client} references {variables} at {self.server} "
            f"for {self.access.value} ({self.frequency.describe()})"
        )


@dataclass(frozen=True)
class Permission:
    """``perm_eq``: *grantor* permits *grantee_domain* to access data."""

    grantor: str
    grantor_domains: Tuple[str, ...]
    grantee_domain: str
    variables: Tuple[str, ...]
    access: Access
    frequency: FrequencySpec
    origin: str = ""
    #: where the ``exports`` clause was written; excluded from equality so
    #: value-identical permissions stay interchangeable across re-parses.
    location: SourceLocation = field(
        default_factory=SourceLocation, compare=False
    )

    def describe(self) -> str:
        variables = ", ".join(self.variables)
        return (
            f"{self.grantor} permits {self.grantee_domain} to access "
            f"{variables} for {self.access.value} ({self.frequency.describe()})"
        )


@dataclass(frozen=True)
class CoverageResult:
    """Why a permission does or does not cover a reference."""

    covered: bool
    reason: str = ""


def permission_covers(
    reference: Reference,
    permission: Permission,
    reference_view: MibView,
    permission_view: MibView,
    public_domain: str = "public",
) -> CoverageResult:
    """The reduction rule: does *permission* cover *reference*?

    Four conditions, checked in order so the report can name the first
    failing one:

    1. the permission's grantee domain contains the referencing client
       (or is the public domain);
    2. the permission's grantor is the referenced server or a domain
       containing it — callers pre-filter on this, so here we only check
       data;
    3. the requested variables lie inside the permitted view;
    4. the access mode and frequency interval are covered.
    """
    if permission.grantee_domain != public_domain and (
        permission.grantee_domain not in reference.client_domains
    ):
        return CoverageResult(
            False,
            f"grantee domain {permission.grantee_domain!r} does not contain "
            f"client {reference.client!r}",
        )
    if not permission_view.covers_view(reference_view):
        return CoverageResult(
            False,
            "requested variables are outside the permitted view "
            f"(permitted: {sorted(permission_view.paths())})",
        )
    if not permission.access.permits(reference.access):
        return CoverageResult(
            False,
            f"access {reference.access.value} exceeds permitted "
            f"{permission.access.value}",
        )
    if not reference.frequency.covered_by(permission.frequency):
        return CoverageResult(
            False,
            f"reference {reference.frequency.describe()} violates permitted "
            f"{permission.frequency.describe()}",
        )
    return CoverageResult(True, "covered")
