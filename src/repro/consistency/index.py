"""Indexed reference→permission coverage lookup.

The paper's reduction step asks, for every reference, whether some
permission covers it.  The scan engine answers by walking the candidate
permission list per reference — O(refs × perms) in the worst case.  The
:class:`PermissionIndex` here drops that to near-O(refs):

* per server instance, the applicable permissions (its own exports plus
  every containing domain's) are collected once and their views resolved
  once;
* within a server's permission set, permissions are bucketed by the OID
  components of their view roots, so "which permissions could cover this
  requested subtree" is answered by walking the subtree's OID prefixes —
  O(depth) dictionary probes instead of a scan;
* the surviving candidates (usually zero or one) are then filtered by
  grantee domain, access mode and frequency interval, exactly the
  conditions of :func:`repro.consistency.relations.permission_covers`.

The index answers the *positive* question only ("is the reference
covered, and by which permission").  Cause reporting for uncovered
references stays with the checker's detailed scan, so inconsistency
reports are byte-identical between engines.

Index entries are built lazily per server: a check that never references
a server never pays for indexing its permissions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.consistency.facts import FactSet, InstanceId
from repro.consistency.relations import Permission, Reference
from repro.mib.view import MibView

#: Resolves a paths-tuple to a (preferably interned) MibView.
ViewResolver = Callable[[Sequence[str]], MibView]

#: One indexed permission: the permission plus its resolved view.
IndexedPermission = Tuple[Permission, MibView]

#: Per-server index: the entry list plus OID-prefix buckets mapping a
#: permission-view root (as an OID component tuple) to entry positions.
_ServerIndex = Tuple[
    Tuple[IndexedPermission, ...],
    Dict[Tuple[int, ...], List[int]],
]


class PermissionIndex:
    """Permissions keyed by (server, grantee domain, OID prefix, access).

    Built against one :class:`FactSet`; the consistency checker discards
    it whenever the specification fingerprint changes, so it can cache
    aggressively.
    """

    def __init__(
        self,
        facts: FactSet,
        view_of: ViewResolver,
        public_domain: str = "public",
    ):
        self._facts = facts
        self._view_of = view_of
        self._public = public_domain
        self._servers: Dict[str, _ServerIndex] = {}
        #: id(view) -> its root OIDs as component tuples (views are
        #: interned by the checker, so id-keying is safe; the pin list
        #: keeps them alive for the index's lifetime).
        self._root_components: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
        self._pins: List[MibView] = []
        #: Plain-int lookup tallies (a hit is a covering permission found)
        #: kept cheap here and published to repro.obs by the checker.
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Build (lazy, per server).
    # ------------------------------------------------------------------
    def permissions_for(self, server: InstanceId) -> List[Permission]:
        """Every permission applicable to *server*, in index order."""
        entries, _buckets = self._server_index(server)
        return [permission for permission, _view in entries]

    def _server_index(self, server: InstanceId) -> _ServerIndex:
        got = self._servers.get(server.id)
        if got is None:
            by_grantor = self._facts.permissions_by_grantor()
            containment = self._facts.transitive_containment()
            permissions: List[Permission] = list(
                by_grantor.get(f"instance:{server.id}", ())
            )
            for container in containment.get(f"instance:{server.id}", ()):
                if container.startswith("domain:"):
                    permissions.extend(by_grantor.get(container, ()))
            entries = tuple(
                (permission, self._view_of(permission.variables))
                for permission in permissions
            )
            buckets: Dict[Tuple[int, ...], List[int]] = {}
            for position, (_permission, view) in enumerate(entries):
                # Views are interned, so the root-OID memo answers for
                # every server sharing a permission view — at paper
                # scale the same export view backs thousands of servers.
                for components in self._roots_of(view):
                    buckets.setdefault(components, []).append(position)
            got = (entries, buckets)
            self._servers[server.id] = got
        return got

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def covering_permission(
        self,
        server: InstanceId,
        reference: Reference,
        reference_view: MibView,
    ) -> Optional[Permission]:
        """A permission at *server* covering *reference*, if any exists.

        Agrees with :func:`permission_covers` over the server's candidate
        list: returns a permission iff the scan would find one.
        """
        found = self._lookup(server, reference, reference_view)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def _lookup(
        self,
        server: InstanceId,
        reference: Reference,
        reference_view: MibView,
    ) -> Optional[Permission]:
        entries, buckets = self._server_index(server)
        if not entries:
            return None
        roots = self._roots_of(reference_view)
        if len(roots) == 1:
            components = roots[0]
            positions: List[int] = []
            for depth in range(len(components) + 1):
                hits = buckets.get(components[:depth])
                if hits:
                    positions.extend(hits)
            if not positions:
                return None
            ordered = (
                sorted(set(positions)) if len(positions) > 1 else positions
            )
        elif roots:
            candidates: Optional[set] = None
            for components in roots:
                found: set = set()
                for depth in range(len(components) + 1):
                    hits = buckets.get(components[:depth])
                    if hits:
                        found.update(hits)
                candidates = (
                    found if candidates is None else candidates & found
                )
                if not candidates:
                    return None
            ordered = sorted(candidates)
        else:
            # An empty view (nothing resolvable) is covered by any
            # permission that passes the scalar conditions, matching
            # covers_view's all-of-nothing semantics.
            ordered = range(len(entries))
        client_domains = reference.client_domains
        for position in ordered:
            permission, _view = entries[position]
            if (
                permission.grantee_domain != self._public
                and permission.grantee_domain not in client_domains
            ):
                continue
            if not permission.access.permits(reference.access):
                continue
            if not reference.frequency.covered_by(permission.frequency):
                continue
            return permission
        return None

    def _roots_of(
        self, view: MibView
    ) -> Tuple[Tuple[int, ...], ...]:
        key = id(view)
        got = self._root_components.get(key)
        if got is None:
            got = tuple(oid.components for oid in view.root_oids())
            self._root_components[key] = got
            self._pins.append(view)
        return got

    def stats(self) -> Dict[str, int]:
        return {
            "indexed_servers": len(self._servers),
            "indexed_permissions": sum(
                len(entries) for entries, _buckets in self._servers.values()
            ),
            "lookup_hits": self.hits,
            "lookup_misses": self.misses,
        }
