"""A strict parser/linter for Prometheus text exposition format 0.0.4.

Used by the exposition-conformance tests and the CI smoke job to verify
that what ``MetricsRegistry.to_prometheus`` emits is what a real scraper
would accept: metric and label names match the grammar, label values
round-trip through the escaping rules (``\\`` ``\"`` ``\n``), histogram
bucket counts are monotone with a ``+Inf`` bucket equal to ``_count``,
and ``_sum``/``_count`` are present and consistent.

:func:`parse` returns the samples; :func:`lint` returns a list of
problem strings (empty means clean) so callers can assert
``lint(text) == []`` and get every violation in the failure message.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class PromParseError(ValueError):
    """The exposition text violates the 0.0.4 grammar."""


@dataclass
class Sample:
    name: str
    labels: Dict[str, str]
    value: float
    line: int


@dataclass
class MetricFamily:
    name: str
    type: str = "untyped"
    help: str = ""
    samples: List[Sample] = field(default_factory=list)


def _unescape_label_value(raw: str, line_no: int) -> str:
    """Undo exposition escaping; reject stray backslashes."""
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\":
            if i + 1 >= len(raw):
                raise PromParseError(
                    f"line {line_no}: dangling backslash in label value"
                )
            nxt = raw[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise PromParseError(
                    f"line {line_no}: invalid escape \\{nxt} in label value"
                )
            i += 2
        elif ch == "\n":
            raise PromParseError(
                f"line {line_no}: raw newline inside label value"
            )
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(raw: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(raw):
        match = re.match(r"[a-zA-Z_][a-zA-Z0-9_]*", raw[i:])
        if match is None:
            raise PromParseError(
                f"line {line_no}: expected label name at {raw[i:]!r}"
            )
        name = match.group(0)
        i += len(name)
        if not raw[i : i + 2] == '="':
            raise PromParseError(
                f"line {line_no}: expected '=\"' after label {name!r}"
            )
        i += 2
        # Scan to the closing unescaped quote.
        j = i
        while j < len(raw):
            if raw[j] == "\\":
                j += 2
                continue
            if raw[j] == '"':
                break
            j += 1
        if j >= len(raw):
            raise PromParseError(
                f"line {line_no}: unterminated label value for {name!r}"
            )
        if name in labels:
            raise PromParseError(
                f"line {line_no}: duplicate label name {name!r}"
            )
        labels[name] = _unescape_label_value(raw[i:j], line_no)
        i = j + 1
        if i < len(raw):
            if raw[i] == ",":
                i += 1
            else:
                raise PromParseError(
                    f"line {line_no}: expected ',' or '}}' after label value"
                )
    return labels


def _parse_value(raw: str, line_no: int) -> float:
    raw = raw.strip()
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise PromParseError(f"line {line_no}: bad sample value {raw!r}")


def parse(text: str) -> Dict[str, MetricFamily]:
    """Parse exposition text into families; raises on grammar errors."""
    families: Dict[str, MetricFamily] = {}

    def family(name: str) -> MetricFamily:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                declared = families[name[: -len(suffix)]]
                if declared.type == "histogram":
                    base = name[: -len(suffix)]
                break
        if base not in families:
            families[base] = MetricFamily(name=base)
        return families[base]

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            name = parts[0]
            if not _METRIC_NAME_RE.match(name):
                raise PromParseError(
                    f"line {line_no}: bad metric name {name!r} in HELP"
                )
            fam = families.setdefault(name, MetricFamily(name=name))
            fam.help = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2:
                raise PromParseError(f"line {line_no}: malformed TYPE line")
            name, mtype = parts
            if mtype not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise PromParseError(
                    f"line {line_no}: unknown metric type {mtype!r}"
                )
            fam = families.setdefault(name, MetricFamily(name=name))
            fam.type = mtype
            continue
        if line.startswith("#"):
            continue  # plain comment
        # Sample line: name[{labels}] value [timestamp]
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
        if match is None:
            raise PromParseError(
                f"line {line_no}: expected metric name at {line!r}"
            )
        name = match.group(1)
        rest = line[len(name) :]
        labels: Dict[str, str] = {}
        if rest.startswith("{"):
            # Find the closing brace, honouring escapes inside values.
            depth_quote = False
            j = 1
            while j < len(rest):
                ch = rest[j]
                if depth_quote:
                    if ch == "\\":
                        j += 1
                    elif ch == '"':
                        depth_quote = False
                elif ch == '"':
                    depth_quote = True
                elif ch == "}":
                    break
                j += 1
            if j >= len(rest):
                raise PromParseError(
                    f"line {line_no}: unterminated label set"
                )
            labels = _parse_labels(rest[1:j], line_no)
            rest = rest[j + 1 :]
        fields = rest.split()
        if not fields or len(fields) > 2:
            raise PromParseError(
                f"line {line_no}: expected value (and optional timestamp)"
            )
        value = _parse_value(fields[0], line_no)
        fam = family(name)
        fam.samples.append(
            Sample(name=name, labels=labels, value=value, line=line_no)
        )
    return families


def _histogram_series(
    fam: MetricFamily,
) -> Dict[Tuple[Tuple[str, str], ...], Dict[str, object]]:
    """Group a histogram family's samples by non-``le`` label set."""
    series: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}
    for sample in fam.samples:
        labels = dict(sample.labels)
        le = labels.pop("le", None)
        key = tuple(sorted(labels.items()))
        entry = series.setdefault(
            key, {"buckets": [], "sum": None, "count": None}
        )
        if sample.name.endswith("_bucket"):
            if le is None:
                raise PromParseError(
                    f"line {sample.line}: _bucket sample without le label"
                )
            bound = math.inf if le == "+Inf" else float(le)
            entry["buckets"].append((bound, sample.value, sample.line))
        elif sample.name.endswith("_sum"):
            entry["sum"] = sample.value
        elif sample.name.endswith("_count"):
            entry["count"] = sample.value
    return series


def lint(text: str) -> List[str]:
    """Every conformance problem in *text*; ``[]`` means clean."""
    problems: List[str] = []
    try:
        families = parse(text)
    except PromParseError as exc:
        return [str(exc)]
    for name, fam in sorted(families.items()):
        if not _METRIC_NAME_RE.match(name):
            problems.append(f"{name}: invalid metric name")
        for sample in fam.samples:
            for label in sample.labels:
                if not _LABEL_NAME_RE.match(label):
                    problems.append(
                        f"{name}: invalid label name {label!r} "
                        f"(line {sample.line})"
                    )
        if fam.type == "histogram":
            for key, entry in _histogram_series(fam).items():
                where = "{" + ",".join(f"{k}={v!r}" for k, v in key) + "}"
                buckets = sorted(entry["buckets"])
                if not buckets or buckets[-1][0] != math.inf:
                    problems.append(
                        f"{name}{where}: histogram missing +Inf bucket"
                    )
                    continue
                counts = [count for _, count, _ in buckets]
                if any(b > a for b, a in zip(counts, counts[1:])):
                    problems.append(
                        f"{name}{where}: bucket counts not monotone"
                    )
                if entry["count"] is None:
                    problems.append(f"{name}{where}: missing _count")
                elif counts and counts[-1] != entry["count"]:
                    problems.append(
                        f"{name}{where}: +Inf bucket {counts[-1]} != "
                        f"_count {entry['count']}"
                    )
                if entry["sum"] is None:
                    problems.append(f"{name}{where}: missing _sum")
    return problems
