"""Sliding-window SLOs with multi-window burn-rate alerts.

Each admission class gets an :class:`SloObjective` — a latency target
and an availability target over it: a request is *good* iff it succeeded
AND finished within the class's latency target (the classic latency-SLO
formulation; a slow success burns budget just like a failure).

The :class:`SloTracker` keeps per-class sliding windows of (timestamp,
good) events and reports, per window, availability and the *burn rate*::

    burn = bad_fraction / (1 - availability_target)

so burn 1.0 consumes the error budget exactly at the rate the objective
allows, and burn 14.4 over a 5-minute AND a 1-hour window — the Google
SRE multi-window multi-burn-rate recipe — exhausts a 30-day budget in
two days and pages.  A slower 6× burn over 1h+6h windows files a ticket.
Two windows must agree before an alert fires, which is what keeps a
single bad minute from paging and a recovered incident from staying
paged.

Everything is pure state fed by the caller's clock, so the tracker is
byte-deterministic under the logical clock and needs no threads of its
own.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

#: (window seconds, label) pairs, shortest first.
DEFAULT_WINDOWS: Tuple[int, ...] = (300, 3600, 21600)

#: Burn-rate thresholds (Google SRE workbook, 30-day budget): page when
#: the budget would be gone in ~2 days, ticket when in ~5 days.
PAGE_BURN = 14.4
TICKET_BURN = 6.0

#: Events retained per class; at 10k requests/minute the longest default
#: window needs 2.16M — cap well above that but bounded.
MAX_EVENTS_PER_CLASS = 4_000_000


@dataclass(frozen=True)
class SloObjective:
    """A latency target and the availability objective over it."""

    latency_s: float
    availability: float

    @property
    def budget(self) -> float:
        """Allowed bad fraction (1 - availability)."""
        return max(1.0 - self.availability, 1e-9)


#: Per-admission-class defaults: interactive requests are sub-second
#: three-nines, normal work five seconds, campaigns a minute.
DEFAULT_OBJECTIVES: Dict[str, SloObjective] = {
    "interactive": SloObjective(latency_s=0.5, availability=0.999),
    "normal": SloObjective(latency_s=5.0, availability=0.995),
    "bulk": SloObjective(latency_s=60.0, availability=0.99),
}


class SloTracker:
    """Sliding-window good/bad accounting per admission class."""

    def __init__(
        self,
        objectives: Optional[Dict[str, SloObjective]] = None,
        windows: Tuple[int, ...] = DEFAULT_WINDOWS,
        page_burn: float = PAGE_BURN,
        ticket_burn: float = TICKET_BURN,
    ):
        self.objectives = dict(objectives or DEFAULT_OBJECTIVES)
        self.windows = tuple(sorted(windows))
        self.page_burn = page_burn
        self.ticket_burn = ticket_burn
        # Per class: deque of (at_s, good, latency_s), oldest first.
        self._events: Dict[str, Deque[Tuple[float, bool, float]]] = {}
        self._lock = threading.Lock()

    def record(
        self, cls: str, latency_s: float, ok: bool, now: float
    ) -> bool:
        """Account one finished (or refused) request; returns *good*.

        A refusal (shed, queue-full, deadline) is ``ok=False`` — it
        burns budget; availability is what the client experienced.
        """
        objective = self.objectives.get(cls)
        good = bool(ok) and (
            objective is None or latency_s <= objective.latency_s
        )
        horizon = now - self.windows[-1]
        with self._lock:
            events = self._events.get(cls)
            if events is None:
                events = self._events[cls] = deque()
            events.append((now, good, latency_s))
            while events and events[0][0] < horizon:
                events.popleft()
            while len(events) > MAX_EVENTS_PER_CLASS:
                events.popleft()
        return good

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def _window_stats(
        self,
        events: List[Tuple[float, bool, float]],
        objective: Optional[SloObjective],
        window_s: int,
        now: float,
    ) -> dict:
        start = now - window_s
        # Events are time-ordered; binary-search the window start.
        lo = bisect_left(events, start, key=lambda e: e[0])
        total = len(events) - lo
        good = sum(1 for event in events[lo:] if event[1])
        bad = total - good
        availability = (good / total) if total else 1.0
        burn = 0.0
        if objective is not None and total:
            burn = (bad / total) / objective.budget
        latencies = sorted(event[2] for event in events[lo:])
        stats = {
            "window_s": window_s,
            "total": total,
            "good": good,
            "bad": bad,
            "availability": round(availability, 6),
            "burn_rate": round(burn, 4),
        }
        if latencies:
            stats["p50_s"] = round(
                latencies[len(latencies) // 2], 6
            )
            stats["p99_s"] = round(
                latencies[min(len(latencies) - 1, (len(latencies) * 99) // 100)],
                6,
            )
        return stats

    def snapshot(self, now: float) -> dict:
        """Full per-class, per-window SLO state plus active alerts."""
        with self._lock:
            per_class = {
                cls: list(events) for cls, events in self._events.items()
            }
        classes: Dict[str, dict] = {}
        alerts: List[dict] = []
        names = sorted(set(self.objectives) | set(per_class))
        for cls in names:
            objective = self.objectives.get(cls)
            events = per_class.get(cls, [])
            windows = [
                self._window_stats(events, objective, window_s, now)
                for window_s in self.windows
            ]
            entry: dict = {"windows": windows}
            if objective is not None:
                entry["objective"] = {
                    "latency_s": objective.latency_s,
                    "availability": objective.availability,
                }
            burn_by_window = {w["window_s"]: w["burn_rate"] for w in windows}
            severity = self._alert_severity(burn_by_window)
            entry["alert"] = severity
            classes[cls] = entry
            if severity is not None:
                alerts.append(
                    {
                        "class": cls,
                        "severity": severity,
                        "burn_rates": burn_by_window,
                    }
                )
        return {"at_s": round(now, 9), "classes": classes, "alerts": alerts}

    def _alert_severity(
        self, burn_by_window: Dict[int, float]
    ) -> Optional[str]:
        """Multi-window agreement: short AND long window both burning."""
        if len(self.windows) < 2:
            window = self.windows[0] if self.windows else None
            burn = burn_by_window.get(window, 0.0)
            if burn >= self.page_burn:
                return "page"
            if burn >= self.ticket_burn:
                return "ticket"
            return None
        short, mid = self.windows[0], self.windows[1]
        long = self.windows[-1]
        if (
            burn_by_window.get(short, 0.0) >= self.page_burn
            and burn_by_window.get(mid, 0.0) >= self.page_burn
        ):
            return "page"
        if (
            burn_by_window.get(mid, 0.0) >= self.ticket_burn
            and burn_by_window.get(long, 0.0) >= self.ticket_burn
        ):
            return "ticket"
        return None

    def healthz_summary(self, now: float) -> dict:
        """The compact form ``/healthz`` embeds: worst alert + burn."""
        snapshot = self.snapshot(now)
        severity = None
        worst_burn = 0.0
        for alert in snapshot["alerts"]:
            if alert["severity"] == "page":
                severity = "page"
            elif severity is None:
                severity = alert["severity"]
        for entry in snapshot["classes"].values():
            for window in entry["windows"]:
                worst_burn = max(worst_burn, window["burn_rate"])
        return {
            "alerting": severity,
            "worst_burn_rate": round(worst_burn, 4),
            "classes": len(snapshot["classes"]),
        }

    def publish(self, obs, now: float) -> None:
        """Mirror the snapshot into gauges for ``/metrics`` scrapes."""
        if not getattr(obs, "enabled", False):
            return
        snapshot = self.snapshot(now)
        for cls, entry in snapshot["classes"].items():
            for window in entry["windows"]:
                labels = {"cls": cls, "window": str(window["window_s"])}
                obs.gauge(
                    "repro_service_slo_availability",
                    "Sliding-window availability per admission class.",
                    **labels,
                ).set(window["availability"])
                obs.gauge(
                    "repro_service_slo_burn_rate",
                    "Error-budget burn rate per admission class and window.",
                    **labels,
                ).set(window["burn_rate"])
