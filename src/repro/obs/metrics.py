"""Counters, gauges and fixed-bucket histograms with Prometheus exposition.

The naming convention across the codebase is
``repro_<subsystem>_<name>`` with ``_total`` for counters (see
``docs/OBSERVABILITY.md``); the registry validates names against the
Prometheus grammar but leaves the convention to callers.

Instruments are memoized by ``(name, sorted labels)`` so hot paths can
re-fetch them cheaply, and serialisation is deterministic: families and
samples are emitted in sorted order, integers render without a decimal
point, and :meth:`MetricsRegistry.snapshot` round-trips through
``json.dumps(..., sort_keys=True)`` byte-identically for identical runs.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds) — tuned for compiler/checker phases.
DEFAULT_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ReproError(f"counters only go up (inc by {amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed cumulative buckets plus sum and count."""

    __slots__ = ("buckets", "bucket_counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        ordered = tuple(sorted(float(b) for b in buckets))
        if not ordered:
            raise ReproError("histogram needs at least one bucket bound")
        self.buckets = ordered
        self.bucket_counts = [0] * len(ordered)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[position] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with +Inf."""
        pairs = list(zip(self.buckets, self.bucket_counts))
        pairs.append((math.inf, self.count))
        return pairs


class _Family:
    """All instruments sharing one metric name."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: Dict[LabelSet, object] = {}


class MetricsRegistry:
    """The process-wide (or scope-wide) instrument store."""

    def __init__(self):
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument accessors (create on first use, memoized after).
    # ------------------------------------------------------------------
    def counter(self, name: str, _help: str = "", **labels: str) -> Counter:
        return self._child(name, "counter", _help, labels, Counter)

    def gauge(self, name: str, _help: str = "", **labels: str) -> Gauge:
        return self._child(name, "gauge", _help, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        _help: str = "",
        **labels: str,
    ) -> Histogram:
        return self._child(
            name, "histogram", _help, labels, lambda: Histogram(buckets)
        )

    def _child(self, name, kind, help_text, labels, factory):
        key: LabelSet = tuple(
            sorted((label, str(value)) for label, value in labels.items())
        )
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    if not _NAME_RE.match(name):
                        raise ReproError(f"invalid metric name {name!r}")
                    for label, _value in key:
                        if not _LABEL_RE.match(label):
                            raise ReproError(f"invalid label name {label!r}")
                    family = _Family(name, kind, help_text)
                    self._families[name] = family
        if family.kind != kind:
            raise ReproError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        child = family.children.get(key)
        if child is None:
            with self._lock:
                child = family.children.get(key)
                if child is None:
                    child = factory()
                    family.children[key] = child
        return child

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: str) -> Optional[float]:
        """The current value of a counter/gauge, or None if absent."""
        family = self._families.get(name)
        if family is None:
            return None
        key: LabelSet = tuple(
            sorted((label, str(value)) for label, value in labels.items())
        )
        child = family.children.get(key)
        if child is None or isinstance(child, Histogram):
            return None
        return child.value

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._families))

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A pure-data, deterministic dump of every instrument."""
        out: Dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = {}
            for key in sorted(family.children):
                child = family.children[key]
                label_text = ",".join(f"{k}={v}" for k, v in key) or ""
                if isinstance(child, Histogram):
                    samples[label_text] = {
                        "count": child.count,
                        "sum": round(child.total, 9),
                        "buckets": {
                            _format_value(bound): count
                            for bound, count in child.cumulative()
                        },
                    }
                else:
                    value = child.value
                    samples[label_text] = (
                        round(value, 9) if isinstance(value, float) else value
                    )
            out[name] = {"type": family.kind, "samples": samples}
        return out

    def snapshot_json(self) -> str:
        return json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        )

    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                label_text = _render_labels(key)
                if isinstance(child, Histogram):
                    for bound, count in child.cumulative():
                        bucket_labels = _render_labels(
                            key + (("le", _format_value(bound)),)
                        )
                        lines.append(f"{name}_bucket{bucket_labels} {count}")
                    lines.append(
                        f"{name}_sum{label_text} {_format_value(child.total)}"
                    )
                    lines.append(f"{name}_count{label_text} {child.count}")
                else:
                    lines.append(
                        f"{name}{label_text} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_prometheus(), encoding="utf-8")


def _render_labels(key: LabelSet) -> str:
    if not key:
        return ""
    parts = []
    for label, value in sorted(key):
        escaped = (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{label}="{escaped}"')
    return "{" + ",".join(parts) + "}"
