"""The observability facade and its process-wide plumbing.

Instrumented code never imports the tracer or registry directly; it asks
for the *current* observability::

    from repro import obs

    o = obs.current()
    with o.span("consistency.check", engine=engine):
        if o.enabled:
            o.counter("repro_consistency_checks_total").inc()

When nothing is configured, :func:`current` returns a shared
:class:`NullObservability` whose instruments are no-ops and whose spans
still measure wall time (so ``span.elapsed`` stays correct for report
fields like ``stats["seconds"]``) but record nothing.  Hot loops guard
on ``o.enabled`` so the disabled path costs one attribute read.

The CLI installs a real :class:`Observability` for the duration of a
command; tests use :func:`scope` to install one without leaking state.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager, nullcontext
from typing import Iterator, List, Optional

from repro.obs.clock import LogicalClock, WallClock
from repro.obs.context import TraceContext
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import DEFAULT_TRACE_SEED, Span, Tracer


class Observability:
    """A live clock + tracer + metrics registry behind one handle."""

    enabled = True

    def __init__(
        self,
        clock=None,
        process_name: str = "nmslc",
        trace_seed: int = DEFAULT_TRACE_SEED,
    ):
        self.clock = clock if clock is not None else WallClock()
        self.tracer = Tracer(
            clock=self.clock, process_name=process_name, trace_seed=trace_seed
        )
        self.metrics = MetricsRegistry()
        self._published_dropped = 0
        self._stats_lock = None  # built lazily; most processes never publish

    # -- tracing -------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        return self.tracer.span(name, **attrs)

    def adopt(self, context: Optional[TraceContext]):
        """Join *context*'s trace for this thread (see ``Tracer.adopt``)."""
        return self.tracer.adopt(context)

    def current_context(self) -> Optional[TraceContext]:
        return self.tracer.current_context()

    def splice_spans(self, exported: List[dict]) -> int:
        """Fold a forked worker's span subtree back in (``Tracer.splice``)."""
        return self.tracer.splice(exported)

    def publish_tracer_stats(self) -> None:
        """Mirror tracer counters into the metrics registry.

        Exports the span-cap drop count as
        ``repro_obs_spans_dropped_total`` (delta-published so repeated
        scrapes don't double-count) and the live span count as
        ``repro_obs_spans_recorded`` — a tracer that silently hits its
        1M-span cap now shows up on ``/metrics``.
        """
        import threading

        if self._stats_lock is None:
            self._stats_lock = threading.Lock()
        with self._stats_lock:
            dropped = self.tracer.dropped
            delta = dropped - self._published_dropped
            if delta > 0:
                self.counter(
                    "repro_obs_spans_dropped_total",
                    "Spans discarded after the tracer hit its span cap.",
                ).inc(delta)
                self._published_dropped = dropped
        self.gauge(
            "repro_obs_spans_recorded",
            "Spans currently retained by the tracer.",
        ).set(len(self.tracer))

    # -- metrics -------------------------------------------------------
    def counter(self, name: str, _help: str = "", **labels: str) -> Counter:
        return self.metrics.counter(name, _help, **labels)

    def gauge(self, name: str, _help: str = "", **labels: str) -> Gauge:
        return self.metrics.gauge(name, _help, **labels)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, _help: str = "", **labels: str) -> Histogram:
        return self.metrics.histogram(name, buckets, _help, **labels)

    # -- time ----------------------------------------------------------
    def set_time(self, at_s: float) -> None:
        """Feed simulated time forward (no-op for wall clocks)."""
        set_at_least = getattr(self.clock, "set_at_least", None)
        if set_at_least is not None:
            set_at_least(at_s)

    @property
    def deterministic(self) -> bool:
        return bool(getattr(self.clock, "deterministic", False))


class _NullSpan:
    """Records nothing but still measures elapsed wall time.

    ``checker.py`` reads ``span.elapsed`` for its ``seconds`` stats even
    when observability is off, so the null span keeps a perf_counter
    start; everything else is a no-op.
    """

    __slots__ = ("_start", "_end")

    def __init__(self):
        self._start = time.perf_counter()
        self._end: Optional[float] = None

    def __enter__(self) -> "_NullSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._end = time.perf_counter()
        return False

    def annotate(self, **attrs: object) -> "_NullSpan":
        return self

    @property
    def elapsed(self) -> float:
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullObservability:
    """The disabled substrate: near-zero overhead, valid ``elapsed``."""

    enabled = False
    deterministic = False
    clock = WallClock()
    tracer = None
    metrics = None

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NullSpan()

    def adopt(self, context=None):
        return nullcontext()

    def current_context(self) -> None:
        return None

    def splice_spans(self, exported) -> int:
        return 0

    def publish_tracer_stats(self) -> None:
        pass

    def counter(self, name: str, _help: str = "", **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, _help: str = "", **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, _help: str = "", **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def set_time(self, at_s: float) -> None:
        pass


_NULL = NullObservability()
_current: object = _NULL


def current():
    """The active observability (a :class:`NullObservability` if none)."""
    return _current


def set_current(obs) -> object:
    """Install *obs* (or None to disable); returns the previous one."""
    global _current
    previous = _current
    _current = obs if obs is not None else _NULL
    return previous


@contextmanager
def scope(obs: Optional[Observability] = None, clock=None) -> Iterator[Observability]:
    """Install an observability for a ``with`` block, then restore.

    ``scope()`` builds a fresh wall-clock :class:`Observability`;
    ``scope(clock=LogicalClock())`` builds a deterministic one; or pass
    a prepared instance.
    """
    if obs is None:
        obs = Observability(clock=clock)
    previous = set_current(obs)
    try:
        yield obs
    finally:
        set_current(previous)


def logical_observability(start: float = 0.0) -> Observability:
    """An :class:`Observability` on a fresh :class:`LogicalClock`."""
    return Observability(clock=LogicalClock(start=start))


def configure_logging(verbose: int = 0, stream=None) -> None:
    """Wire stdlib logging for the ``repro`` namespace.

    ``verbose=0`` → WARNING, ``1`` → INFO, ``2+`` → DEBUG.  Handlers are
    installed once on the ``repro`` logger (not the root), so embedding
    applications keep control of their own logging.
    """
    level = logging.WARNING
    if verbose == 1:
        level = logging.INFO
    elif verbose >= 2:
        level = logging.DEBUG
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
    else:
        for handler in logger.handlers:
            if stream is not None and isinstance(handler, logging.StreamHandler):
                handler.stream = stream
    logger.propagate = False
