"""Request-scoped structured audit log for the management plane.

Every decision the service makes about a request — admitted, shed,
queue-full, deadline-expired, vetoed, applied — lands here as one JSONL
event stamped with the request's trace context, so ``grep <trace_id>``
over the audit log reconstructs exactly what a request did and why.
This is the audit trail Diekmann's *Provably Secure Networks* motivates:
every config-affecting action tied to its verified origin.

Events are plain dicts serialized deterministically (sorted keys,
compact separators); the in-memory tail is bounded so an unbounded
service run cannot exhaust memory through its own audit trail.  When a
path is configured each event is flushed line-by-line (the same
crash-durability posture as the rollout journal).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, List, Optional

#: In-memory events retained for ``tail()``/``to_jsonl()``; the file, when
#: configured, keeps everything.
MAX_EVENTS = 100_000


class AuditLog:
    """Append-only, trace-stamped event log (JSONL on disk, ring in RAM)."""

    def __init__(self, path: Optional[str] = None):
        self.path = Path(path) if path else None
        self._events: List[dict] = []
        self._total = 0
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")

    def event(
        self,
        event: str,
        *,
        trace: Optional[object] = None,
        request_id: Optional[str] = None,
        op: Optional[str] = None,
        cls: Optional[str] = None,
        at_s: Optional[float] = None,
        **fields: object,
    ) -> dict:
        """Record one event; returns the dict that was logged.

        ``trace`` is a :class:`~repro.obs.context.TraceContext` (or
        anything with ``trace_id``/``span_id``); ``at_s`` is the
        caller's clock reading, rounded so logical-clock runs stay
        byte-identical.
        """
        record: dict = {"event": event}
        if trace is not None:
            record["trace_id"] = getattr(trace, "trace_id", "")
            record["span_id"] = getattr(trace, "span_id", "")
        if request_id is not None:
            record["request_id"] = request_id
        if op is not None:
            record["op"] = op
        if cls is not None:
            record["class"] = cls
        if at_s is not None:
            record["at_s"] = round(at_s, 9)
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        # Serialize only when a file sink exists; in-memory tails keep the
        # dict and to_jsonl() serializes on demand.
        line = (
            json.dumps(
                record, sort_keys=True, separators=(",", ":"), default=str
            )
            if self._fh is not None
            else None
        )
        with self._lock:
            self._total += 1
            if len(self._events) < MAX_EVENTS:
                self._events.append(record)
            if line is not None and self._fh is not None:
                self._fh.write(line + "\n")
                self._fh.flush()
        return record

    @property
    def total(self) -> int:
        """Events logged over the log's lifetime (not just retained)."""
        with self._lock:
            return self._total

    def tail(self, count: Optional[int] = None) -> List[dict]:
        with self._lock:
            events = list(self._events)
        return events if count is None else events[-count:]

    def to_jsonl(self) -> str:
        lines = [
            json.dumps(e, sort_keys=True, separators=(",", ":"), default=str)
            for e in self.tail()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
