"""Deterministic trace/span identity for end-to-end request tracing.

Every request that enters the management plane gets a :class:`TraceContext`
— a W3C-``traceparent``-style (trace id, span id) pair — that is carried
in every NDJSON protocol frame, adopted by the worker thread that
executes the request, spliced across the fork boundary of the sharded
consistency checker, and stamped onto campaign journal records and audit
events.  One trace id then names everything a request actually did.

Identity is *seeded counters, not randomness*: an :class:`IdAllocator`
derives ids from a fixed seed plus a monotone counter, so two same-seed
logical-clock runs mint byte-identical ids — the property the service
chaos suite's byte-identical transcripts extend to traces.  The ids are
wire-compatible with W3C Trace Context (32 lowercase hex chars for the
trace id, 16 for the span id, never all-zero), so exported traces load
into standard tooling.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass

#: ``traceparent`` header layout: version "00", 16-byte trace id,
#: 8-byte parent/span id, 1-byte flags — all lowercase hex.
_TRACEPARENT_RE = re.compile(
    r"^00-(?P<trace>[0-9a-f]{32})-(?P<span>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)

_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16


@dataclass(frozen=True)
class TraceContext:
    """One (trace id, span id) pair — the unit of context propagation.

    ``span_id`` names the *parent* span from the receiver's point of
    view: a span opened under an adopted context records it as its
    ``parent_id`` and inherits the ``trace_id``.
    """

    trace_id: str
    span_id: str

    def traceparent(self) -> str:
        """The W3C ``traceparent`` wire form (version 00, sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, text: str) -> "TraceContext":
        """Parse a ``traceparent`` string; raises ValueError if invalid."""
        if not isinstance(text, str):
            raise ValueError("traceparent must be a string")
        match = _TRACEPARENT_RE.match(text.strip())
        if match is None:
            raise ValueError(
                f"malformed traceparent {text!r} "
                "(want 00-<32 hex>-<16 hex>-<2 hex>)"
            )
        trace_id = match.group("trace")
        span_id = match.group("span")
        if trace_id == _ZERO_TRACE or span_id == _ZERO_SPAN:
            raise ValueError("traceparent ids must not be all-zero")
        return cls(trace_id=trace_id, span_id=span_id)

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}


class IdAllocator:
    """Seeded, counter-based trace/span id mint — no randomness.

    Trace ids embed the seed in their leading 8 hex chars so traces from
    differently-seeded components never collide; span ids are a plain
    64-bit counter, unique per allocator for the life of the process
    (the splice path relies on this to de-duplicate ids minted in forked
    workers).  Counters start at 1: the all-zero id is reserved by the
    W3C grammar.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed & 0xFFFFFFFF
        self._traces = 0
        self._spans = 0
        self._lock = threading.Lock()

    def trace_id(self) -> str:
        with self._lock:
            self._traces += 1
            count = self._traces
        return f"{self._seed:08x}{count:024x}"

    def span_id(self) -> str:
        with self._lock:
            self._spans += 1
            count = self._spans
        return f"{count:016x}"

    def context(self) -> TraceContext:
        """A fresh root context (new trace, new span)."""
        return TraceContext(trace_id=self.trace_id(), span_id=self.span_id())
