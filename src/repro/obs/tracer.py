"""Nested spans with deterministic JSONL and Chrome ``trace_event`` export.

A :class:`Tracer` produces :class:`Span` context managers::

    with tracer.span("consistency.check", engine="indexed") as span:
        ...
    elapsed = span.elapsed

Spans nest per thread (a per-thread stack tracks depth and parentage) and
are recorded when they close.  Every span carries a deterministic trace
context (:mod:`repro.obs.context`): a root span mints a new trace id
from the tracer's seeded :class:`~repro.obs.context.IdAllocator`, a
nested span inherits its parent's, and a worker thread can *adopt* a
request's :class:`~repro.obs.context.TraceContext` so its spans join
the request's trace instead of starting orphan ones::

    with tracer.adopt(request_context):
        with tracer.span("service.request", op="check"):
            ...

Subtrees recorded in a forked worker process are exported with
:meth:`export_spans` and re-attached in the parent with :meth:`splice`,
which re-mints span ids from the parent's allocator (fork copies the
allocator, so every worker would otherwise mint the same ids) while
preserving parent links into spans still open in the parent — the same
fold-back pattern the sharded checker already uses for worker metrics.

Export formats:

* :meth:`Tracer.to_jsonl` — one JSON object per line, keys sorted,
  compact separators: the queryable event log chaos tests assert
  byte-identity on;
* :meth:`Tracer.to_chrome` — the Chrome ``trace_event`` array format
  (``ph: "X"`` complete events with ``pid``/``tid``/``ts``/``dur`` in
  microseconds), loadable in Perfetto / ``chrome://tracing``.

Timestamps come from the tracer's pluggable clock
(:mod:`repro.obs.clock`): wall time for real runs, logical time for
deterministic ones.  Thread ids are assigned in first-seen order so a
single-threaded deterministic run always labels everything ``tid 0``.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.clock import WallClock
from repro.obs.context import IdAllocator, TraceContext

#: Hard cap on retained spans; beyond it spans are counted, not stored,
#: so a runaway loop cannot exhaust memory through its own telemetry.
MAX_SPANS = 1_000_000

#: Default id-allocator seed (the paper's publication year); override
#: per tracer when several processes must mint disjoint trace ids.
DEFAULT_TRACE_SEED = 0x1989


@dataclass
class SpanRecord:
    """One finished span, ready for export."""

    name: str
    start_s: float
    end_s: float
    tid: int
    depth: int
    attrs: Tuple[Tuple[str, object], ...] = ()
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        """A JSON-safe dump (the fork-boundary export format)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "tid": self.tid,
            "depth": self.depth,
            "attrs": [[key, value] for key, value in self.attrs],
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


class Span:
    """A live span; use as a context manager, annotate freely."""

    __slots__ = (
        "_tracer", "name", "attrs", "start_s", "end_s", "depth",
        "trace_id", "span_id", "parent_id",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start_s: Optional[float] = None
        self.end_s: Optional[float] = None
        self.depth = 0
        self.trace_id = ""
        self.span_id = ""
        self.parent_id = ""

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self)
        return False

    def annotate(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def context(self) -> TraceContext:
        """This span as a propagatable context (children parent onto it)."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def elapsed(self) -> float:
        """Seconds since the span opened (final duration once closed)."""
        if self.start_s is None:
            return 0.0
        if self.end_s is not None:
            return self.end_s - self.start_s
        return self._tracer.clock.now() - self.start_s


class Tracer:
    """Collects spans from any number of threads."""

    def __init__(
        self,
        clock=None,
        process_name: str = "nmslc",
        trace_seed: int = DEFAULT_TRACE_SEED,
    ):
        self.clock = clock if clock is not None else WallClock()
        self.process_name = process_name
        self.ids = IdAllocator(seed=trace_seed)
        self._records: List[SpanRecord] = []
        self._dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[object, int] = {}
        self._splices = 0

    # ------------------------------------------------------------------
    # Span lifecycle (driven by Span.__enter__/__exit__).
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        return Span(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.depth = len(stack)
        if stack:
            top = stack[-1]
            span.trace_id = top.trace_id
            span.parent_id = top.span_id
        else:
            adopted = getattr(self._local, "context", None)
            if adopted is not None:
                span.trace_id = adopted.trace_id
                span.parent_id = adopted.span_id
            else:
                span.trace_id = self.ids.trace_id()
                span.parent_id = ""
        span.span_id = self.ids.span_id()
        stack.append(span)
        span.start_s = self.clock.now()

    def _close(self, span: Span) -> None:
        span.end_s = self.clock.now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mis-nested exit: drop it and everything above
            del stack[stack.index(span) :]
        record = SpanRecord(
            name=span.name,
            start_s=span.start_s or 0.0,
            end_s=span.end_s,
            tid=self._tid(),
            depth=span.depth,
            attrs=tuple(sorted(span.attrs.items())),
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
        )
        with self._lock:
            if len(self._records) < MAX_SPANS:
                self._records.append(record)
            else:
                self._dropped += 1

    # ------------------------------------------------------------------
    # Context propagation.
    # ------------------------------------------------------------------
    @contextmanager
    def adopt(self, context: Optional[TraceContext]) -> Iterator[None]:
        """Join *context*'s trace for the current thread's root spans.

        While active, a span opened with an empty stack parents onto
        ``context.span_id`` and inherits ``context.trace_id`` instead of
        minting a fresh trace.  Nests and restores on exit; adopting
        ``None`` is a no-op (so callers never need to branch).
        """
        if context is None:
            yield
            return
        previous = getattr(self._local, "context", None)
        self._local.context = context
        try:
            yield
        finally:
            self._local.context = previous

    def current_context(self) -> Optional[TraceContext]:
        """The innermost open span's context (or the adopted one)."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].context()
        return getattr(self._local, "context", None)

    # ------------------------------------------------------------------
    # Fork-boundary export and re-parenting.
    # ------------------------------------------------------------------
    def export_spans(self, since: int = 0) -> List[dict]:
        """JSON-safe dumps of the records at positions ``since:``.

        A forked worker notes ``len(tracer)`` at entry, does its work,
        then exports everything recorded after the mark — exactly the
        spans it closed itself (the fork inherited the parent's records
        below the mark).
        """
        with self._lock:
            records = self._records[since:]
        return [record.to_dict() for record in records]

    def splice(self, exported: List[dict]) -> int:
        """Re-attach a worker subtree exported with :meth:`export_spans`.

        Span ids minted in the worker are re-minted from this tracer's
        allocator (the fork copied the allocator state, so every worker
        mints the same ids); parent links *within* the subtree follow
        the re-mint, while links to ids not in the subtree — spans that
        were open in the parent at fork time and close here — are kept,
        so the subtree stays connected to the request's trace.  Worker
        thread ids land on fresh tids (one per distinct worker tid per
        splice) so subtrees from concurrent shards render side by side.
        Returns the number of records added.
        """
        if not exported:
            return 0
        id_map = {
            record["span_id"]: self.ids.span_id() for record in exported
        }
        added = 0
        with self._lock:
            self._splices += 1
            generation = self._splices
            tid_map: Dict[int, int] = {}
            for record in exported:
                worker_tid = record["tid"]
                tid = tid_map.get(worker_tid)
                if tid is None:
                    key = ("splice", generation, worker_tid)
                    tid = self._tids.setdefault(key, len(self._tids))
                    tid_map[worker_tid] = tid
                parent = record["parent_id"]
                spliced = SpanRecord(
                    name=record["name"],
                    start_s=record["start_s"],
                    end_s=record["end_s"],
                    tid=tid,
                    depth=record["depth"],
                    attrs=tuple(
                        (key, value) for key, value in record["attrs"]
                    ),
                    trace_id=record["trace_id"],
                    span_id=id_map[record["span_id"]],
                    parent_id=id_map.get(parent, parent),
                )
                if len(self._records) < MAX_SPANS:
                    self._records.append(spliced)
                    added += 1
                else:
                    self._dropped += 1
        return added

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def finished(self) -> Tuple[SpanRecord, ...]:
        """All recorded spans, parents before children, time-ordered."""
        with self._lock:
            records = list(self._records)
        return tuple(
            sorted(
                records,
                key=lambda r: (r.start_s, -r.end_s, r.tid, r.depth, r.name),
            )
        )

    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One compact JSON object per span, deterministic byte-for-byte."""
        lines = []
        for record in self.finished():
            lines.append(
                json.dumps(
                    {
                        "name": record.name,
                        "ts": round(record.start_s, 9),
                        "dur": round(record.duration_s, 9),
                        "tid": record.tid,
                        "depth": record.depth,
                        "trace": record.trace_id,
                        "span": record.span_id,
                        "parent": record.parent_id,
                        "args": dict(record.attrs),
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                    default=str,
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome(self) -> str:
        """Chrome ``trace_event`` JSON (Perfetto-loadable)."""
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "ts": 0,
                "args": {"name": self.process_name},
            }
        ]
        for record in self.finished():
            events.append(
                {
                    "name": record.name,
                    "cat": record.name.split(".", 1)[0],
                    "ph": "X",
                    "pid": 1,
                    "tid": record.tid,
                    "ts": round(record.start_s * 1e6, 3),
                    "dur": round(record.duration_s * 1e6, 3),
                    "args": dict(record.attrs),
                }
            )
        return json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )

    def write(self, path, fmt: Optional[str] = None) -> str:
        """Write the trace to *path*; format from *fmt* or the suffix.

        ``.jsonl`` means the JSONL event log; anything else gets the
        Chrome ``trace_event`` JSON.  Returns the format used.
        """
        from pathlib import Path

        path = Path(path)
        if fmt is None:
            fmt = "jsonl" if path.suffix == ".jsonl" else "chrome"
        text = self.to_jsonl() if fmt == "jsonl" else self.to_chrome()
        path.write_text(text, encoding="utf-8")
        return fmt
