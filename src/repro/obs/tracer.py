"""Nested spans with deterministic JSONL and Chrome ``trace_event`` export.

A :class:`Tracer` produces :class:`Span` context managers::

    with tracer.span("consistency.check", engine="indexed") as span:
        ...
    elapsed = span.elapsed

Spans nest per thread (a per-thread stack tracks depth and parentage) and
are recorded when they close.  Export formats:

* :meth:`Tracer.to_jsonl` — one JSON object per line, keys sorted,
  compact separators: the queryable event log chaos tests assert
  byte-identity on;
* :meth:`Tracer.to_chrome` — the Chrome ``trace_event`` array format
  (``ph: "X"`` complete events with ``pid``/``tid``/``ts``/``dur`` in
  microseconds), loadable in Perfetto / ``chrome://tracing``.

Timestamps come from the tracer's pluggable clock
(:mod:`repro.obs.clock`): wall time for real runs, logical time for
deterministic ones.  Thread ids are assigned in first-seen order so a
single-threaded deterministic run always labels everything ``tid 0``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.clock import WallClock

#: Hard cap on retained spans; beyond it spans are counted, not stored,
#: so a runaway loop cannot exhaust memory through its own telemetry.
MAX_SPANS = 1_000_000


@dataclass
class SpanRecord:
    """One finished span, ready for export."""

    name: str
    start_s: float
    end_s: float
    tid: int
    depth: int
    attrs: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class Span:
    """A live span; use as a context manager, annotate freely."""

    __slots__ = ("_tracer", "name", "attrs", "start_s", "end_s", "depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start_s: Optional[float] = None
        self.end_s: Optional[float] = None
        self.depth = 0

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self)
        return False

    def annotate(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    @property
    def elapsed(self) -> float:
        """Seconds since the span opened (final duration once closed)."""
        if self.start_s is None:
            return 0.0
        if self.end_s is not None:
            return self.end_s - self.start_s
        return self._tracer.clock.now() - self.start_s


class Tracer:
    """Collects spans from any number of threads."""

    def __init__(self, clock=None, process_name: str = "nmslc"):
        self.clock = clock if clock is not None else WallClock()
        self.process_name = process_name
        self._records: List[SpanRecord] = []
        self._dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Span lifecycle (driven by Span.__enter__/__exit__).
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        return Span(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.depth = len(stack)
        stack.append(span)
        span.start_s = self.clock.now()

    def _close(self, span: Span) -> None:
        span.end_s = self.clock.now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mis-nested exit: drop it and everything above
            del stack[stack.index(span) :]
        record = SpanRecord(
            name=span.name,
            start_s=span.start_s or 0.0,
            end_s=span.end_s,
            tid=self._tid(),
            depth=span.depth,
            attrs=tuple(sorted(span.attrs.items())),
        )
        with self._lock:
            if len(self._records) < MAX_SPANS:
                self._records.append(record)
            else:
                self._dropped += 1

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def finished(self) -> Tuple[SpanRecord, ...]:
        """All recorded spans, parents before children, time-ordered."""
        with self._lock:
            records = list(self._records)
        return tuple(
            sorted(
                records,
                key=lambda r: (r.start_s, -r.end_s, r.tid, r.depth, r.name),
            )
        )

    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One compact JSON object per span, deterministic byte-for-byte."""
        lines = []
        for record in self.finished():
            lines.append(
                json.dumps(
                    {
                        "name": record.name,
                        "ts": round(record.start_s, 9),
                        "dur": round(record.duration_s, 9),
                        "tid": record.tid,
                        "depth": record.depth,
                        "args": dict(record.attrs),
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                    default=str,
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome(self) -> str:
        """Chrome ``trace_event`` JSON (Perfetto-loadable)."""
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "ts": 0,
                "args": {"name": self.process_name},
            }
        ]
        for record in self.finished():
            events.append(
                {
                    "name": record.name,
                    "cat": record.name.split(".", 1)[0],
                    "ph": "X",
                    "pid": 1,
                    "tid": record.tid,
                    "ts": round(record.start_s * 1e6, 3),
                    "dur": round(record.duration_s * 1e6, 3),
                    "args": dict(record.attrs),
                }
            )
        return json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )

    def write(self, path, fmt: Optional[str] = None) -> str:
        """Write the trace to *path*; format from *fmt* or the suffix.

        ``.jsonl`` means the JSONL event log; anything else gets the
        Chrome ``trace_event`` JSON.  Returns the format used.
        """
        from pathlib import Path

        path = Path(path)
        if fmt is None:
            fmt = "jsonl" if path.suffix == ".jsonl" else "chrome"
        text = self.to_jsonl() if fmt == "jsonl" else self.to_chrome()
        path.write_text(text, encoding="utf-8")
        return fmt
