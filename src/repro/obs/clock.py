"""Pluggable clocks for the observability substrate.

Two implementations of one tiny contract (``now() -> float`` seconds):

* :class:`WallClock` — ``time.perf_counter``; what real ``nmslc`` runs
  use, so profile output and trace durations reflect actual CPU/wall
  time;
* :class:`LogicalClock` — a deterministic clock for tests and chaos
  runs.  It holds a logical time (advanced explicitly by whoever owns
  simulated time, e.g. the rollout coordinator's event loop) and adds a
  strictly increasing sub-microsecond sequence offset per read, so span
  timestamps are unique and monotone yet a re-run with the same seed
  reads byte-identical values.  Two same-seed chaos campaigns therefore
  serialise byte-identical traces — the property
  ``tests/obs/test_determinism.py`` locks in.
"""

from __future__ import annotations

import time


class WallClock:
    """Real time, via the highest-resolution monotonic clock."""

    deterministic = False

    def now(self) -> float:
        return time.perf_counter()


class LogicalClock:
    """Deterministic time: explicit advances plus a per-read tick.

    ``resolution`` is the tick added per ``now()`` read (default 1 ns in
    seconds).  ``set_at_least`` never moves time backwards, so readings
    are monotone even when several components feed it logical times out
    of order.
    """

    deterministic = True

    def __init__(self, start: float = 0.0, resolution: float = 1e-9):
        self._time = float(start)
        self._reads = 0
        self._resolution = resolution

    def now(self) -> float:
        self._reads += 1
        return self._time + self._reads * self._resolution

    def advance(self, delta_s: float) -> None:
        if delta_s < 0:
            raise ValueError(f"cannot advance time by {delta_s}")
        self._time += delta_s

    def set_at_least(self, at_s: float) -> None:
        """Move logical time forward to *at_s* (never backwards)."""
        if at_s > self._time:
            self._time = at_s

    @property
    def time(self) -> float:
        """The current logical time, without consuming a read tick."""
        return self._time
