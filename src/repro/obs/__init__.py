"""``repro.obs`` — the unified tracing & metrics substrate.

One import surface for every instrumented layer::

    from repro import obs

    o = obs.current()
    with o.span("compile.pass1", path=str(path)):
        ...
    if o.enabled:
        o.counter("repro_compile_runs_total").inc()

See ``docs/OBSERVABILITY.md`` for the span model, metric naming
convention and file formats.
"""

from repro.obs.audit import AuditLog
from repro.obs.clock import LogicalClock, WallClock
from repro.obs.context import IdAllocator, TraceContext
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observability import (
    NullObservability,
    Observability,
    configure_logging,
    current,
    logical_observability,
    scope,
    set_current,
)
from repro.obs.slo import DEFAULT_OBJECTIVES, SloObjective, SloTracker
from repro.obs.tracer import (
    DEFAULT_TRACE_SEED,
    MAX_SPANS,
    Span,
    SpanRecord,
    Tracer,
)

__all__ = [
    "AuditLog",
    "DEFAULT_BUCKETS",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_TRACE_SEED",
    "IdAllocator",
    "MAX_SPANS",
    "Counter",
    "Gauge",
    "Histogram",
    "LogicalClock",
    "MetricsRegistry",
    "NullObservability",
    "Observability",
    "SloObjective",
    "SloTracker",
    "Span",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "WallClock",
    "configure_logging",
    "current",
    "logical_observability",
    "scope",
    "set_current",
]
