"""Discrete-event network simulator substrate.

The paper evaluates NMSL against running network managers on a real
TCP/IP internet; this package substitutes a simulator that exercises the
same code paths: elements with interfaces on shared networks, latency +
transmission delay, SNMP agents and management applications driven by the
compiled specification, and a runtime verification monitor that compares
observed query behaviour against the specification — the paper's
"verifying that these specifications are actually being adhered to in the
network".

* :mod:`repro.netsim.sim` — the event loop;
* :mod:`repro.netsim.network` — topology and message delay;
* :mod:`repro.netsim.processes` — the management runtime built from a
  compiled :class:`~repro.nmsl.specs.Specification`;
* :mod:`repro.netsim.monitor` — the runtime verifier;
* :mod:`repro.netsim.faults` — seeded chaos injection (loss, stall,
  corruption, duplication, crash/restart) for the rollout path.
"""

from repro.netsim.sim import Simulator
from repro.netsim.network import Internet, SimElement, SimNetwork
from repro.netsim.processes import ManagementRuntime, QueryRecord
from repro.netsim.monitor import RuntimeVerifier, Violation
from repro.netsim.faults import FaultInjector, FaultSpec

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "Internet",
    "ManagementRuntime",
    "QueryRecord",
    "RuntimeVerifier",
    "SimElement",
    "SimNetwork",
    "Simulator",
    "Violation",
]
