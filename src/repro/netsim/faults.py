"""Chaos injection for the configuration rollout path.

A :class:`FaultInjector` wraps each element's protocol channel (request
octets in, response octets out) and perturbs deliveries according to a
seeded, fully deterministic plan:

* **loss** — the request never reaches the agent (the caller observes a
  timeout);
* **stall** — the agent processes the request but the response arrives
  after the caller's deadline (timeout with side effects — the nasty
  case for idempotency);
* **corruption** — one octet of the request is flipped in flight; if the
  mangled BER still decodes the agent stages garbage (caught later by
  fingerprint read-back), otherwise the agent drops the datagram
  (another timeout);
* **duplication** — the request is delivered twice (a duplicated staging
  chunk also surfaces as a fingerprint mismatch);
* **crash / restart** — after N delivered messages the element's agent
  crashes, losing staged state; optionally it restarts after a further M
  contact attempts, restoring its last-known-good configuration;
* **flap** — like crash/restart but *recurring*: the agent goes down
  after every N messages delivered since it last came up, cycling
  forever (the classic unstable element a reconciler must tolerate);
* **corrupt_store** — one-shot out-of-band mutation of the agent's
  persisted configuration store after its N-th delivered message
  (post-commit bit-rot: the running policy keeps serving, but the
  stored config — and hence its digest — has silently drifted).

Randomness is drawn from one ``random.Random`` per element seeded with
``(seed, element)``, so outcomes do not depend on how the coordinator
interleaves elements — the whole chaos run is bit-identical per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import random

from repro import obs
from repro.errors import AgentDownError, DeliveryError, DeliveryTimeout

SendFunction = Callable[[bytes], bytes]


@dataclass(frozen=True)
class FaultSpec:
    """What can go wrong on one element's channel."""

    loss_rate: float = 0.0
    stall_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    #: Crash the agent just before it would process delivered message N
    #: (1-based count of messages that reached the agent).
    crash_after: Optional[int] = None
    #: After crashing, come back up on the M-th contact attempt.
    restart_after: Optional[int] = None
    #: Stall every message after the N-th delivered one (a wedged agent).
    stall_after: Optional[int] = None
    #: Flap: crash after every N messages delivered since the agent last
    #: came up.  Unlike ``crash_after`` this repeats indefinitely.
    flap_after: Optional[int] = None
    #: After a flap crash, come back up on the M-th contact attempt
    #: (falls back to ``restart_after`` when unset).
    flap_restart_after: Optional[int] = None
    #: Corrupt the agent's persisted config store (once) after its N-th
    #: delivered message — needs a ``corrupt_hook`` on :meth:`wrap`.
    corrupt_store_after: Optional[int] = None


@dataclass
class _ElementChaosState:
    delivered: int = 0
    delivered_since_up: int = 0
    crashed: bool = False
    crashes: int = 0  # a crash_after spec fires exactly once
    flap_down: bool = False  # current outage came from flap_after
    store_corrupted: bool = False  # corrupt_store_after fires exactly once
    attempts_while_down: int = 0
    rng: random.Random = field(default_factory=random.Random)


class FaultInjector:
    """Deterministic, per-element chaos on top of protocol channels."""

    def __init__(
        self,
        seed: int = 1989,
        default: Optional[FaultSpec] = None,
        per_element: Optional[Dict[str, FaultSpec]] = None,
    ):
        self.seed = seed
        self.default = default or FaultSpec()
        self.per_element = dict(per_element or {})
        self._states: Dict[str, _ElementChaosState] = {}
        #: Observable trace of injected faults: (element, kind) counts.
        self.injected: Dict[str, Dict[str, int]] = {}

    def spec_for(self, element: str) -> FaultSpec:
        return self.per_element.get(element, self.default)

    def _state(self, element: str) -> _ElementChaosState:
        if element not in self._states:
            self._states[element] = _ElementChaosState(
                rng=random.Random(f"{self.seed}:{element}")
            )
        return self._states[element]

    def _count(self, element: str, kind: str) -> None:
        bucket = self.injected.setdefault(element, {})
        bucket[kind] = bucket.get(kind, 0) + 1
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_netsim_faults_injected_total",
                "chaos faults injected, by element and kind",
                element=element,
                kind=kind,
            ).inc()

    # ------------------------------------------------------------------
    # Channel wrapping.
    # ------------------------------------------------------------------
    def wrap(
        self,
        element: str,
        send: SendFunction,
        crash_hook: Optional[Callable[[], None]] = None,
        restart_hook: Optional[Callable[[], None]] = None,
        corrupt_hook: Optional[Callable[[], None]] = None,
    ) -> SendFunction:
        """Wrap *send* with this injector's faults for *element*.

        ``crash_hook`` / ``restart_hook`` let the injector take the
        element's agent down (losing its staged state) and bring it back
        up (restoring last-known-good) — usually bound to
        :meth:`SnmpAgent.crash` and :meth:`SnmpAgent.restart`.
        ``corrupt_hook`` mutates the agent's persisted config store for
        the ``corrupt_store_after`` fault — usually
        :meth:`SnmpAgent.corrupt_store`.
        """
        spec = self.spec_for(element)
        state = self._state(element)

        def chaotic_send(octets: bytes) -> bytes:
            # Bit-rot happens out-of-band, even while the agent is down.
            if (
                spec.corrupt_store_after is not None
                and not state.store_corrupted
                and state.delivered >= spec.corrupt_store_after
            ):
                state.store_corrupted = True
                self._count(element, "corrupt_store")
                if corrupt_hook is not None:
                    corrupt_hook()
            # Down? Either stay down or restart on this contact attempt.
            if state.crashed:
                state.attempts_while_down += 1
                restart_after = (
                    spec.flap_restart_after
                    if state.flap_down and spec.flap_restart_after is not None
                    else spec.restart_after
                )
                if (
                    restart_after is not None
                    and state.attempts_while_down >= restart_after
                ):
                    state.crashed = False
                    state.flap_down = False
                    state.attempts_while_down = 0
                    state.delivered_since_up = 0
                    self._count(element, "restart")
                    if restart_hook is not None:
                        restart_hook()
                else:
                    raise DeliveryError(f"agent on {element} is down")
            # Crash fires once the element has processed its quota.
            if (
                spec.crash_after is not None
                and state.delivered >= spec.crash_after
                and not state.crashed
                and state.crashes == 0
            ):
                state.crashed = True
                state.crashes += 1
                self._count(element, "crash")
                if crash_hook is not None:
                    crash_hook()
                raise DeliveryError(f"agent on {element} crashed mid-apply")
            # Flap: recurring outage every N deliveries since last up.
            if (
                spec.flap_after is not None
                and not state.crashed
                and state.delivered_since_up >= spec.flap_after
            ):
                state.crashed = True
                state.flap_down = True
                state.crashes += 1
                self._count(element, "flap")
                if crash_hook is not None:
                    crash_hook()
                raise DeliveryError(f"agent on {element} flapped down")
            # Loss: the request never arrives.
            if spec.loss_rate and state.rng.random() < spec.loss_rate:
                self._count(element, "loss")
                raise DeliveryTimeout(f"request to {element} lost")
            # Corruption: flip one octet in flight.
            deliver_octets = octets
            if spec.corrupt_rate and state.rng.random() < spec.corrupt_rate:
                self._count(element, "corrupt")
                position = state.rng.randrange(len(octets))
                flipped = octets[position] ^ 0xFF
                deliver_octets = (
                    octets[:position] + bytes([flipped]) + octets[position + 1 :]
                )
            # Deliver (possibly twice).
            try:
                state.delivered += 1
                state.delivered_since_up += 1
                response = send(deliver_octets)
                if (
                    spec.duplicate_rate
                    and state.rng.random() < spec.duplicate_rate
                ):
                    self._count(element, "duplicate")
                    state.delivered += 1
                    state.delivered_since_up += 1
                    send(deliver_octets)
            except AgentDownError as exc:
                raise DeliveryError(str(exc)) from exc
            except DeliveryError:
                raise
            except Exception as exc:
                # A mangled datagram the agent could not parse: real
                # agents drop it silently, so the caller sees a timeout.
                self._count(element, "rejected")
                raise DeliveryTimeout(
                    f"agent on {element} dropped an undecodable datagram "
                    f"({type(exc).__name__})"
                ) from exc
            # Stall: the response misses the deadline (side effects stay!).
            stalled = bool(
                spec.stall_after is not None
                and state.delivered > spec.stall_after
            )
            if not stalled and spec.stall_rate:
                stalled = state.rng.random() < spec.stall_rate
            if stalled:
                self._count(element, "stall")
                raise DeliveryTimeout(
                    f"response from {element} stalled past the deadline"
                )
            return response

        return chaotic_send
