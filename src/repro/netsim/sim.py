"""A minimal discrete-event simulator.

Events are (time, sequence, callback) triples on a heap; the sequence
number makes ordering deterministic for simultaneous events.  Callbacks
may schedule further events.  ``run_until`` processes events in time
order up to a horizon; ``run`` drains the queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

EventCallback = Callable[[], None]


class Simulator:
    """The event loop."""

    def __init__(self):
        self._now = 0.0
        self._sequence = itertools.count()
        self._queue: List[Tuple[float, int, EventCallback]] = []
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: EventCallback) -> None:
        """Run *callback* at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._sequence), callback)
        )

    def schedule_at(self, when: float, callback: EventCallback) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._sequence), callback))

    def schedule_every(
        self,
        period: float,
        callback: EventCallback,
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Run *callback* periodically (first at *start*, default one period)."""
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        first = start if start is not None else period

        def tick() -> None:
            if until is not None and self._now > until:
                return
            callback()
            self.schedule(period, tick)

        self.schedule_at(self._now + first, tick)

    def run_until(self, horizon: float) -> int:
        """Process events with time <= horizon; returns events processed."""
        processed = 0
        while self._queue and self._queue[0][0] <= horizon:
            when, _seq, callback = heapq.heappop(self._queue)
            self._now = when
            callback()
            processed += 1
            self.events_processed += 1
        self._now = max(self._now, horizon)
        return processed

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue (bounded by *max_events*)."""
        processed = 0
        while self._queue:
            if processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events without draining"
                )
            when, _seq, callback = heapq.heappop(self._queue)
            self._now = when
            callback()
            processed += 1
            self.events_processed += 1
        return processed

    def pending(self) -> int:
        return len(self._queue)
