"""Topology: elements, networks, and message delay.

An :class:`Internet` is a bipartite graph of elements and networks (an
element joins a network per interface).  Message delay between two
elements is the shortest path's accumulated per-network latency plus
transmission time (message size over the bottleneck interface speed).
Elements on a shared network are one hop; otherwise multi-homed elements
act as gateways, exactly how the paper's internets are stitched together.

Per-network byte counters support utilisation reporting (the speculative
"how much load will the new organization add" question).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx

from repro.errors import SimulationError
from repro.nmsl.specs import Specification, SystemSpec

DEFAULT_LATENCY_S = 0.001  # 1 ms per network hop


@dataclass
class SimNetwork:
    """A broadcast network (an Ethernet segment, say)."""

    name: str
    latency_s: float = DEFAULT_LATENCY_S
    bytes_carried: int = 0


@dataclass
class SimElement:
    """A network element: its interfaces name the networks it joins."""

    name: str
    interfaces: Dict[str, int] = field(default_factory=dict)  # network -> bps

    def speed_on(self, network: str) -> int:
        return self.interfaces.get(network, 0)


class Internet:
    """The element/network graph with delay computation."""

    def __init__(self):
        self._elements: Dict[str, SimElement] = {}
        self._networks: Dict[str, SimNetwork] = {}
        self._graph = networkx.Graph()

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def add_network(self, name: str, latency_s: float = DEFAULT_LATENCY_S) -> SimNetwork:
        if name not in self._networks:
            self._networks[name] = SimNetwork(name, latency_s)
            self._graph.add_node(("net", name))
        return self._networks[name]

    def add_element(self, name: str) -> SimElement:
        if name not in self._elements:
            self._elements[name] = SimElement(name)
            self._graph.add_node(("elem", name))
        return self._elements[name]

    def attach(self, element_name: str, network_name: str, speed_bps: int) -> None:
        element = self.add_element(element_name)
        self.add_network(network_name)
        element.interfaces[network_name] = speed_bps
        self._graph.add_edge(("elem", element_name), ("net", network_name))

    @classmethod
    def from_specification(cls, specification: Specification) -> "Internet":
        """Build the physical topology a specification describes."""
        internet = cls()
        for system in specification.systems.values():
            internet.add_element(system.name)
            for interface in system.interfaces:
                internet.attach(system.name, interface.network, interface.speed_bps)
        return internet

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def element(self, name: str) -> SimElement:
        if name not in self._elements:
            raise SimulationError(f"unknown element {name!r}")
        return self._elements[name]

    def network(self, name: str) -> SimNetwork:
        if name not in self._networks:
            raise SimulationError(f"unknown network {name!r}")
        return self._networks[name]

    def element_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._elements))

    def network_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._networks))

    # ------------------------------------------------------------------
    # Delay model.
    # ------------------------------------------------------------------
    def path_networks(self, src: str, dst: str) -> List[str]:
        """The networks a message crosses from *src* to *dst*."""
        if src == dst:
            return []
        try:
            path = networkx.shortest_path(
                self._graph, ("elem", src), ("elem", dst)
            )
        except (networkx.NetworkXNoPath, networkx.NodeNotFound) as exc:
            raise SimulationError(
                f"no route from {src!r} to {dst!r}"
            ) from exc
        return [name for kind, name in path if kind == "net"]

    def delay(self, src: str, dst: str, nbytes: int) -> float:
        """Latency + transmission time for *nbytes* from *src* to *dst*.

        Transmission uses the slowest interface speed along the path
        (the bottleneck); each crossed network contributes its latency
        and counts the bytes.
        """
        networks = self.path_networks(src, dst)
        if not networks:
            return 0.0
        total_latency = 0.0
        bottleneck_bps: Optional[int] = None
        for network_name in networks:
            network = self._networks[network_name]
            network.bytes_carried += nbytes
            total_latency += network.latency_s
            for element_name in (src, dst):
                speed = self._elements[element_name].speed_on(network_name)
                if speed:
                    if bottleneck_bps is None or speed < bottleneck_bps:
                        bottleneck_bps = speed
        transmission = 0.0
        if bottleneck_bps:
            transmission = (nbytes * 8) / bottleneck_bps * len(networks)
        return total_latency + transmission

    def utilisation_report(self, duration_s: float) -> Dict[str, float]:
        """Average bits/second carried per network over *duration_s*."""
        if duration_s <= 0:
            raise SimulationError("duration must be positive")
        return {
            name: network.bytes_carried * 8 / duration_s
            for name, network in sorted(self._networks.items())
        }
