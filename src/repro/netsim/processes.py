"""The management runtime: a compiled specification, running.

:class:`ManagementRuntime` turns a typed Specification into live simulated
processes:

* each *agent* instance becomes an :class:`~repro.snmp.agent.SnmpAgent`
  with an instance store populated over its effective view (process
  supports ∩ element supports);
* the prescriptive loop installs the compiler's ``BartsSnmpd``
  configuration into every agent (via the management path by default);
* each *application* instance becomes a periodic query driver that sends
  real BER-encoded requests through the simulated internet at its
  specified frequency — or faster, when a misbehaving manager is
  injected;
* every query is logged as a :class:`QueryRecord` for the runtime
  verifier.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.asn1.types import Asn1Module
from repro.codegen.base import ConfigurationGenerator
from repro.consistency.facts import FactGenerator, FactSet, InstanceId
from repro.errors import SimulationError, SnmpError
from repro.mib.instances import InstanceStore
from repro.mib.tree import MibTree
from repro.mib.view import MibView
from repro.netsim.network import Internet
from repro.netsim.sim import Simulator
from repro.nmsl.compiler import CompileResult, NmslCompiler
from repro.nmsl.frequency import FrequencySpec
from repro.nmsl.specs import Specification, PUBLIC_DOMAIN
from repro.snmp.agent import SnmpAgent
from repro.snmp.codec import decode_message, encode_message
from repro.snmp.messages import ErrorStatus, Message, PduType


@dataclass
class QueryRecord:
    """One observed management query."""

    time: float
    client: str  # client instance id
    server_element: str
    server_agent: str  # agent instance id
    community: str
    request_path: str
    outcome: str  # "ok" | "denied" | "rate-limited" | "no-route"
    delay_s: float = 0.0


@dataclass
class ApplicationDriver:
    """Schedules one application instance's queries.

    ``data_element`` is the element whose data the query addresses; it
    differs from ``target_agent.owner`` when a proxy answers for it.
    """

    instance: InstanceId
    target_agent: InstanceId
    community: str
    request_path: str
    period_s: float
    source_element: str
    data_element: str = ""


class ManagementRuntime:
    """Builds and runs the simulated management system."""

    #: Nominal encoded request+response size if codec sizing is skipped.
    DEFAULT_MESSAGE_BYTES = 128

    def __init__(
        self,
        compiler: NmslCompiler,
        result: CompileResult,
        simulator: Optional[Simulator] = None,
    ):
        self.compiler = compiler
        self.result = result
        self.specification: Specification = result.specification
        self.tree: MibTree = compiler.tree
        self.simulator = simulator or Simulator()
        self.internet = Internet.from_specification(self.specification)
        self.facts: FactSet = FactGenerator(self.specification, self.tree).generate()
        self.agents: Dict[str, SnmpAgent] = {}  # agent instance id -> agent
        self.drivers: List[ApplicationDriver] = []
        self.log: List[QueryRecord] = []
        #: (time, agent instance id, trap message) — unsolicited traps.
        self.traps: List[tuple] = []
        self._request_ids = itertools.count(1)
        # id -> instance, prebuilt once: install sweeps resolve instances
        # per (config, agent) pair, and a linear scan is O(n^2) over a
        # large campus.
        self._instances_by_id: Dict[str, InstanceId] = {
            instance.id: instance for instance in self.facts.instances
        }
        self._build_agents()
        self._build_drivers()

    def _log_query(self, record: QueryRecord) -> None:
        """Append to the query log, counting outcomes for observability."""
        self.log.append(record)
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_netsim_queries_total",
                "application queries executed, by outcome",
                outcome=record.outcome,
            ).inc()

    # ------------------------------------------------------------------
    # Agents.
    # ------------------------------------------------------------------
    def _build_agents(self) -> None:
        module = Asn1Module()
        for instance in self.facts.agents():
            if instance.owner_kind != "system":
                continue
            process_view = self.facts.instance_supports[instance.id]
            element_view = self.facts.system_supports.get(instance.owner)
            effective = (
                process_view.intersection(element_view)
                if element_view is not None and not element_view.is_empty()
                else process_view
            )
            store = InstanceStore(self.tree, view=effective, module=module)
            store.populate_defaults()
            self._bind_identity(store, instance)

            def sink(message, _instance_id=instance.id):
                self.traps.append((self.simulator.now, _instance_id, message))

            self.agents[instance.id] = SnmpAgent(
                instance.id, store, tree=self.tree, trap_sink=sink
            )

    def _bind_identity(self, store: InstanceStore, instance: InstanceId) -> None:
        system = self.specification.systems.get(instance.owner)
        if system is None:
            return
        try:
            store.bind("1.3.6.1.2.1.1.1.0", f"{system.opsys} {system.opsys_version}".strip().encode())
        except Exception:
            pass
        # One ipAddrTable row per interface so walks return real rows.
        for index, interface in enumerate(system.interfaces, start=1):
            address = bytes(
                [10, (index * 7) % 250 + 1, hash(system.name) % 250 + 1, index]
            )
            row_index = ".".join(str(b) for b in address)
            try:
                store.bind(f"1.3.6.1.2.1.4.20.1.1.{row_index}", address)
                store.bind(f"1.3.6.1.2.1.4.20.1.2.{row_index}", index)
                store.bind(
                    f"1.3.6.1.2.1.4.20.1.3.{row_index}",
                    b"\xff\xff\xff\x00",
                )
                store.bind(f"1.3.6.1.2.1.4.20.1.4.{row_index}", 1)
            except Exception:
                continue

    # ------------------------------------------------------------------
    # Prescriptive loop: install generated configuration.
    # ------------------------------------------------------------------
    def install_configuration(
        self,
        tag: str = "BartsSnmpd",
        via_protocol: bool = False,
        chunk_size: int = 1024,
    ) -> int:
        """Generate per-element configuration and install it into each agent.

        Returns the number of agents configured.  With ``via_protocol``
        the paper's preferred method is used literally: the Configuration
        Generator acts as an authenticated manager and writes the text
        into each agent's enterprise config objects with SNMP Sets
        (chunked), then triggers an apply — real BER on the wire.  The
        default is the equivalent direct install (faster for large
        sweeps).

        The protocol path truncates each agent's staging buffer before
        writing (a previously failed install must never leave a longer
        predecessor's tail under a shorter config) and checks the error
        status of every Set response; any failure raises
        :class:`SimulationError` naming the element, after the remaining
        elements have been attempted.
        """
        from repro.snmp.agent import (
            ADMIN_COMMUNITY,
            NMSL_CONFIG_APPLY,
            NMSL_CONFIG_RESET,
            NMSL_CONFIG_TEXT,
        )
        from repro.snmp.manager import SnmpManager

        generator = ConfigurationGenerator(self.compiler, self.result)
        configured = 0
        failures: List[str] = []
        with obs.current().span(
            "netsim.install_configuration", tag=tag, via_protocol=via_protocol
        ) as span:
            for config in generator.generate(tag):
                for instance_id, agent in self.agents.items():
                    instance = self._instance(instance_id)
                    if instance.owner != config.element:
                        continue
                    if via_protocol:
                        manager = SnmpManager(
                            ADMIN_COMMUNITY, agent.handle_octets
                        )
                        octets = config.text.encode("utf-8")
                        try:
                            manager.set([(NMSL_CONFIG_RESET, 1)])
                            for start in range(0, len(octets), chunk_size):
                                manager.set(
                                    [
                                        (
                                            NMSL_CONFIG_TEXT,
                                            octets[start : start + chunk_size],
                                        )
                                    ]
                                )
                            manager.set([(NMSL_CONFIG_APPLY, 1)])
                        except SnmpError as exc:
                            failures.append(
                                f"{config.element} ({instance_id}): {exc}"
                            )
                            continue
                    else:
                        agent.load_config(config.text, self.tree)
                        agent.emit_cold_start(self.simulator.now)
                    configured += 1
            span.annotate(configured=configured, failures=len(failures))
        if failures:
            raise SimulationError(
                "protocol install failed for "
                + "; ".join(sorted(failures))
            )
        return configured

    def _instance(self, instance_id: str) -> InstanceId:
        instance = self._instances_by_id.get(instance_id)
        if instance is None:
            raise SimulationError(f"unknown instance {instance_id!r}")
        return instance

    # ------------------------------------------------------------------
    # Fault-tolerant rollout (the hardened prescriptive loop).
    # ------------------------------------------------------------------
    def rollout_targets(self, tag: str = "BartsSnmpd") -> Dict[str, str]:
        """Per-target configuration text for a rollout campaign.

        Targets are keyed by element name; when an element runs several
        agents each becomes its own ``element/agent-id`` target so the
        coordinator tracks them independently.
        """
        generator = ConfigurationGenerator(self.compiler, self.result)
        merged: Dict[str, List[str]] = {}
        for config in generator.generate(tag):
            merged.setdefault(config.element, []).append(config.text)
        targets: Dict[str, str] = {}
        for element, chunks in merged.items():
            text = "\n".join(chunks)
            for target in self._element_targets(element):
                targets[target] = text
        return targets

    def _element_targets(self, element: str) -> List[str]:
        agents = self._agents_of_element(element)
        if not agents:
            return []
        if len(agents) == 1:
            return [element]
        return [f"{element}/{instance_id}" for instance_id, _ in agents]

    def _agents_of_element(self, element: str) -> List[Tuple[str, SnmpAgent]]:
        return sorted(
            (instance_id, agent)
            for instance_id, agent in self.agents.items()
            if self._instance(instance_id).owner == element
        )

    def target_agent(self, target: str) -> SnmpAgent:
        element, _, instance_id = target.partition("/")
        agents = self._agents_of_element(element)
        if instance_id:
            for candidate_id, agent in agents:
                if candidate_id == instance_id:
                    return agent
            raise SimulationError(f"unknown rollout target {target!r}")
        if not agents:
            raise SimulationError(f"no agent for rollout target {target!r}")
        return agents[0][1]

    def rollout_channels(
        self, targets: Sequence[str], injector=None
    ) -> Dict[str, Callable[[bytes], bytes]]:
        """Protocol channels for the coordinator, optionally chaos-wrapped."""
        channels = {}
        for target in targets:
            agent = self.target_agent(target)

            def send(octets: bytes, _agent=agent) -> bytes:
                return _agent.handle_octets(octets, now=self.simulator.now)

            if injector is not None:
                send = injector.wrap(
                    target,
                    send,
                    crash_hook=agent.crash,
                    restart_hook=agent.restart,
                    corrupt_hook=agent.corrupt_store,
                )
            channels[target] = send
        return channels

    def rollout(
        self,
        tag: str = "BartsSnmpd",
        policy=None,
        jobs: int = 4,
        seed: int = 1989,
        injector=None,
        chunk_size: int = 1024,
        configs: Optional[Dict[str, str]] = None,
        journal=None,
        crash_coordinator_after: Optional[int] = None,
        health=None,
        resume_from=None,
        gate=None,
        deadline=None,
    ):
        """Run a fault-tolerant rollout campaign over every agent.

        Builds per-element two-phase delivery through a
        :class:`~repro.rollout.coordinator.RolloutCoordinator`; each
        agent's current committed configuration (if any) is its
        last-known-good for rollback.  ``configs`` overrides the
        generated target texts (keyed like :meth:`rollout_targets`).
        ``journal`` write-ahead-logs the campaign (making it resumable),
        ``crash_coordinator_after`` kills the coordinator after N
        journaled events (chaos), ``health`` skips quarantined elements,
        ``gate`` (a :class:`~repro.rollout.gate.RolloutGate`) vetoes
        unwaived access-widening deltas and narrows the campaign to the
        impacted elements, and ``resume_from`` (a journal or path)
        continues an interrupted campaign instead of starting fresh.
        Returns the :class:`~repro.rollout.state.RolloutReport`.
        """
        from repro.rollout import RolloutCoordinator

        targets = configs if configs is not None else self.rollout_targets(tag)
        channels = self.rollout_channels(sorted(targets), injector=injector)
        last_known_good = {}
        for target in targets:
            good = self.target_agent(target).last_good_config
            if good is not None:
                last_known_good[target] = good
        coordinator = RolloutCoordinator(
            channels=channels,
            configs=targets,
            policy=policy,
            jobs=jobs,
            seed=seed,
            last_known_good=last_known_good,
            chunk_size=chunk_size,
            journal=journal,
            crash_coordinator_after=crash_coordinator_after,
            health=health,
            gate=gate,
            deadline=deadline,
        )
        if resume_from is not None:
            return coordinator.resume(resume_from)
        return coordinator.run()

    def heal(
        self,
        tag: str = "BartsSnmpd",
        policy=None,
        jobs: int = 4,
        seed: int = 1989,
        injector=None,
        chunk_size: int = 1024,
        configs: Optional[Dict[str, str]] = None,
        registry=None,
        interval_s: float = 30.0,
        rounds: int = 10,
        deadline=None,
    ):
        """Run the drift-reconciliation loop over every agent.

        Builds a :class:`~repro.heal.reconciler.Reconciler` whose desired
        state is the generated (or supplied) target configurations and
        whose generation expectations are seeded from each agent's
        current commit count.  Returns the
        :class:`~repro.heal.reconciler.HealReport`.
        """
        from repro.heal import HealthRegistry, Reconciler

        targets = configs if configs is not None else self.rollout_targets(tag)
        channels = self.rollout_channels(sorted(targets), injector=injector)
        expected = {
            target: self.target_agent(target).configs_applied
            for target in targets
        }
        reconciler = Reconciler(
            channels=channels,
            configs=targets,
            policy=policy,
            seed=seed,
            jobs=jobs,
            registry=registry or HealthRegistry(sorted(targets)),
            interval_s=interval_s,
            max_rounds=rounds,
            chunk_size=chunk_size,
            expected_generations=expected,
            deadline=deadline,
        )
        return reconciler.run()

    # ------------------------------------------------------------------
    # Application drivers.
    # ------------------------------------------------------------------
    def _build_drivers(self) -> None:
        for instance in self.facts.instances:
            process = self.specification.processes[instance.process_name]
            if not process.queries:
                continue
            for query in process.queries:
                target = self._resolve_driver_target(instance, query.target)
                if target is None:
                    continue
                period = query.frequency.min_period or 60.0
                community = self._community_for(instance, target)
                source = self._source_element(instance, target)
                self.drivers.append(
                    ApplicationDriver(
                        instance=instance,
                        target_agent=target,
                        community=community,
                        request_path=query.requests[0],
                        period_s=period,
                        source_element=source,
                        data_element=self._data_element(instance, query.target)
                        or target.owner,
                    )
                )

    def _resolve_driver_target(
        self, instance: InstanceId, target: str
    ) -> Optional[InstanceId]:
        process = self.specification.processes[instance.process_name]
        names = process.param_names()
        value = target
        if target in names:
            position = names.index(target)
            if position < len(instance.args):
                value = str(instance.args[position])
            else:
                value = "*"
        candidates: List[InstanceId] = []
        if value == "*":
            candidates = self.facts.agents()
        elif value in self.specification.systems:
            candidates = [
                agent
                for agent in self.facts.agents()
                if agent.owner == value
            ]
            if not candidates:
                # Proxy-managed element: direct the query at its proxy.
                candidates = self.facts.proxies_for_system(value)
        elif value in self.specification.processes:
            candidates = self.facts.instances_of_process(value)
        if not candidates:
            return None
        # Deterministic choice: first agent on a system, in fact order.
        for candidate in candidates:
            if candidate.owner_kind == "system":
                return candidate
        return None

    def _data_element(self, instance: InstanceId, target: str) -> Optional[str]:
        """The element name a query literally addresses, if any."""
        process = self.specification.processes[instance.process_name]
        names = process.param_names()
        value = target
        if target in names:
            position = names.index(target)
            value = (
                str(instance.args[position])
                if position < len(instance.args)
                else "*"
            )
        return value if value in self.specification.systems else None

    def _community_for(self, instance: InstanceId, target: InstanceId) -> str:
        """The community an application presents to *target*'s agent.

        A real manager is configured with the community its grant names:
        prefer a shared immediate domain (implicit trust), then a
        permission granted to one of the client's domains, then public.
        """
        client_direct = set(self.facts.direct_domains_of_instance(instance))
        target_direct = set(self.facts.direct_domains_of_instance(target))
        shared = sorted(client_direct & target_direct)
        if shared:
            return shared[0]
        containment = self.facts.transitive_containment()
        containers = containment.get(f"instance:{target.id}", set())
        by_grantor = self.facts.permissions_by_grantor()
        grants = list(by_grantor.get(f"instance:{target.id}", ()))
        for container in containers:
            if container.startswith("domain:"):
                grants.extend(by_grantor.get(container, ()))
        client_domains = set(self.facts.domains_of_instance(instance))
        for permission in grants:
            if permission.grantee_domain in client_domains:
                return permission.grantee_domain
        return PUBLIC_DOMAIN

    def _source_element(self, instance: InstanceId, target: InstanceId) -> str:
        if instance.owner_kind == "system":
            return instance.owner
        # Domain-instantiated applications run "somewhere in the domain":
        # place them on the domain's first system.
        domain = self.specification.domains.get(instance.owner)
        if domain is not None and domain.systems:
            return domain.systems[0]
        return target.owner  # degenerate: co-located with the target

    # ------------------------------------------------------------------
    # Running.
    # ------------------------------------------------------------------
    def start(
        self,
        duration_s: float,
        misbehaving: Optional[Dict[str, float]] = None,
        loss_rate: float = 0.0,
        seed: int = 1989,
    ) -> None:
        """Schedule all drivers for *duration_s* simulated seconds.

        ``misbehaving`` overrides the period of selected client instance
        ids — injecting managers that query faster than their
        specification promises.  ``loss_rate`` drops that fraction of
        requests in the network (failure injection); drops are logged
        with outcome ``lost``.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self._loss_rate = loss_rate
        self._rng = random.Random(seed)
        misbehaving = misbehaving or {}
        for driver in self.drivers:
            period = misbehaving.get(driver.instance.id, driver.period_s)
            self._schedule_driver(driver, period, duration_s)

    def _schedule_driver(
        self, driver: ApplicationDriver, period: float, until: float
    ) -> None:
        def fire() -> None:
            self._execute_query(driver)

        self.simulator.schedule_every(period, fire, start=period, until=until)

    def _execute_query(self, driver: ApplicationDriver) -> None:
        agent = self.agents.get(driver.target_agent.id)
        now = self.simulator.now
        if agent is None:
            self._log_query(
                QueryRecord(
                    now,
                    driver.instance.id,
                    driver.target_agent.owner,
                    driver.target_agent.id,
                    driver.community,
                    driver.request_path,
                    "no-route",
                )
            )
            return
        try:
            node = self.tree.resolve(driver.request_path)
        except Exception:
            node = None
        oid = node.oid if node is not None else None
        request = Message.get_next(
            driver.community, next(self._request_ids), [oid or "1.3.6.1"]
        )
        octets = encode_message(request)
        try:
            delay = self.internet.delay(
                driver.source_element, driver.target_agent.owner, len(octets)
            )
        except SimulationError:
            self._log_query(
                QueryRecord(
                    now,
                    driver.instance.id,
                    driver.target_agent.owner,
                    driver.target_agent.id,
                    driver.community,
                    driver.request_path,
                    "no-route",
                )
            )
            return

        loss_rate = getattr(self, "_loss_rate", 0.0)
        if loss_rate and self._rng.random() < loss_rate:
            self._log_query(
                QueryRecord(
                    now,
                    driver.instance.id,
                    driver.target_agent.owner,
                    driver.target_agent.id,
                    driver.community,
                    driver.request_path,
                    "lost",
                )
            )
            return

        def deliver() -> None:
            response_octets = agent.handle_octets(octets, now=self.simulator.now)
            response = decode_message(response_octets)
            if response.pdu.error_status == ErrorStatus.NO_ERROR:
                outcome = "ok"
            elif response.pdu.error_status == ErrorStatus.GEN_ERR:
                outcome = "rate-limited"
            else:
                outcome = "denied"
            # Records carry the SEND time: the verifier measures the
            # client's promised inter-query period, and mixing send and
            # arrival timestamps would skew intervals by the path delay.
            self._log_query(
                QueryRecord(
                    now,
                    driver.instance.id,
                    driver.target_agent.owner,
                    driver.target_agent.id,
                    driver.community,
                    driver.request_path,
                    outcome,
                    delay_s=delay,
                )
            )

        self.simulator.schedule(delay, deliver)

    def run(self, duration_s: float) -> int:
        """Run the simulation for *duration_s* seconds of virtual time."""
        return self.simulator.run_until(duration_s)

    # ------------------------------------------------------------------
    # Summaries.
    # ------------------------------------------------------------------
    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.log:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts
