"""Runtime verification: does the network adhere to its specification?

The paper's goal is both *specifying* and *verifying* — "a method for
verifying that these specifications are actually being adhered to in the
network."  The :class:`RuntimeVerifier` replays a management runtime's
query log against the specification's frequency promises:

* **client-side**: successive queries from one client instance to one
  agent must be at least the specified minimum period apart;
* **server-side**: the per-community rate enforcement installed by the
  prescriptive aspect should have flagged exactly those same violators
  (``rate-limited`` outcomes), which cross-checks the generated
  configuration against the independent observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.consistency.facts import FactSet
from repro.netsim.processes import QueryRecord
from repro.nmsl.frequency import FrequencySpec
from repro.nmsl.specs import Specification


@dataclass
class Violation:
    """One observed departure from the specification."""

    client: str
    server_agent: str
    observed_interval_s: float
    promised_min_period_s: float
    at_time: float

    def describe(self) -> str:
        return (
            f"{self.client} queried {self.server_agent} after "
            f"{self.observed_interval_s:.1f}s; specification promises "
            f">= {self.promised_min_period_s:.1f}s (t={self.at_time:.1f})"
        )


@dataclass
class VerificationReport:
    """The verifier's verdict."""

    adheres: bool
    violations: List[Violation] = field(default_factory=list)
    checked_pairs: int = 0
    observed_queries: int = 0
    rate_limited_queries: int = 0
    violating_clients: Tuple[str, ...] = ()

    def render(self) -> str:
        if self.adheres:
            return (
                f"network adheres to specification "
                f"({self.observed_queries} queries over "
                f"{self.checked_pairs} client/agent pairs)"
            )
        lines = [
            f"network VIOLATES specification: {len(self.violations)} "
            f"violation(s) by {len(self.violating_clients)} client(s)"
        ]
        for violation in self.violations[:10]:
            lines.append("  " + violation.describe())
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


class RuntimeVerifier:
    """Compares observed behaviour with specified frequency promises."""

    def __init__(self, specification: Specification, facts: FactSet):
        self._spec = specification
        self._facts = facts
        self._promises = self._collect_promises()

    def _collect_promises(self) -> Dict[str, float]:
        """client instance id -> promised minimum query period (seconds)."""
        promises: Dict[str, float] = {}
        for instance in self._facts.instances:
            process = self._spec.processes[instance.process_name]
            for query in process.queries:
                period = query.frequency.min_period
                if period <= 0:
                    continue
                current = promises.get(instance.id)
                if current is None or period < current:
                    promises[instance.id] = period
        return promises

    def verify(
        self, log: Sequence[QueryRecord], tolerance: float = 1e-6
    ) -> VerificationReport:
        """Check every (client, agent) stream's inter-arrival times."""
        last_seen: Dict[Tuple[str, str], float] = {}
        violations: List[Violation] = []
        rate_limited = 0
        for record in sorted(log, key=lambda item: item.time):
            if record.outcome == "rate-limited":
                rate_limited += 1
            promised = self._promises.get(record.client)
            key = (record.client, record.server_agent)
            previous = last_seen.get(key)
            last_seen[key] = record.time
            if promised is None or previous is None:
                continue
            interval = record.time - previous
            if interval + tolerance < promised:
                violations.append(
                    Violation(
                        client=record.client,
                        server_agent=record.server_agent,
                        observed_interval_s=interval,
                        promised_min_period_s=promised,
                        at_time=record.time,
                    )
                )
        return VerificationReport(
            adheres=not violations,
            violations=violations,
            checked_pairs=len(last_seen),
            observed_queries=len(log),
            rate_limited_queries=rate_limited,
            violating_clients=tuple(
                sorted({violation.client for violation in violations})
            ),
        )

    def trap_summary(self, traps) -> Dict[str, Dict[str, int]]:
        """Aggregate the agents' unsolicited traps.

        Input is the runtime's ``traps`` list of (time, agent id,
        message); output maps agent id -> {trap name: count}.  Cold
        starts should match configuration installs; authentication
        failures point at misaddressed or unauthorized managers.
        """
        summary: Dict[str, Dict[str, int]] = {}
        for _time, agent_id, message in traps:
            name = message.pdu.generic_trap.name.lower()
            per_agent = summary.setdefault(agent_id, {})
            per_agent[name] = per_agent.get(name, 0) + 1
        return summary

    def cross_check_enforcement(
        self, log: Sequence[QueryRecord], report: VerificationReport
    ) -> List[str]:
        """Did server-side enforcement catch the observed violators?

        Returns discrepancy messages; empty means the generated
        configuration's rate limits agree with the independent
        observation.
        """
        limited_clients = {
            record.client
            for record in log
            if record.outcome == "rate-limited"
        }
        messages = []
        for client in report.violating_clients:
            if client not in limited_clients:
                messages.append(
                    f"violator {client} was never rate-limited by any agent "
                    "(enforcement gap)"
                )
        for client in sorted(limited_clients):
            if client not in report.violating_clients:
                messages.append(
                    f"{client} was rate-limited but no specification "
                    "violation was observed (over-enforcement)"
                )
        return messages
