"""The MIB registration tree.

A :class:`MibTree` holds :class:`MibNode` objects addressable two ways:

* by OID (``1.3.6.1.2.1.4.20``), and
* by dotted *name path* as the paper writes them
  (``mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr``).

Name-path resolution is rooted at any registered *root alias*: the paper
starts paths at ``mgmt``, so the tree registers ``mgmt`` as an alias for
``1.3.6.1.2``.  Nodes may carry extra aliases — the paper names the table
entry by its ASN.1 *type* name (``IpAddrEntry``) where RFC 1066 names the
node ``ipAddrEntry``; both resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.asn1.nodes import Asn1Type
from repro.errors import MibError
from repro.mib.oid import Oid, OidLike


class Access(Enum):
    """MIB object access modes (paper Figure 4.1 AType plus read-write).

    The paper's ``Any`` corresponds to read-write here; both spellings are
    accepted by :meth:`parse`.
    """

    ANY = "Any"
    READ_ONLY = "ReadOnly"
    READ_WRITE = "ReadWrite"
    WRITE_ONLY = "WriteOnly"
    NONE = "None"

    @classmethod
    def parse(cls, text: str) -> "Access":
        normalized = text.replace("-", "").replace("_", "").lower()
        for member in cls:
            if member.value.lower() == normalized:
                return member
        raise MibError(f"unknown access mode {text!r}")

    def allows_read(self) -> bool:
        return self in (Access.ANY, Access.READ_ONLY, Access.READ_WRITE)

    def allows_write(self) -> bool:
        return self in (Access.ANY, Access.READ_WRITE, Access.WRITE_ONLY)

    def permits(self, requested: "Access") -> bool:
        """True if this granted mode covers the *requested* mode."""
        if requested is Access.NONE:
            return True
        read_ok = self.allows_read() or not requested.allows_read()
        write_ok = self.allows_write() or not requested.allows_write()
        return read_ok and write_ok


@dataclass
class MibNode:
    """One node of the MIB tree.

    Leaf nodes carry a ``syntax`` (an ASN.1 type) and an ``access`` mode;
    interior nodes usually carry neither.
    """

    name: str
    oid: Oid
    syntax: Optional[Asn1Type] = None
    access: Access = Access.NONE
    description: str = ""
    aliases: Tuple[str, ...] = ()
    children: Dict[int, "MibNode"] = field(default_factory=dict, repr=False)
    parent: Optional["MibNode"] = field(default=None, repr=False)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def name_path(self, root: Optional[str] = None) -> str:
        """The dotted name path from the tree root (or from node *root*)."""
        parts: List[str] = []
        node: Optional[MibNode] = self
        while node is not None and node.name:
            parts.append(node.name)
            if root is not None and node.name == root:
                break
            node = node.parent
        return ".".join(reversed(parts))

    def walk(self) -> Iterator["MibNode"]:
        """Yield this node and all descendants in OID order."""
        yield self
        for component in sorted(self.children):
            yield from self.children[component].walk()

    def all_names(self) -> Tuple[str, ...]:
        return (self.name,) + self.aliases


class MibTree:
    """A registry of MIB nodes with OID and name-path lookup."""

    def __init__(self):
        self._root = MibNode(name="", oid=Oid())
        self._by_oid: Dict[Oid, MibNode] = {Oid(): self._root}
        # Name-path resolution entry points: name -> node.
        self._roots_by_name: Dict[str, MibNode] = {}

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        oid: OidLike,
        syntax: Optional[Asn1Type] = None,
        access: Access = Access.NONE,
        description: str = "",
        aliases: Sequence[str] = (),
    ) -> MibNode:
        """Register a node, creating anonymous ancestors as needed."""
        oid = Oid(oid)
        if not len(oid):
            raise MibError("cannot register the empty OID")
        existing = self._by_oid.get(oid)
        if existing is not None:
            if existing.name and existing.name != name:
                raise MibError(
                    f"OID {oid} already registered as {existing.name!r}"
                )
            # Filling in a previously-anonymous ancestor.
            existing.name = name
            existing.syntax = syntax or existing.syntax
            existing.access = access if access is not Access.NONE else existing.access
            existing.description = description or existing.description
            existing.aliases = tuple(dict.fromkeys(existing.aliases + tuple(aliases)))
            return existing
        parent = self._ensure(oid.parent)
        node = MibNode(
            name=name,
            oid=oid,
            syntax=syntax,
            access=access,
            description=description,
            aliases=tuple(aliases),
            parent=parent,
        )
        parent.children[oid.components[-1]] = node
        self._by_oid[oid] = node
        return node

    def _ensure(self, oid: Oid) -> MibNode:
        node = self._by_oid.get(oid)
        if node is not None:
            return node
        parent = self._ensure(oid.parent)
        node = MibNode(name="", oid=oid, parent=parent)
        parent.children[oid.components[-1]] = node
        self._by_oid[oid] = node
        return node

    def add_root_alias(self, name: str, oid: OidLike) -> None:
        """Allow name paths to start at *name*, resolving to node at *oid*."""
        node = self._by_oid.get(Oid(oid))
        if node is None:
            raise MibError(f"no node at {Oid(oid)} for root alias {name!r}")
        self._roots_by_name[name] = node

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    @property
    def root(self) -> MibNode:
        return self._root

    def node_at(self, oid: OidLike) -> MibNode:
        oid = Oid(oid)
        node = self._by_oid.get(oid)
        if node is None:
            raise MibError(f"no MIB node at {oid}")
        return node

    def contains_oid(self, oid: OidLike) -> bool:
        return Oid(oid) in self._by_oid

    def resolve(self, name_path: str) -> MibNode:
        """Resolve a dotted name path such as ``mgmt.mib.ip.ipAddrTable``."""
        parts = [part for part in name_path.split(".") if part]
        if not parts:
            raise MibError("empty name path")
        node = self._roots_by_name.get(parts[0])
        if node is None:
            raise MibError(
                f"unknown name-path root {parts[0]!r} in {name_path!r} "
                f"(known roots: {sorted(self._roots_by_name)})"
            )
        for part in parts[1:]:
            node = self._child_named(node, part)
            if node is None:
                raise MibError(f"no member {part!r} in path {name_path!r}")
        return node

    def knows(self, name_path: str) -> bool:
        """True if :meth:`resolve` would succeed on *name_path*."""
        try:
            self.resolve(name_path)
        except MibError:
            return False
        return True

    @staticmethod
    def _child_named(node: MibNode, name: str) -> Optional[MibNode]:
        for child in node.children.values():
            if name == child.name or name in child.aliases:
                return child
        return None

    def walk(self, prefix: OidLike = ()) -> Iterator[MibNode]:
        """Walk all nodes under *prefix* (default: whole tree) in OID order."""
        start = self._by_oid.get(Oid(prefix))
        if start is None:
            return iter(())
        return start.walk()

    def leaves(self, prefix: OidLike = ()) -> Iterator[MibNode]:
        return (node for node in self.walk(prefix) if node.is_leaf)

    def next_leaf(self, oid: OidLike) -> Optional[MibNode]:
        """The first leaf node strictly after *oid* in lexicographic order.

        This is the registration-tree analogue of SNMP get-next.
        """
        oid = Oid(oid)
        best: Optional[MibNode] = None
        for candidate_oid, node in self._by_oid.items():
            if not node.is_leaf or candidate_oid <= oid:
                continue
            if best is None or candidate_oid < best.oid:
                best = node
        return best

    def __len__(self) -> int:
        return len(self._by_oid)
