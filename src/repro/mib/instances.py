"""Per-agent MIB variable bindings with SNMP get / get-next / set semantics.

An :class:`InstanceStore` binds *instance OIDs* (object OID + instance
suffix, ``.0`` for scalars, index components for table rows) to values,
validated against the object's ASN.1 syntax.  The store only accepts
instances whose object falls inside the agent's *supported* view, which is
how a network element's ``supports`` clause becomes operational.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.asn1.types import Asn1Module
from repro.errors import MibError
from repro.mib.oid import Oid, OidLike
from repro.mib.tree import Access, MibNode, MibTree
from repro.mib.view import MibView


class InstanceStore:
    """Sorted map of instance OID to value for one agent.

    Parameters
    ----------
    tree:
        The MIB registration tree (object definitions).
    view:
        The subset of the MIB this agent supports; instances outside the
        view are rejected.  Defaults to the full tree.
    module:
        Optional ASN.1 module for resolving named types during validation.
    """

    def __init__(
        self,
        tree: MibTree,
        view: Optional[MibView] = None,
        module: Optional[Asn1Module] = None,
    ):
        self._tree = tree
        self._view = view if view is not None else MibView.full(tree)
        self._module = module or Asn1Module()
        self._values: Dict[Oid, object] = {}
        self._sorted_cache: Optional[List[Oid]] = None

    @property
    def view(self) -> MibView:
        return self._view

    # ------------------------------------------------------------------
    # Object resolution.
    # ------------------------------------------------------------------
    def object_for_instance(self, instance: OidLike) -> MibNode:
        """Find the leaf object definition that *instance* instantiates."""
        instance = Oid(instance)
        oid = instance
        while len(oid):
            if self._tree.contains_oid(oid):
                node = self._tree.node_at(oid)
                if node.is_leaf and node.syntax is not None:
                    return node
                break
            oid = oid.parent
        raise MibError(f"no leaf object for instance {instance}")

    # ------------------------------------------------------------------
    # Mutation.
    # ------------------------------------------------------------------
    def bind(self, instance: OidLike, value: object, validate: bool = True) -> None:
        """Create or replace the binding for *instance*."""
        instance = Oid(instance)
        node = self.object_for_instance(instance)
        if not self._view.covers_oid(node.oid):
            raise MibError(f"object {node.name} is outside the supported view")
        if validate and node.syntax is not None:
            self._module.validate(value, node.syntax, path=node.name)
        self._values[instance] = value
        self._sorted_cache = None

    def set(self, instance: OidLike, value: object) -> None:
        """SNMP set: requires the object be writable and already supported."""
        node = self.object_for_instance(instance)
        if not node.access.allows_write():
            raise MibError(f"object {node.name} is not writable ({node.access.value})")
        self.bind(instance, value)

    def unbind(self, instance: OidLike) -> None:
        instance = Oid(instance)
        if instance not in self._values:
            raise MibError(f"no binding for {instance}")
        del self._values[instance]
        self._sorted_cache = None

    # ------------------------------------------------------------------
    # Retrieval.
    # ------------------------------------------------------------------
    def get(self, instance: OidLike) -> object:
        instance = Oid(instance)
        if instance not in self._values:
            raise MibError(f"no such instance {instance}")
        return self._values[instance]

    def contains(self, instance: OidLike) -> bool:
        return Oid(instance) in self._values

    def _sorted_instances(self) -> List[Oid]:
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._values)
        return self._sorted_cache

    def get_next(self, oid: OidLike) -> Optional[Tuple[Oid, object]]:
        """The first binding with instance OID strictly greater than *oid*.

        This is SNMP get-next / the basis of table walks.  Returns None when
        *oid* is at or past the end of the MIB view.
        """
        oid = Oid(oid)
        instances = self._sorted_instances()
        low, high = 0, len(instances)
        while low < high:
            mid = (low + high) // 2
            if instances[mid] <= oid:
                low = mid + 1
            else:
                high = mid
        if low == len(instances):
            return None
        found = instances[low]
        return found, self._values[found]

    def walk(self, prefix: OidLike = ()) -> Iterator[Tuple[Oid, object]]:
        """Iterate bindings under *prefix* in lexicographic order."""
        prefix = Oid(prefix)
        for instance in self._sorted_instances():
            if instance.starts_with(prefix):
                yield instance, self._values[instance]

    def __len__(self) -> int:
        return len(self._values)

    # ------------------------------------------------------------------
    # Convenience initialisation.
    # ------------------------------------------------------------------
    def populate_defaults(self) -> int:
        """Bind a plausible default for every scalar leaf in the view.

        Table columns are skipped (they need row indices).  Returns the
        number of bindings created.  Used by the simulator to give agents a
        live database without hand-writing hundreds of values.
        """
        from repro.asn1.nodes import (
            IntegerType,
            ObjectIdentifierType,
            OctetStringType,
            TaggedType,
        )

        created = 0
        for leaf in self._view.leaves():
            if leaf.syntax is None or self._is_table_column(leaf):
                continue
            instance = leaf.oid.child(0)
            if instance in self._values:
                continue
            syntax = leaf.syntax
            while isinstance(syntax, TaggedType):
                syntax = syntax.inner
            if isinstance(syntax, IntegerType):
                value: object = max(0, syntax.minimum or 0)
            elif isinstance(syntax, OctetStringType):
                size = syntax.min_size or 0
                value = b"\x00" * size if size else b""
            elif isinstance(syntax, ObjectIdentifierType):
                value = (1, 3, 6, 1)
            else:
                continue
            self.bind(instance, value)
            created += 1
        return created

    def _is_table_column(self, leaf: MibNode) -> bool:
        """A leaf is a table column if an ancestor is a table entry node."""
        from repro.asn1.nodes import SequenceOfType

        node = leaf.parent
        while node is not None:
            if node.syntax is not None and isinstance(node.syntax, SequenceOfType):
                return True
            node = node.parent
        return False
