"""The Internet-standard MIB (MIB-I, RFC 1066) as a :class:`MibTree`.

This is the management database the paper's examples reference with paths
such as ``mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr``.  Table-entry
nodes carry the capitalised ASN.1 type name as an alias so the paper's
spelling resolves alongside the RFC's node names.

Access modes follow RFC 1066; descriptions are abbreviated.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.asn1.nodes import Asn1Type, NamedField, SequenceOfType, SequenceType
from repro.asn1.types import Asn1Module, STANDARD_APPLICATION_TYPES
from repro.asn1.nodes import IntegerType, ObjectIdentifierType, OctetStringType
from repro.mib.oid import MGMT, Oid
from repro.mib.tree import Access, MibTree

# Shorthand syntax constructors.
_INT = IntegerType()
_STR = OctetStringType()
_OID = ObjectIdentifierType()
_IPADDR = STANDARD_APPLICATION_TYPES["IpAddress"]
_COUNTER = STANDARD_APPLICATION_TYPES["Counter"]
_GAUGE = STANDARD_APPLICATION_TYPES["Gauge"]
_TICKS = STANDARD_APPLICATION_TYPES["TimeTicks"]

_RO = Access.READ_ONLY
_RW = Access.READ_WRITE

#: Leaf definitions per group: (name, sub-id, syntax, access).
_Leaf = Tuple[str, int, Asn1Type, Access]

_SYSTEM: Sequence[_Leaf] = (
    ("sysDescr", 1, _STR, _RO),
    ("sysObjectID", 2, _OID, _RO),
    ("sysUpTime", 3, _TICKS, _RO),
)

_IF_ENTRY: Sequence[_Leaf] = (
    ("ifIndex", 1, _INT, _RO),
    ("ifDescr", 2, _STR, _RO),
    ("ifType", 3, _INT, _RO),
    ("ifMtu", 4, _INT, _RO),
    ("ifSpeed", 5, _GAUGE, _RO),
    ("ifPhysAddress", 6, _STR, _RO),
    ("ifAdminStatus", 7, _INT, _RW),
    ("ifOperStatus", 8, _INT, _RO),
    ("ifLastChange", 9, _TICKS, _RO),
    ("ifInOctets", 10, _COUNTER, _RO),
    ("ifInUcastPkts", 11, _COUNTER, _RO),
    ("ifInNUcastPkts", 12, _COUNTER, _RO),
    ("ifInDiscards", 13, _COUNTER, _RO),
    ("ifInErrors", 14, _COUNTER, _RO),
    ("ifInUnknownProtos", 15, _COUNTER, _RO),
    ("ifOutOctets", 16, _COUNTER, _RO),
    ("ifOutUcastPkts", 17, _COUNTER, _RO),
    ("ifOutNUcastPkts", 18, _COUNTER, _RO),
    ("ifOutDiscards", 19, _COUNTER, _RO),
    ("ifOutErrors", 20, _COUNTER, _RO),
    ("ifOutQLen", 21, _GAUGE, _RO),
)

_AT_ENTRY: Sequence[_Leaf] = (
    ("atIfIndex", 1, _INT, _RW),
    ("atPhysAddress", 2, _STR, _RW),
    ("atNetAddress", 3, _IPADDR, _RW),
)

_IP_SCALARS: Sequence[_Leaf] = (
    ("ipForwarding", 1, _INT, _RW),
    ("ipDefaultTTL", 2, _INT, _RW),
    ("ipInReceives", 3, _COUNTER, _RO),
    ("ipInHdrErrors", 4, _COUNTER, _RO),
    ("ipInAddrErrors", 5, _COUNTER, _RO),
    ("ipForwDatagrams", 6, _COUNTER, _RO),
    ("ipInUnknownProtos", 7, _COUNTER, _RO),
    ("ipInDiscards", 8, _COUNTER, _RO),
    ("ipInDelivers", 9, _COUNTER, _RO),
    ("ipOutRequests", 10, _COUNTER, _RO),
    ("ipOutDiscards", 11, _COUNTER, _RO),
    ("ipOutNoRoutes", 12, _COUNTER, _RO),
    ("ipReasmTimeout", 13, _INT, _RO),
    ("ipReasmReqds", 14, _COUNTER, _RO),
    ("ipReasmOKs", 15, _COUNTER, _RO),
    ("ipReasmFails", 16, _COUNTER, _RO),
    ("ipFragOKs", 17, _COUNTER, _RO),
    ("ipFragFails", 18, _COUNTER, _RO),
    ("ipFragCreates", 19, _COUNTER, _RO),
)

_IP_ADDR_ENTRY: Sequence[_Leaf] = (
    ("ipAdEntAddr", 1, _IPADDR, _RO),
    ("ipAdEntIfIndex", 2, _INT, _RO),
    ("ipAdEntNetMask", 3, _IPADDR, _RO),
    ("ipAdEntBcastAddr", 4, _INT, _RO),
)

_IP_ROUTE_ENTRY: Sequence[_Leaf] = (
    ("ipRouteDest", 1, _IPADDR, _RW),
    ("ipRouteIfIndex", 2, _INT, _RW),
    ("ipRouteMetric1", 3, _INT, _RW),
    ("ipRouteMetric2", 4, _INT, _RW),
    ("ipRouteMetric3", 5, _INT, _RW),
    ("ipRouteMetric4", 6, _INT, _RW),
    ("ipRouteNextHop", 7, _IPADDR, _RW),
    ("ipRouteType", 8, _INT, _RW),
    ("ipRouteProto", 9, _INT, _RO),
    ("ipRouteAge", 10, _INT, _RW),
)

_ICMP_NAMES = (
    "icmpInMsgs", "icmpInErrors", "icmpInDestUnreachs", "icmpInTimeExcds",
    "icmpInParmProbs", "icmpInSrcQuenchs", "icmpInRedirects", "icmpInEchos",
    "icmpInEchoReps", "icmpInTimestamps", "icmpInTimestampReps",
    "icmpInAddrMasks", "icmpInAddrMaskReps", "icmpOutMsgs", "icmpOutErrors",
    "icmpOutDestUnreachs", "icmpOutTimeExcds", "icmpOutParmProbs",
    "icmpOutSrcQuenchs", "icmpOutRedirects", "icmpOutEchos",
    "icmpOutEchoReps", "icmpOutTimestamps", "icmpOutTimestampReps",
    "icmpOutAddrMasks", "icmpOutAddrMaskReps",
)
_ICMP: Sequence[_Leaf] = tuple(
    (name, index + 1, _COUNTER, _RO) for index, name in enumerate(_ICMP_NAMES)
)

_TCP_SCALARS: Sequence[_Leaf] = (
    ("tcpRtoAlgorithm", 1, _INT, _RO),
    ("tcpRtoMin", 2, _INT, _RO),
    ("tcpRtoMax", 3, _INT, _RO),
    ("tcpMaxConn", 4, _INT, _RO),
    ("tcpActiveOpens", 5, _COUNTER, _RO),
    ("tcpPassiveOpens", 6, _COUNTER, _RO),
    ("tcpAttemptFails", 7, _COUNTER, _RO),
    ("tcpEstabResets", 8, _COUNTER, _RO),
    ("tcpCurrEstab", 9, _GAUGE, _RO),
    ("tcpInSegs", 10, _COUNTER, _RO),
    ("tcpOutSegs", 11, _COUNTER, _RO),
    ("tcpRetransSegs", 12, _COUNTER, _RO),
)

_TCP_CONN_ENTRY: Sequence[_Leaf] = (
    ("tcpConnState", 1, _INT, _RO),
    ("tcpConnLocalAddress", 2, _IPADDR, _RO),
    ("tcpConnLocalPort", 3, _INT, _RO),
    ("tcpConnRemAddress", 4, _IPADDR, _RO),
    ("tcpConnRemPort", 5, _INT, _RO),
)

_UDP: Sequence[_Leaf] = (
    ("udpInDatagrams", 1, _COUNTER, _RO),
    ("udpNoPorts", 2, _COUNTER, _RO),
    ("udpInErrors", 3, _COUNTER, _RO),
    ("udpOutDatagrams", 4, _COUNTER, _RO),
)

_EGP_SCALARS: Sequence[_Leaf] = (
    ("egpInMsgs", 1, _COUNTER, _RO),
    ("egpInErrors", 2, _COUNTER, _RO),
    ("egpOutMsgs", 3, _COUNTER, _RO),
    ("egpOutErrors", 4, _COUNTER, _RO),
)

_EGP_NEIGH_ENTRY: Sequence[_Leaf] = (
    ("egpNeighState", 1, _INT, _RO),
    ("egpNeighAddr", 2, _IPADDR, _RO),
)

#: The eight MIB-I groups and their sub-ids under mib(1).
GROUP_NAMES = ("system", "interfaces", "at", "ip", "icmp", "tcp", "udp", "egp")


def _entry_type(leaves: Sequence[_Leaf]) -> SequenceType:
    return SequenceType(
        fields=tuple(NamedField(name, syntax) for name, _sub, syntax, _acc in leaves)
    )


def _add_leaves(tree: MibTree, parent: Oid, leaves: Sequence[_Leaf]) -> None:
    for name, sub_id, syntax, access in leaves:
        tree.register(name, parent.child(sub_id), syntax=syntax, access=access)


def _add_table(
    tree: MibTree,
    parent: Oid,
    table_name: str,
    table_sub: int,
    entry_name: str,
    entry_alias: str,
    leaves: Sequence[_Leaf],
    module: Optional[Asn1Module] = None,
) -> None:
    entry_type = _entry_type(leaves)
    table_oid = parent.child(table_sub)
    tree.register(
        table_name,
        table_oid,
        syntax=SequenceOfType(element=entry_type),
        access=_RO,
    )
    entry_oid = table_oid.child(1)
    tree.register(
        entry_name, entry_oid, syntax=entry_type, access=_RO, aliases=(entry_alias,)
    )
    _add_leaves(tree, entry_oid, leaves)
    if module is not None and entry_alias not in module:
        module.define(entry_alias, entry_type)


def build_mib1(module: Optional[Asn1Module] = None) -> MibTree:
    """Build the RFC 1066 MIB-I tree.

    When *module* is given, the table-entry SEQUENCE types (``IpAddrEntry``
    etc.) are also defined there so NMSL type references resolve.
    """
    tree = MibTree()
    tree.register("iso", "1")
    tree.register("org", "1.3")
    tree.register("dod", "1.3.6")
    tree.register("internet", "1.3.6.1")
    tree.register("directory", "1.3.6.1.1")
    tree.register("mgmt", MGMT)
    tree.register("experimental", "1.3.6.1.3")
    tree.register("private", "1.3.6.1.4")
    tree.register("enterprises", "1.3.6.1.4.1")
    mib = MGMT.child(1)
    tree.register("mib", mib)

    for index, group in enumerate(GROUP_NAMES, start=1):
        tree.register(group, mib.child(index))

    _add_leaves(tree, mib.child(1), _SYSTEM)

    interfaces = mib.child(2)
    tree.register("ifNumber", interfaces.child(1), syntax=_INT, access=_RO)
    _add_table(tree, interfaces, "ifTable", 2, "ifEntry", "IfEntry", _IF_ENTRY, module)

    _add_table(tree, mib.child(3), "atTable", 1, "atEntry", "AtEntry", _AT_ENTRY, module)

    ip = mib.child(4)
    _add_leaves(tree, ip, _IP_SCALARS)
    _add_table(
        tree, ip, "ipAddrTable", 20, "ipAddrEntry", "IpAddrEntry", _IP_ADDR_ENTRY, module
    )
    _add_table(
        tree,
        ip,
        "ipRoutingTable",
        21,
        "ipRouteEntry",
        "IpRouteEntry",
        _IP_ROUTE_ENTRY,
        module,
    )

    _add_leaves(tree, mib.child(5), _ICMP)

    tcp = mib.child(6)
    _add_leaves(tree, tcp, _TCP_SCALARS)
    _add_table(
        tree, tcp, "tcpConnTable", 13, "tcpConnEntry", "TcpConnEntry", _TCP_CONN_ENTRY, module
    )

    _add_leaves(tree, mib.child(7), _UDP)

    egp = mib.child(8)
    _add_leaves(tree, egp, _EGP_SCALARS)
    _add_table(
        tree, egp, "egpNeighTable", 5, "egpNeighEntry", "EgpNeighEntry", _EGP_NEIGH_ENTRY, module
    )

    # Name-path roots the paper's specifications use.
    tree.add_root_alias("iso", "1")
    tree.add_root_alias("internet", "1.3.6.1")
    tree.add_root_alias("mgmt", MGMT)
    return tree
