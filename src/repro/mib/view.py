"""MIB views: sets of subtrees named by dotted paths.

``supports`` clauses (network elements, agent processes) and ``exports``
clauses (processes, domains) both denote *portions of the MIB* as lists of
name paths, e.g. ``mgmt.mib.ip`` (a whole group) or
``mgmt.mib.ip.ipAddrTable.IpAddrEntry`` (one table entry).  A
:class:`MibView` holds such a set, normalised against a tree, and answers
coverage questions: does this view contain that variable / subtree?
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.errors import MibError
from repro.mib.oid import Oid
from repro.mib.tree import MibNode, MibTree


class MibView:
    """An immutable set of MIB subtrees, resolved against a tree.

    A view *covers* a node if the node lies inside any of the view's
    subtrees.  Views support subset tests, union and intersection — the
    operations the consistency checker needs to compare ``supports``,
    ``exports`` and query requests.
    """

    def __init__(self, tree: MibTree, name_paths: Iterable[str] = ()):
        self._tree = tree
        roots = [(path, tree.resolve(path)) for path in name_paths]
        # Normalise: drop a subtree that lies strictly inside another, and
        # deduplicate identical OIDs.
        kept: list[Tuple[str, MibNode]] = []
        seen: set = set()
        for path, node in roots:
            if node.oid in seen:
                continue
            covered = any(
                node.oid.starts_with(other.oid) and node.oid != other.oid
                for _path, other in roots
            )
            if covered:
                continue
            seen.add(node.oid)
            kept.append((path, node))
        self._roots: Tuple[Tuple[str, MibNode], ...] = tuple(kept)

    @classmethod
    def full(cls, tree: MibTree) -> "MibView":
        """The view covering the entire standard MIB (``mgmt.mib``)."""
        return cls(tree, ("mgmt.mib",))

    @classmethod
    def empty(cls, tree: MibTree) -> "MibView":
        return cls(tree, ())

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def tree(self) -> MibTree:
        return self._tree

    def paths(self) -> Tuple[str, ...]:
        return tuple(path for path, _node in self._roots)

    def root_oids(self) -> FrozenSet[Oid]:
        return frozenset(node.oid for _path, node in self._roots)

    def is_empty(self) -> bool:
        return not self._roots

    def __bool__(self) -> bool:
        return bool(self._roots)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MibView):
            return NotImplemented
        return self.root_oids() == other.root_oids()

    def __hash__(self) -> int:
        return hash(self.root_oids())

    def __repr__(self) -> str:
        return f"MibView({sorted(self.paths())})"

    # ------------------------------------------------------------------
    # Coverage.
    # ------------------------------------------------------------------
    def covers_oid(self, oid) -> bool:
        oid = Oid(oid)
        return any(oid.starts_with(node.oid) for _path, node in self._roots)

    def covers_path(self, name_path: str) -> bool:
        try:
            node = self._tree.resolve(name_path)
        except MibError:
            return False
        return self.covers_oid(node.oid)

    def covers_view(self, other: "MibView") -> bool:
        """True if every subtree of *other* lies inside this view."""
        return all(self.covers_oid(oid) for oid in other.root_oids())

    # ------------------------------------------------------------------
    # Set algebra.
    # ------------------------------------------------------------------
    def union(self, other: "MibView") -> "MibView":
        return MibView(self._tree, self.paths() + other.paths())

    def intersection(self, other: "MibView") -> "MibView":
        """Subtree-wise intersection (deeper prefix wins)."""
        paths = []
        for path, node in self._roots:
            for other_path, other_node in other._roots:
                if node.oid.starts_with(other_node.oid):
                    paths.append(path)
                elif other_node.oid.starts_with(node.oid):
                    paths.append(other_path)
        return MibView(self._tree, paths)

    def leaves(self) -> Iterator[MibNode]:
        """All leaf variables covered by this view, in OID order."""
        emitted: set = set()
        for _path, node in sorted(self._roots, key=lambda item: item[1].oid):
            for leaf in self._tree.walk(node.oid):
                if leaf.is_leaf and leaf.oid not in emitted:
                    emitted.add(leaf.oid)
                    yield leaf

    def variable_count(self) -> int:
        return sum(1 for _leaf in self.leaves())

    def node_for(self, name_path: str) -> Optional[MibNode]:
        """Resolve *name_path* if it is covered by this view, else None."""
        try:
            node = self._tree.resolve(name_path)
        except MibError:
            return None
        if not self.covers_oid(node.oid):
            return None
        return node
