"""MIB substrate: object identifiers, the MIB tree, and the IETF MIB-I.

The paper's specifications name management data with dotted paths rooted at
``mgmt.mib`` (the RFC 1066 Internet-standard MIB).  This package provides:

* :class:`~repro.mib.oid.Oid` — immutable object identifiers;
* :class:`~repro.mib.tree.MibTree` / :class:`~repro.mib.tree.MibNode` — the
  registration tree, resolvable both by OID and by dotted name path;
* :func:`~repro.mib.mib1.build_mib1` — the full RFC 1066 MIB-I definition
  (system, interfaces, at, ip, icmp, tcp, udp, egp groups);
* :class:`~repro.mib.view.MibView` — subtree views used by ``supports`` and
  ``exports`` clauses;
* :class:`~repro.mib.instances.InstanceStore` — per-agent variable bindings
  with get / get-next / set semantics for the SNMP substrate.
"""

from repro.mib.oid import Oid
from repro.mib.tree import Access, MibNode, MibTree
from repro.mib.mib1 import build_mib1
from repro.mib.view import MibView
from repro.mib.instances import InstanceStore

__all__ = [
    "Access",
    "InstanceStore",
    "MibNode",
    "MibTree",
    "MibView",
    "Oid",
    "build_mib1",
]
