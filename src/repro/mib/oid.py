"""Object identifiers.

An :class:`Oid` is an immutable sequence of non-negative integers with value
semantics, total ordering in SNMP lexicographic order (the order get-next
walks), and prefix tests.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, Tuple, Union

from repro.errors import OidError

OidLike = Union["Oid", str, Iterable[int]]


@total_ordering
class Oid:
    """An ASN.1 object identifier, e.g. ``Oid("1.3.6.1.2.1")``.

    Accepts a dotted string, an iterable of ints, or another Oid.  Instances
    are immutable and hashable; ``+`` appends components or another Oid.
    """

    __slots__ = ("_components",)

    def __init__(self, value: OidLike = ()):
        if isinstance(value, Oid):
            self._components: Tuple[int, ...] = value._components
            return
        if isinstance(value, str):
            value = self._parse(value)
        components = tuple(int(item) for item in value)
        for component in components:
            if component < 0:
                raise OidError(f"negative OID component in {components}")
        self._components = components

    @staticmethod
    def _parse(text: str) -> Tuple[int, ...]:
        text = text.strip().strip(".")
        if not text:
            return ()
        try:
            return tuple(int(part) for part in text.split("."))
        except ValueError as exc:
            raise OidError(f"malformed OID string {text!r}") from exc

    # ------------------------------------------------------------------
    # Value semantics.
    # ------------------------------------------------------------------
    @property
    def components(self) -> Tuple[int, ...]:
        return self._components

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    def __getitem__(self, index):
        result = self._components[index]
        if isinstance(index, slice):
            return Oid(result)
        return result

    def __hash__(self) -> int:
        return hash(self._components)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Oid):
            return self._components == other._components
        if isinstance(other, (tuple, list)):
            return self._components == tuple(other)
        return NotImplemented

    def __lt__(self, other: "Oid") -> bool:
        if not isinstance(other, Oid):
            return NotImplemented
        return self._components < other._components

    def __add__(self, suffix: OidLike) -> "Oid":
        return Oid(self._components + Oid(suffix)._components)

    def __str__(self) -> str:
        return ".".join(str(component) for component in self._components)

    def __repr__(self) -> str:
        return f"Oid({str(self)!r})"

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    def child(self, component: int) -> "Oid":
        """Return this OID extended by one component."""
        if component < 0:
            raise OidError("negative OID component")
        return Oid(self._components + (component,))

    @property
    def parent(self) -> "Oid":
        if not self._components:
            raise OidError("the empty OID has no parent")
        return Oid(self._components[:-1])

    def starts_with(self, prefix: OidLike) -> bool:
        """True if *prefix* is a (non-strict) prefix of this OID."""
        prefix_components = Oid(prefix)._components
        return self._components[: len(prefix_components)] == prefix_components

    def is_prefix_of(self, other: OidLike) -> bool:
        return Oid(other).starts_with(self)

    def strip_prefix(self, prefix: OidLike) -> "Oid":
        """Remove *prefix* from the front; raises if it is not a prefix."""
        prefix_oid = Oid(prefix)
        if not self.starts_with(prefix_oid):
            raise OidError(f"{self} does not start with {prefix_oid}")
        return Oid(self._components[len(prefix_oid) :])


#: Well-known roots.
ISO = Oid("1")
INTERNET = Oid("1.3.6.1")
MGMT = Oid("1.3.6.1.2")
MIB = Oid("1.3.6.1.2.1")
ENTERPRISES = Oid("1.3.6.1.4.1")
