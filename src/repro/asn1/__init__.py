"""ASN.1 substrate (ISO 8824 subset) used by NMSL type specifications.

NMSL type specifications embed ASN.1 type bodies (paper Figure 4.1/4.2), and
the SNMP substrate uses BER (the ASN.1 Basic Encoding Rules) on the wire.
This package implements the subset of ASN.1 needed by the IETF MIB-I and the
paper's examples:

* primitive types: ``INTEGER``, ``OCTET STRING``, ``NULL``,
  ``OBJECT IDENTIFIER``, and the SNMP application types (``IpAddress``,
  ``Counter``, ``Gauge``, ``TimeTicks``, ``Opaque``);
* constructed types: ``SEQUENCE { ... }``, ``SEQUENCE OF``, ``CHOICE``;
* tagged types (``[APPLICATION n] IMPLICIT ...``), named-number lists and
  simple size/range constraints;
* type references resolved through an :class:`~repro.asn1.types.Asn1Module`;
* a BER encoder/decoder for values of these types.

The paper's own examples write ``SEQUENCE of`` in lower case and delimit the
field list with parentheses; the lexer/parser accept both that spelling and
standard ASN.1.
"""

from repro.asn1.lexer import Asn1Lexer, tokenize
from repro.asn1.nodes import (
    Asn1Type,
    ChoiceType,
    IntegerType,
    NamedField,
    NullType,
    ObjectIdentifierType,
    OctetStringType,
    SequenceOfType,
    SequenceType,
    TaggedType,
    TypeRef,
)
from repro.asn1.parser import Asn1Parser, parse_type
from repro.asn1.types import Asn1Module, STANDARD_APPLICATION_TYPES
from repro.asn1.ber import ber_decode, ber_encode, Tag, TagClass

__all__ = [
    "Asn1Lexer",
    "Asn1Module",
    "Asn1Parser",
    "Asn1Type",
    "ChoiceType",
    "IntegerType",
    "NamedField",
    "NullType",
    "ObjectIdentifierType",
    "OctetStringType",
    "STANDARD_APPLICATION_TYPES",
    "SequenceOfType",
    "SequenceType",
    "Tag",
    "TagClass",
    "TaggedType",
    "TypeRef",
    "ber_decode",
    "ber_encode",
    "parse_type",
    "tokenize",
]
