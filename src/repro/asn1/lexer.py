"""Tokenizer for the ASN.1 subset.

ASN.1 tokens are simple: identifiers (lower-case initial), type references
(upper-case initial), numbers, a handful of multi-character operators
(``::=``, ``..``), single-character punctuation, and ``--`` comments that run
to the next ``--`` or end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import Asn1Error, SourceLocation

# Token kinds.
IDENT = "IDENT"  # begins lower-case: field and value names
TYPEREF = "TYPEREF"  # begins upper-case: type references and keywords
NUMBER = "NUMBER"
PUNCT = "PUNCT"  # one of  { } ( ) [ ] , ; | and the multi-char ::= ..
EOF = "EOF"

_PUNCT_CHARS = "{}()[],;|"


@dataclass(frozen=True)
class Asn1Token:
    """A single lexical token with its source location."""

    kind: str
    text: str
    location: SourceLocation

    def matches(self, kind: str, text: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return text is None or self.text == text


class Asn1Lexer:
    """Streaming tokenizer over ASN.1 source text."""

    def __init__(self, text: str, filename: str = "<asn1>"):
        self._text = text
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self._filename, self._line, self._col)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._text):
            return ""
        return self._text[index]

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            ch = self._peek()
            if ch.isspace():
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                self._advance(2)
                # A comment ends at the next "--" or at end of line.
                while self._pos < len(self._text):
                    if self._peek() == "\n":
                        break
                    if self._peek() == "-" and self._peek(1) == "-":
                        self._advance(2)
                        break
                    self._advance()
            else:
                return

    def tokens(self) -> Iterator[Asn1Token]:
        """Yield every token in the input, ending with a single EOF token."""
        while True:
            self._skip_whitespace_and_comments()
            location = self._location()
            ch = self._peek()
            if not ch:
                yield Asn1Token(EOF, "", location)
                return
            if ch == ":" and self._peek(1) == ":" and self._peek(2) == "=":
                self._advance(3)
                yield Asn1Token(PUNCT, "::=", location)
            elif ch == "." and self._peek(1) == ".":
                self._advance(2)
                yield Asn1Token(PUNCT, "..", location)
            elif ch in _PUNCT_CHARS:
                self._advance()
                yield Asn1Token(PUNCT, ch, location)
            elif ch.isdigit() or (ch == "-" and self._peek(1).isdigit()):
                yield self._lex_number(location)
            elif ch.isalpha():
                yield self._lex_word(location)
            else:
                raise Asn1Error(f"unexpected character {ch!r}", location)

    def _lex_number(self, location: SourceLocation) -> Asn1Token:
        start = self._pos
        if self._peek() == "-":
            self._advance()
        while self._peek().isdigit():
            self._advance()
        return Asn1Token(NUMBER, self._text[start : self._pos], location)

    def _lex_word(self, location: SourceLocation) -> Asn1Token:
        start = self._pos
        while self._peek() and (self._peek().isalnum() or self._peek() in "-_"):
            # ASN.1 identifiers may contain hyphens but not end with one and
            # not contain "--" (that starts a comment).
            if self._peek() == "-" and self._peek(1) == "-":
                break
            self._advance()
        word = self._text[start : self._pos]
        if word[0].isupper():
            return Asn1Token(TYPEREF, word, location)
        return Asn1Token(IDENT, word, location)


def tokenize(text: str, filename: str = "<asn1>") -> List[Asn1Token]:
    """Tokenize *text* fully, returning a list ending with the EOF token."""
    return list(Asn1Lexer(text, filename).tokens())
