"""Named-type registry (a minimal ASN.1 "module") and value validation.

An :class:`Asn1Module` maps type names to parsed types, resolves
:class:`~repro.asn1.nodes.TypeRef` nodes, detects unresolved and circular
references, and validates Python values against types.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.asn1.nodes import (
    Asn1Type,
    ChoiceType,
    IntegerType,
    NullType,
    ObjectIdentifierType,
    OctetStringType,
    SequenceOfType,
    SequenceType,
    TaggedType,
    TypeRef,
    references,
)
from repro.asn1.parser import parse_type
from repro.errors import Asn1Error


def _application(number: int, inner: Asn1Type) -> TaggedType:
    return TaggedType(tag_class="APPLICATION", tag_number=number, inner=inner)


#: The SNMP / RFC 1065 application-wide types, predeclared in every module.
STANDARD_APPLICATION_TYPES: Mapping[str, Asn1Type] = {
    "IpAddress": _application(0, OctetStringType(min_size=4, max_size=4)),
    "NetworkAddress": _application(0, OctetStringType(min_size=4, max_size=4)),
    "Counter": _application(1, IntegerType(minimum=0, maximum=2**32 - 1)),
    "Gauge": _application(2, IntegerType(minimum=0, maximum=2**32 - 1)),
    "TimeTicks": _application(3, IntegerType(minimum=0, maximum=2**32 - 1)),
    "Opaque": _application(4, OctetStringType()),
    "DisplayString": OctetStringType(),
    "PhysAddress": OctetStringType(),
    "ObjectName": ObjectIdentifierType(),
}


class Asn1Module:
    """A registry of named ASN.1 types with reference resolution.

    Parameters
    ----------
    include_standard:
        When true (default) the SNMP application-wide types (``IpAddress``,
        ``Counter``, ...) are predeclared.
    """

    def __init__(self, include_standard: bool = True):
        self._types: Dict[str, Asn1Type] = {}
        if include_standard:
            self._types.update(STANDARD_APPLICATION_TYPES)

    # ------------------------------------------------------------------
    # Registration and lookup.
    # ------------------------------------------------------------------
    def define(self, name: str, type_: Asn1Type, replace: bool = False) -> None:
        """Register *type_* under *name*.

        Raises :class:`~repro.errors.Asn1Error` on redefinition unless
        *replace* is set.
        """
        if name in self._types and not replace:
            raise Asn1Error(f"type {name!r} is already defined")
        self._types[name] = type_

    def define_text(self, name: str, text: str, replace: bool = False) -> Asn1Type:
        """Parse *text* as a type and register it under *name*."""
        parsed = parse_type(text)
        self.define(name, parsed, replace=replace)
        return parsed

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __len__(self) -> int:
        return len(self._types)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._types)

    def lookup(self, name: str) -> Asn1Type:
        if name not in self._types:
            raise Asn1Error(f"unknown type {name!r}")
        return self._types[name]

    def resolve(self, type_: Asn1Type, _seen: Optional[Set[str]] = None) -> Asn1Type:
        """Follow TypeRef chains until a structural type is reached.

        Only the *outermost* references are followed; nested fields keep
        their references (resolve lazily via :meth:`validate`).  Detects
        reference cycles.
        """
        seen = _seen if _seen is not None else set()
        while isinstance(type_, TypeRef):
            if type_.name in seen:
                chain = " -> ".join(sorted(seen) + [type_.name])
                raise Asn1Error(f"circular type reference: {chain}")
            seen.add(type_.name)
            type_ = self.lookup(type_.name)
        return type_

    def undefined_references(self, roots: Optional[Iterable[str]] = None) -> Set[str]:
        """Names referenced (from *roots* or everywhere) but never defined."""
        missing: Set[str] = set()
        selected = roots if roots is not None else self._types.keys()
        for name in selected:
            for ref_name in references(self.lookup(name)):
                if ref_name not in self._types:
                    missing.add(ref_name)
        return missing

    # ------------------------------------------------------------------
    # Value validation.
    # ------------------------------------------------------------------
    def validate(self, value: object, type_: Asn1Type, path: str = "value") -> None:
        """Check that *value* conforms to *type_*.

        Raises :class:`~repro.errors.Asn1Error` naming the offending *path*
        on the first mismatch.
        """
        type_ = self.resolve(type_)
        if isinstance(type_, TaggedType):
            self.validate(value, type_.inner, path)
        elif isinstance(type_, IntegerType):
            self._validate_integer(value, type_, path)
        elif isinstance(type_, OctetStringType):
            self._validate_octets(value, type_, path)
        elif isinstance(type_, NullType):
            if value is not None:
                raise Asn1Error(f"{path}: NULL value must be None")
        elif isinstance(type_, ObjectIdentifierType):
            self._validate_oid(value, path)
        elif isinstance(type_, SequenceType):
            self._validate_sequence(value, type_, path)
        elif isinstance(type_, SequenceOfType):
            if not isinstance(value, (list, tuple)):
                raise Asn1Error(f"{path}: SEQUENCE OF value must be a list")
            for index, item in enumerate(value):
                self.validate(item, type_.element, f"{path}[{index}]")
        elif isinstance(type_, ChoiceType):
            self._validate_choice(value, type_, path)
        else:  # pragma: no cover - all subclasses handled above
            raise Asn1Error(f"{path}: cannot validate {type_.type_name()}")

    def _validate_integer(self, value: object, type_: IntegerType, path: str) -> None:
        if isinstance(value, str):
            mapped = type_.value_for(value)
            if mapped is None:
                raise Asn1Error(f"{path}: {value!r} is not a named number")
            value = mapped
        if not isinstance(value, int) or isinstance(value, bool):
            raise Asn1Error(f"{path}: INTEGER value must be an int")
        if type_.minimum is not None and value < type_.minimum:
            raise Asn1Error(f"{path}: {value} below minimum {type_.minimum}")
        if type_.maximum is not None and value > type_.maximum:
            raise Asn1Error(f"{path}: {value} above maximum {type_.maximum}")

    def _validate_octets(self, value: object, type_: OctetStringType, path: str) -> None:
        if isinstance(value, str):
            value = value.encode("utf-8")
        if not isinstance(value, (bytes, bytearray)):
            raise Asn1Error(f"{path}: OCTET STRING value must be bytes or str")
        size = len(value)
        if type_.min_size is not None and size < type_.min_size:
            raise Asn1Error(f"{path}: size {size} below minimum {type_.min_size}")
        if type_.max_size is not None and size > type_.max_size:
            raise Asn1Error(f"{path}: size {size} above maximum {type_.max_size}")

    def _validate_oid(self, value: object, path: str) -> None:
        components: Optional[Tuple[int, ...]] = None
        if isinstance(value, (tuple, list)):
            if all(isinstance(item, int) for item in value):
                components = tuple(value)
        elif hasattr(value, "components"):  # repro.mib.Oid duck type
            components = tuple(value.components)
        if components is None or len(components) < 2:
            raise Asn1Error(
                f"{path}: OBJECT IDENTIFIER value must be a tuple of >= 2 ints"
            )

    def _validate_sequence(self, value: object, type_: SequenceType, path: str) -> None:
        if not isinstance(value, Mapping):
            raise Asn1Error(f"{path}: SEQUENCE value must be a mapping")
        for member in type_.fields:
            if member.name not in value:
                if member.optional:
                    continue
                raise Asn1Error(f"{path}: missing field {member.name!r}")
            self.validate(value[member.name], member.type, f"{path}.{member.name}")
        extra = set(value) - {member.name for member in type_.fields}
        if extra:
            raise Asn1Error(f"{path}: unknown fields {sorted(extra)}")

    def _validate_choice(self, value: object, type_: ChoiceType, path: str) -> None:
        if not (isinstance(value, tuple) and len(value) == 2):
            raise Asn1Error(f"{path}: CHOICE value must be a (name, value) pair")
        name, inner = value
        alternative = type_.alternative_named(name)
        if alternative is None:
            raise Asn1Error(f"{path}: no CHOICE alternative named {name!r}")
        self.validate(inner, alternative.type, f"{path}.{name}")
