"""ASN.1 type model.

Types are immutable descriptions; values are plain Python objects checked
against a type (see :mod:`repro.asn1.types` for validation and
:mod:`repro.asn1.ber` for encoding).  Python-value mapping:

====================  =======================================
ASN.1 type            Python value
====================  =======================================
INTEGER               int
OCTET STRING          bytes (str accepted and encoded UTF-8)
NULL                  None
OBJECT IDENTIFIER     tuple of ints (or :class:`repro.mib.Oid`)
SEQUENCE { ... }      dict mapping field name to value
SEQUENCE OF T         list of values of T
CHOICE                (alternative-name, value) pair
====================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Asn1Type:
    """Base class for all ASN.1 type descriptions."""

    def type_name(self) -> str:
        """A short human-readable name for error messages."""
        return type(self).__name__


@dataclass(frozen=True)
class IntegerType(Asn1Type):
    """``INTEGER``, optionally with named numbers and/or a value range."""

    named_values: Tuple[Tuple[str, int], ...] = ()
    minimum: Optional[int] = None
    maximum: Optional[int] = None

    def type_name(self) -> str:
        return "INTEGER"

    def name_for(self, value: int) -> Optional[str]:
        """Return the symbolic name for *value*, if one was declared."""
        for name, number in self.named_values:
            if number == value:
                return name
        return None

    def value_for(self, name: str) -> Optional[int]:
        """Return the number declared for symbolic *name*, if any."""
        for declared, number in self.named_values:
            if declared == name:
                return number
        return None


@dataclass(frozen=True)
class OctetStringType(Asn1Type):
    """``OCTET STRING``, optionally with a SIZE constraint."""

    min_size: Optional[int] = None
    max_size: Optional[int] = None

    def type_name(self) -> str:
        return "OCTET STRING"


@dataclass(frozen=True)
class NullType(Asn1Type):
    def type_name(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class ObjectIdentifierType(Asn1Type):
    def type_name(self) -> str:
        return "OBJECT IDENTIFIER"


@dataclass(frozen=True)
class NamedField:
    """One field of a SEQUENCE or one alternative of a CHOICE."""

    name: str
    type: Asn1Type
    optional: bool = False


@dataclass(frozen=True)
class SequenceType(Asn1Type):
    """``SEQUENCE { field Type, ... }``."""

    fields: Tuple[NamedField, ...] = ()

    def type_name(self) -> str:
        return "SEQUENCE"

    def field_named(self, name: str) -> Optional[NamedField]:
        for member in self.fields:
            if member.name == name:
                return member
        return None

    def field_names(self) -> Tuple[str, ...]:
        return tuple(member.name for member in self.fields)


@dataclass(frozen=True)
class SequenceOfType(Asn1Type):
    """``SEQUENCE OF ElementType``."""

    element: Asn1Type = field(default_factory=NullType)

    def type_name(self) -> str:
        return f"SEQUENCE OF {self.element.type_name()}"


@dataclass(frozen=True)
class ChoiceType(Asn1Type):
    """``CHOICE { alt Type, ... }``."""

    alternatives: Tuple[NamedField, ...] = ()

    def type_name(self) -> str:
        return "CHOICE"

    def alternative_named(self, name: str) -> Optional[NamedField]:
        for alternative in self.alternatives:
            if alternative.name == name:
                return alternative
        return None


@dataclass(frozen=True)
class TaggedType(Asn1Type):
    """``[CLASS number] IMPLICIT|EXPLICIT Type``.

    ``tag_class`` is one of ``"UNIVERSAL"``, ``"APPLICATION"``, ``"CONTEXT"``,
    ``"PRIVATE"``.
    """

    tag_class: str = "CONTEXT"
    tag_number: int = 0
    implicit: bool = True
    inner: Asn1Type = field(default_factory=NullType)

    def type_name(self) -> str:
        return f"[{self.tag_class} {self.tag_number}] {self.inner.type_name()}"


@dataclass(frozen=True)
class TypeRef(Asn1Type):
    """A reference to a named type, resolved via an Asn1Module."""

    name: str = ""

    def type_name(self) -> str:
        return self.name


def named_fields(pairs: Sequence[Tuple[str, Asn1Type]]) -> Tuple[NamedField, ...]:
    """Convenience constructor for sequences of (name, type) pairs."""
    return tuple(NamedField(name, typ) for name, typ in pairs)


def walk(root: Asn1Type):
    """Yield *root* and every type nested inside it, depth-first."""
    yield root
    if isinstance(root, SequenceType):
        for member in root.fields:
            yield from walk(member.type)
    elif isinstance(root, ChoiceType):
        for alternative in root.alternatives:
            yield from walk(alternative.type)
    elif isinstance(root, SequenceOfType):
        yield from walk(root.element)
    elif isinstance(root, TaggedType):
        yield from walk(root.inner)


def references(root: Asn1Type) -> Dict[str, TypeRef]:
    """Collect every TypeRef nested in *root*, keyed by referenced name."""
    found: Dict[str, TypeRef] = {}
    for node in walk(root):
        if isinstance(node, TypeRef):
            found.setdefault(node.name, node)
    return found
