"""Render ASN.1 type trees back to notation.

The inverse of :mod:`repro.asn1.parser` for the supported subset:
``parse_type(render_type(t))`` equals ``t`` (standard spelling is emitted
— upper-case ``OF``, braces for field lists — even where the paper's
variant spelling was parsed).
"""

from __future__ import annotations

from repro.asn1.nodes import (
    Asn1Type,
    ChoiceType,
    IntegerType,
    NullType,
    ObjectIdentifierType,
    OctetStringType,
    SequenceOfType,
    SequenceType,
    TaggedType,
    TypeRef,
)


def render_type(type_: Asn1Type, indent: int = 0) -> str:
    """Render *type_* as ASN.1 notation."""
    pad = "    " * indent
    inner_pad = "    " * (indent + 1)
    if isinstance(type_, IntegerType):
        text = "INTEGER"
        if type_.named_values:
            inner = ", ".join(
                f"{name}({number})" for name, number in type_.named_values
            )
            text += f" {{ {inner} }}"
        if type_.minimum is not None and type_.maximum is not None:
            text += f" ({type_.minimum}..{type_.maximum})"
        return text
    if isinstance(type_, OctetStringType):
        text = "OCTET STRING"
        if type_.min_size is not None:
            if type_.max_size == type_.min_size:
                text += f" (SIZE ({type_.min_size}))"
            else:
                text += f" (SIZE ({type_.min_size}..{type_.max_size}))"
        return text
    if isinstance(type_, NullType):
        return "NULL"
    if isinstance(type_, ObjectIdentifierType):
        return "OBJECT IDENTIFIER"
    if isinstance(type_, SequenceOfType):
        return f"SEQUENCE OF {render_type(type_.element, indent)}"
    if isinstance(type_, SequenceType):
        return _render_fields("SEQUENCE", type_.fields, pad, inner_pad, indent)
    if isinstance(type_, ChoiceType):
        return _render_fields("CHOICE", type_.alternatives, pad, inner_pad, indent)
    if isinstance(type_, TaggedType):
        mode = "IMPLICIT" if type_.implicit else "EXPLICIT"
        # CONTEXT is the default class and has no keyword in the notation.
        tag = (
            f"[{type_.tag_number}]"
            if type_.tag_class == "CONTEXT"
            else f"[{type_.tag_class} {type_.tag_number}]"
        )
        return f"{tag} {mode} {render_type(type_.inner, indent)}"
    if isinstance(type_, TypeRef):
        return type_.name
    raise TypeError(f"cannot render {type_!r}")


def _render_fields(
    keyword: str,
    fields: tuple,
    pad: str,
    inner_pad: str,
    indent: int,
) -> str:
    if not fields:
        return f"{keyword} {{ }}"
    lines = [f"{keyword} {{"]
    rendered = []
    for member in fields:
        text = f"{inner_pad}{member.name} {render_type(member.type, indent + 1)}"
        if member.optional:
            text += " OPTIONAL"
        rendered.append(text)
    lines.append(",\n".join(rendered))
    lines.append(f"{pad}}}")
    return "\n".join(lines)
