"""Basic Encoding Rules (BER) for the ASN.1 subset.

Implements definite-length TLV encoding as used by SNMPv1 (RFC 1067):
INTEGER, OCTET STRING, NULL, OBJECT IDENTIFIER, SEQUENCE (OF), tagged types.
Values follow the Python mapping documented in :mod:`repro.asn1.nodes`.

Encoding is driven by a type description so that IMPLICIT tags (e.g. the
SNMP application types ``Counter``/``IpAddress``) replace the universal tag
of the underlying type, exactly as BER requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Mapping, Tuple

from repro.asn1.nodes import (
    Asn1Type,
    ChoiceType,
    IntegerType,
    NullType,
    ObjectIdentifierType,
    OctetStringType,
    SequenceOfType,
    SequenceType,
    TaggedType,
    TypeRef,
)
from repro.errors import BerError


class TagClass(IntEnum):
    """The two class bits of a BER identifier octet."""

    UNIVERSAL = 0
    APPLICATION = 1
    CONTEXT = 2
    PRIVATE = 3


_CLASS_BY_NAME = {
    "UNIVERSAL": TagClass.UNIVERSAL,
    "APPLICATION": TagClass.APPLICATION,
    "CONTEXT": TagClass.CONTEXT,
    "PRIVATE": TagClass.PRIVATE,
}

# Universal tag numbers used by this subset.
TAG_INTEGER = 2
TAG_OCTET_STRING = 4
TAG_NULL = 5
TAG_OID = 6
TAG_SEQUENCE = 16


@dataclass(frozen=True)
class Tag:
    """A BER tag: class bits, constructed flag and tag number."""

    tag_class: TagClass
    constructed: bool
    number: int

    def identifier_octet(self) -> int:
        if self.number >= 0x1F:
            raise BerError(f"multi-byte tags unsupported (number={self.number})")
        return (int(self.tag_class) << 6) | (0x20 if self.constructed else 0) | self.number


def _encode_length(length: int) -> bytes:
    if length < 0:
        raise BerError("negative length")
    if length < 0x80:
        return bytes([length])
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


def _encode_tlv(tag: Tag, content: bytes) -> bytes:
    return bytes([tag.identifier_octet()]) + _encode_length(len(content)) + content


def _encode_integer_content(value: int) -> bytes:
    if value == 0:
        return b"\x00"
    length = (value.bit_length() // 8) + 1
    return value.to_bytes(length, "big", signed=True)


def _decode_integer_content(content: bytes) -> int:
    if not content:
        raise BerError("empty INTEGER content")
    return int.from_bytes(content, "big", signed=True)


def _encode_oid_content(components: Tuple[int, ...]) -> bytes:
    if len(components) < 2:
        raise BerError("OBJECT IDENTIFIER needs at least two components")
    first, second = components[0], components[1]
    if not (0 <= first <= 2) or second < 0 or (first < 2 and second > 39):
        raise BerError(f"invalid OID prefix {first}.{second}")
    out = bytearray([first * 40 + second])
    for component in components[2:]:
        if component < 0:
            raise BerError("negative OID component")
        out.extend(_encode_base128(component))
    return bytes(out)


def _encode_base128(value: int) -> bytes:
    chunks = [value & 0x7F]
    value >>= 7
    while value:
        chunks.append((value & 0x7F) | 0x80)
        value >>= 7
    return bytes(reversed(chunks))


def _decode_oid_content(content: bytes) -> Tuple[int, ...]:
    if not content:
        raise BerError("empty OID content")
    first = content[0]
    components: List[int] = [min(first // 40, 2)]
    components.append(first - components[0] * 40)
    value = 0
    in_component = False
    for octet in content[1:]:
        value = (value << 7) | (octet & 0x7F)
        in_component = True
        if not octet & 0x80:
            components.append(value)
            value = 0
            in_component = False
    if in_component:
        raise BerError("truncated OID component")
    return tuple(components)


def _universal_tag(type_: Asn1Type) -> Tag:
    if isinstance(type_, IntegerType):
        return Tag(TagClass.UNIVERSAL, False, TAG_INTEGER)
    if isinstance(type_, OctetStringType):
        return Tag(TagClass.UNIVERSAL, False, TAG_OCTET_STRING)
    if isinstance(type_, NullType):
        return Tag(TagClass.UNIVERSAL, False, TAG_NULL)
    if isinstance(type_, ObjectIdentifierType):
        return Tag(TagClass.UNIVERSAL, False, TAG_OID)
    if isinstance(type_, (SequenceType, SequenceOfType)):
        return Tag(TagClass.UNIVERSAL, True, TAG_SEQUENCE)
    raise BerError(f"type {type_.type_name()} has no universal tag")


class BerEncoder:
    """Encodes Python values against a type, resolving references via *module*."""

    def __init__(self, module=None):
        self._module = module

    def _resolve(self, type_: Asn1Type) -> Asn1Type:
        if isinstance(type_, TypeRef):
            if self._module is None:
                raise BerError(f"unresolved type reference {type_.name!r}")
            return self._resolve(self._module.lookup(type_.name))
        return type_

    def encode(self, value: object, type_: Asn1Type) -> bytes:
        type_ = self._resolve(type_)
        tag, content = self._tag_and_content(value, type_)
        return _encode_tlv(tag, content)

    def _tag_and_content(self, value: object, type_: Asn1Type) -> Tuple[Tag, bytes]:
        type_ = self._resolve(type_)
        if isinstance(type_, TaggedType):
            inner_tag, content = self._tag_and_content(value, type_.inner)
            if not type_.implicit:
                # EXPLICIT: wrap the complete inner TLV.
                content = _encode_tlv(inner_tag, content)
                constructed = True
            else:
                constructed = inner_tag.constructed
            tag = Tag(_CLASS_BY_NAME[type_.tag_class], constructed, type_.tag_number)
            return tag, content
        if isinstance(type_, ChoiceType):
            return self._encode_choice(value, type_)
        return _universal_tag(type_), self._content_for(value, type_)

    def _encode_choice(self, value: object, type_: ChoiceType) -> Tuple[Tag, bytes]:
        if not (isinstance(value, tuple) and len(value) == 2):
            raise BerError("CHOICE value must be a (name, value) pair")
        name, inner_value = value
        alternative = type_.alternative_named(name)
        if alternative is None:
            raise BerError(f"no CHOICE alternative named {name!r}")
        return self._tag_and_content(inner_value, alternative.type)

    def _content_for(self, value: object, type_: Asn1Type) -> bytes:
        if isinstance(type_, IntegerType):
            if isinstance(value, str):
                mapped = type_.value_for(value)
                if mapped is None:
                    raise BerError(f"{value!r} is not a named number")
                value = mapped
            if not isinstance(value, int) or isinstance(value, bool):
                raise BerError(f"INTEGER value must be int, got {type(value).__name__}")
            return _encode_integer_content(value)
        if isinstance(type_, OctetStringType):
            if isinstance(value, str):
                value = value.encode("utf-8")
            if not isinstance(value, (bytes, bytearray)):
                raise BerError("OCTET STRING value must be bytes or str")
            return bytes(value)
        if isinstance(type_, NullType):
            if value is not None:
                raise BerError("NULL value must be None")
            return b""
        if isinstance(type_, ObjectIdentifierType):
            components = getattr(value, "components", value)
            if not isinstance(components, (tuple, list)):
                raise BerError("OID value must be a tuple of ints")
            return _encode_oid_content(tuple(components))
        if isinstance(type_, SequenceType):
            if not isinstance(value, Mapping):
                raise BerError("SEQUENCE value must be a mapping")
            parts = []
            for member in type_.fields:
                if member.name not in value:
                    if member.optional:
                        continue
                    raise BerError(f"missing SEQUENCE field {member.name!r}")
                parts.append(self.encode(value[member.name], member.type))
            return b"".join(parts)
        if isinstance(type_, SequenceOfType):
            if not isinstance(value, (list, tuple)):
                raise BerError("SEQUENCE OF value must be a list")
            return b"".join(self.encode(item, type_.element) for item in value)
        raise BerError(f"cannot encode type {type_.type_name()}")


class BerDecoder:
    """Decodes BER octets against a type description."""

    def __init__(self, module=None):
        self._module = module

    def _resolve(self, type_: Asn1Type) -> Asn1Type:
        if isinstance(type_, TypeRef):
            if self._module is None:
                raise BerError(f"unresolved type reference {type_.name!r}")
            return self._resolve(self._module.lookup(type_.name))
        return type_

    def decode(self, data: bytes, type_: Asn1Type) -> object:
        value, rest = self.decode_prefix(data, type_)
        if rest:
            raise BerError(f"{len(rest)} trailing octets after value")
        return value

    def decode_prefix(self, data: bytes, type_: Asn1Type) -> Tuple[object, bytes]:
        """Decode one value of *type_* from the front of *data*."""
        type_ = self._resolve(type_)
        if isinstance(type_, ChoiceType):
            return self._decode_choice(data, type_)
        tag, content, rest = _split_tlv(data)
        expected = self._expected_tag(type_)
        if (tag.tag_class, tag.number) != (expected.tag_class, expected.number):
            raise BerError(
                f"tag mismatch: expected class={expected.tag_class.name} "
                f"number={expected.number}, got class={tag.tag_class.name} "
                f"number={tag.number}"
            )
        return self._value_from_content(content, type_), rest

    def _expected_tag(self, type_: Asn1Type) -> Tag:
        type_ = self._resolve(type_)
        if isinstance(type_, TaggedType):
            inner = self._expected_tag(type_.inner)
            constructed = inner.constructed if type_.implicit else True
            return Tag(_CLASS_BY_NAME[type_.tag_class], constructed, type_.tag_number)
        return _universal_tag(type_)

    def _value_from_content(self, content: bytes, type_: Asn1Type) -> object:
        type_ = self._resolve(type_)
        if isinstance(type_, TaggedType):
            if type_.implicit:
                return self._value_from_content(content, type_.inner)
            value, rest = self.decode_prefix(content, type_.inner)
            if rest:
                raise BerError("trailing octets inside EXPLICIT tag")
            return value
        if isinstance(type_, IntegerType):
            return _decode_integer_content(content)
        if isinstance(type_, OctetStringType):
            return content
        if isinstance(type_, NullType):
            if content:
                raise BerError("NULL content must be empty")
            return None
        if isinstance(type_, ObjectIdentifierType):
            return _decode_oid_content(content)
        if isinstance(type_, SequenceType):
            return self._decode_sequence_fields(content, type_)
        if isinstance(type_, SequenceOfType):
            items = []
            rest = content
            while rest:
                item, rest = self.decode_prefix(rest, type_.element)
                items.append(item)
            return items
        raise BerError(f"cannot decode type {type_.type_name()}")

    def _decode_sequence_fields(self, content: bytes, type_: SequenceType) -> dict:
        result = {}
        rest = content
        for member in type_.fields:
            if not rest:
                if member.optional:
                    continue
                raise BerError(f"missing SEQUENCE field {member.name!r}")
            if member.optional:
                try:
                    value, rest = self.decode_prefix(rest, member.type)
                except BerError:
                    continue
            else:
                value, rest = self.decode_prefix(rest, member.type)
            result[member.name] = value
        if rest:
            raise BerError("trailing octets inside SEQUENCE")
        return result

    def _decode_choice(self, data: bytes, type_: ChoiceType) -> Tuple[object, bytes]:
        tag, _content, _rest = _split_tlv(data)
        for alternative in type_.alternatives:
            expected = self._expected_tag(alternative.type)
            if (tag.tag_class, tag.number) == (expected.tag_class, expected.number):
                value, rest = self.decode_prefix(data, alternative.type)
                return (alternative.name, value), rest
        raise BerError(
            f"no CHOICE alternative matches tag class={tag.tag_class.name} "
            f"number={tag.number}"
        )


def _split_tlv(data: bytes) -> Tuple[Tag, bytes, bytes]:
    """Split one TLV off the front of *data*: (tag, content, remainder)."""
    if len(data) < 2:
        raise BerError("truncated TLV header")
    identifier = data[0]
    tag = Tag(
        TagClass((identifier >> 6) & 0x03),
        bool(identifier & 0x20),
        identifier & 0x1F,
    )
    if tag.number == 0x1F:
        raise BerError("multi-byte tags unsupported")
    length_octet = data[1]
    offset = 2
    if length_octet < 0x80:
        length = length_octet
    else:
        count = length_octet & 0x7F
        if count == 0:
            raise BerError("indefinite lengths unsupported")
        if len(data) < offset + count:
            raise BerError("truncated long-form length")
        length = int.from_bytes(data[offset : offset + count], "big")
        offset += count
    end = offset + length
    if len(data) < end:
        raise BerError("truncated TLV content")
    return tag, data[offset:end], data[end:]


def ber_encode(value: object, type_: Asn1Type, module=None) -> bytes:
    """Encode *value* as BER octets according to *type_*."""
    return BerEncoder(module).encode(value, type_)


def ber_decode(data: bytes, type_: Asn1Type, module=None) -> object:
    """Decode BER octets into a Python value according to *type_*."""
    return BerDecoder(module).decode(data, type_)
