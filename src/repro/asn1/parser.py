"""Recursive-descent parser for the ASN.1 subset.

The grammar accepted (a practical subset of ISO 8824, extended to accept the
paper's spelling — lower-case ``of`` and parenthesised field lists)::

    Type        ::= TaggedType | BuiltinType | TypeRef
    TaggedType  ::= "[" [Class] number "]" ["IMPLICIT" | "EXPLICIT"] Type
    Class       ::= "UNIVERSAL" | "APPLICATION" | "PRIVATE"
    BuiltinType ::= "INTEGER" [NamedNumbers] [Range]
                  | "OCTET" "STRING" [Size]
                  | "NULL"
                  | "OBJECT" "IDENTIFIER"
                  | "SEQUENCE" ("OF"|"of") Type
                  | "SEQUENCE" Fields
                  | "CHOICE" Fields
    NamedNumbers::= "{" ident "(" number ")" { "," ident "(" number ")" } "}"
    Range       ::= "(" number ".." number ")"
    Size        ::= "(" "SIZE" "(" number [".." number] ")" ")"
    Fields      ::= ("{" | "(") Field { "," Field } ("}" | ")")
    Field       ::= ident Type ["OPTIONAL"]

Type assignments (``Name ::= Type``) are parsed by :func:`parse_assignments`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.asn1.lexer import Asn1Token, EOF, IDENT, NUMBER, PUNCT, TYPEREF, tokenize
from repro.asn1.nodes import (
    Asn1Type,
    ChoiceType,
    IntegerType,
    NamedField,
    NullType,
    ObjectIdentifierType,
    OctetStringType,
    SequenceOfType,
    SequenceType,
    TaggedType,
    TypeRef,
)
from repro.errors import Asn1Error

_TAG_CLASSES = {"UNIVERSAL", "APPLICATION", "PRIVATE"}


class Asn1Parser:
    """Parses a token stream into :class:`~repro.asn1.nodes.Asn1Type` trees."""

    def __init__(self, tokens: List[Asn1Token]):
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # Token-stream helpers.
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Asn1Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Asn1Token:
        token = self._peek()
        if token.kind != EOF:
            self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Asn1Token:
        token = self._next()
        if not token.matches(kind, text):
            wanted = text if text is not None else kind
            raise Asn1Error(
                f"expected {wanted!r}, found {token.text or token.kind!r}",
                token.location,
            )
        return token

    def _accept(self, kind: str, text: str | None = None) -> Optional[Asn1Token]:
        if self._peek().matches(kind, text):
            return self._next()
        return None

    def at_end(self) -> bool:
        return self._peek().kind == EOF

    # ------------------------------------------------------------------
    # Grammar productions.
    # ------------------------------------------------------------------
    def parse_type(self) -> Asn1Type:
        """Parse one Type production."""
        token = self._peek()
        if token.matches(PUNCT, "["):
            return self._parse_tagged()
        if token.kind == TYPEREF:
            return self._parse_builtin_or_ref()
        raise Asn1Error(
            f"expected a type, found {token.text or token.kind!r}", token.location
        )

    def _parse_tagged(self) -> TaggedType:
        self._expect(PUNCT, "[")
        tag_class = "CONTEXT"
        token = self._peek()
        if token.kind == TYPEREF and token.text in _TAG_CLASSES:
            tag_class = self._next().text
        number_token = self._expect(NUMBER)
        self._expect(PUNCT, "]")
        implicit = True
        if self._peek().kind == TYPEREF and self._peek().text == "EXPLICIT":
            self._next()
            implicit = False
        elif self._peek().kind == TYPEREF and self._peek().text == "IMPLICIT":
            self._next()
        inner = self.parse_type()
        return TaggedType(
            tag_class=tag_class,
            tag_number=int(number_token.text),
            implicit=implicit,
            inner=inner,
        )

    def _parse_builtin_or_ref(self) -> Asn1Type:
        token = self._next()
        word = token.text
        if word == "INTEGER":
            return self._parse_integer_tail()
        if word == "OCTET":
            self._expect(TYPEREF, "STRING")
            return self._parse_octet_string_tail()
        if word == "NULL":
            return NullType()
        if word == "OBJECT":
            self._expect(TYPEREF, "IDENTIFIER")
            return ObjectIdentifierType()
        if word == "SEQUENCE":
            return self._parse_sequence_tail()
        if word == "CHOICE":
            fields = self._parse_field_list()
            return ChoiceType(alternatives=fields)
        return TypeRef(name=word)

    def _parse_integer_tail(self) -> IntegerType:
        named: Tuple[Tuple[str, int], ...] = ()
        minimum = maximum = None
        if self._accept(PUNCT, "{"):
            pairs: List[Tuple[str, int]] = []
            while True:
                name = self._expect(IDENT).text
                self._expect(PUNCT, "(")
                number = int(self._expect(NUMBER).text)
                self._expect(PUNCT, ")")
                pairs.append((name, number))
                if not self._accept(PUNCT, ","):
                    break
            self._expect(PUNCT, "}")
            named = tuple(pairs)
        if self._accept(PUNCT, "("):
            minimum = int(self._expect(NUMBER).text)
            self._expect(PUNCT, "..")
            maximum = int(self._expect(NUMBER).text)
            self._expect(PUNCT, ")")
        return IntegerType(named_values=named, minimum=minimum, maximum=maximum)

    def _parse_octet_string_tail(self) -> OctetStringType:
        if not self._accept(PUNCT, "("):
            return OctetStringType()
        self._expect(TYPEREF, "SIZE")
        self._expect(PUNCT, "(")
        minimum = int(self._expect(NUMBER).text)
        maximum = minimum
        if self._accept(PUNCT, ".."):
            maximum = int(self._expect(NUMBER).text)
        self._expect(PUNCT, ")")
        self._expect(PUNCT, ")")
        return OctetStringType(min_size=minimum, max_size=maximum)

    def _parse_sequence_tail(self) -> Asn1Type:
        token = self._peek()
        # "SEQUENCE OF Type" — the paper writes the keyword in lower case.
        if (token.kind == TYPEREF and token.text == "OF") or (
            token.kind == IDENT and token.text == "of"
        ):
            self._next()
            return SequenceOfType(element=self.parse_type())
        return SequenceType(fields=self._parse_field_list())

    def _parse_field_list(self) -> Tuple[NamedField, ...]:
        opener = self._next()
        if opener.matches(PUNCT, "{"):
            closer = "}"
        elif opener.matches(PUNCT, "("):
            closer = ")"
        else:
            raise Asn1Error(
                f"expected '{{' or '(', found {opener.text!r}", opener.location
            )
        fields: List[NamedField] = []
        if self._accept(PUNCT, closer):
            return tuple(fields)
        while True:
            name = self._expect(IDENT).text
            member_type = self.parse_type()
            optional = False
            if self._peek().matches(TYPEREF, "OPTIONAL"):
                self._next()
                optional = True
            fields.append(NamedField(name, member_type, optional))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, closer)
        return tuple(fields)

    def parse_assignments(self) -> Dict[str, Asn1Type]:
        """Parse zero or more ``Name ::= Type`` assignments."""
        assignments: Dict[str, Asn1Type] = {}
        while not self.at_end():
            name = self._expect(TYPEREF).text
            self._expect(PUNCT, "::=")
            assignments[name] = self.parse_type()
            self._accept(PUNCT, ";")
        return assignments


def parse_type(text: str, filename: str = "<asn1>") -> Asn1Type:
    """Parse *text* as a single ASN.1 Type and require full consumption."""
    parser = Asn1Parser(tokenize(text, filename))
    result = parser.parse_type()
    # Permit a trailing semicolon, as in NMSL type bodies.
    parser._accept(PUNCT, ";")
    if not parser.at_end():
        token = parser._peek()
        raise Asn1Error(
            f"trailing input after type: {token.text!r}", token.location
        )
    return result


def parse_assignments(text: str, filename: str = "<asn1>") -> Dict[str, Asn1Type]:
    """Parse ``Name ::= Type`` assignments from *text*."""
    return Asn1Parser(tokenize(text, filename)).parse_assignments()
