"""Request handlers and the warm spec/fact cache behind them.

The daemon's whole reason to exist over the batch CLI: a
:class:`SpecCache` keeps the compiled specification, the fact set and a
warm :class:`~repro.consistency.checker.ConsistencyChecker` (with its
verdict memos and permission index) alive across requests, so the
second ``check`` of an unchanged spec costs memo lookups instead of a
full compile + fact expansion.  Entries are keyed by resolved path and
invalidated by content hash; a bounded LRU caps resident specs.

:class:`ServiceHandlers` executes each operation against the cache and
returns a JSON-safe result payload.  Handlers run on worker threads in
service mode, so each cache entry carries two locks: ``lock``
serialises the stateful engines (checker memos, lazy engine
construction, impact baselines), and ``campaign_lock`` guarantees that
at most one campaign (rollout/heal, including their install sweeps)
mutates the shared :class:`~repro.netsim.processes.ManagementRuntime`
at a time.  Bulkhead claims keep concurrent campaigns *logically*
disjoint at element granularity; ``campaign_lock`` is what makes the
shared simulated fabric safe when two such campaigns land on worker
threads at the same wall-clock moment.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.deadline import Deadline
from repro.errors import ReproError, RolloutVetoed
from repro.service.protocol import ProtocolError

#: Findings/problems included in a response before truncation.
MAX_REPORTED = 50


class SpecSession:
    """One cached specification: compiler, result, warm engines."""

    def __init__(self, path: str, text: str, text_hash: str):
        from repro.nmsl.compiler import CompilerOptions, NmslCompiler

        self.path = path
        self.text_hash = text_hash
        self.lock = threading.RLock()
        #: Held for the duration of any campaign that mutates the
        #: shared ManagementRuntime (install sweeps, rollout, heal).
        #: Element-disjoint campaigns on *different* specs run truly
        #: concurrently; on the same spec they serialise here.
        self.campaign_lock = threading.Lock()
        self.compiler = NmslCompiler(CompilerOptions(filename=path))
        self.result = self.compiler.compile(text)
        if self.result.report.errors:
            raise ProtocolError(
                "compile",
                f"{path}: " + "; ".join(
                    str(error) for error in self.result.report.errors[:5]
                ),
            )
        self.checks = 0
        self._checker = None
        self._runtime = None

    @property
    def checker(self):
        from repro.consistency.checker import ConsistencyChecker

        with self.lock:
            if self._checker is None:
                self._checker = ConsistencyChecker(
                    self.result.specification, self.compiler.tree
                )
            return self._checker

    @property
    def runtime(self):
        from repro.netsim.processes import ManagementRuntime

        with self.lock:
            if self._runtime is None:
                self._runtime = ManagementRuntime(self.compiler, self.result)
            return self._runtime

    def elements(self) -> Tuple[str, ...]:
        """Every system element name in the specification."""
        return tuple(sorted(self.result.specification.systems))


class SpecCache:
    """Bounded LRU of :class:`SpecSession`, invalidated by content hash."""

    def __init__(self, limit: int = 8):
        if limit < 1:
            raise ValueError(f"limit must be at least 1, got {limit}")
        self.limit = limit
        self._entries: "OrderedDict[str, SpecSession]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, spec: str) -> SpecSession:
        path = str(Path(spec))
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ProtocolError("bad-request", f"cannot read {spec}: {exc}")
        text_hash = hashlib.sha256(text.encode("utf-8")).hexdigest()
        with self._lock:
            session = self._entries.get(path)
            if session is not None and session.text_hash == text_hash:
                self._entries.move_to_end(path)
                self.hits += 1
                self._publish()
                return session
        # Compile outside the cache lock (it can take seconds at paper
        # scale); last writer wins on a racing recompile of one path.
        self.misses += 1
        session = SpecSession(path, text, text_hash)
        with self._lock:
            self._entries[path] = session
            self._entries.move_to_end(path)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
            self._publish()
        return session

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "limit": self.limit,
            "hits": self.hits,
            "misses": self.misses,
        }

    def _publish(self) -> None:
        o = obs.current()
        if o.enabled:
            o.gauge(
                "repro_service_spec_cache_entries",
                "warm compiled specifications resident",
            ).set(len(self._entries))


class ServiceHandlers:
    """Executes protocol operations against the warm cache."""

    def __init__(self, cache: Optional[SpecCache] = None, journal_dir=None):
        self.cache = cache or SpecCache()
        self.journal_dir = Path(journal_dir) if journal_dir else None
        #: Back-reference installed by :class:`ServiceCore` so ``status``
        #: can report scheduler state.
        self.core = None

    # ------------------------------------------------------------------
    # Campaign planning (submit-time, for bulkhead claims).
    # ------------------------------------------------------------------
    def campaign_plan(
        self, op: str, params: dict
    ) -> Tuple[str, FrozenSet[str]]:
        """(campaign key, claimed element set) for a bulk request.

        The claim is at element granularity — the system names the
        campaign may touch — so disjointness between concurrent
        campaigns is decidable without building the simulated runtime
        on the admission path.
        """
        session = self.cache.get(self._require(params, "spec"))
        universe = set(session.elements())
        requested = params.get("elements")
        if requested is not None:
            if not isinstance(requested, list) or not all(
                isinstance(name, str) for name in requested
            ):
                raise ProtocolError(
                    "bad-request", "elements must be a list of names"
                )
            unknown = sorted(set(requested) - universe)
            if unknown:
                raise ProtocolError(
                    "bad-request",
                    "unknown element(s): " + ", ".join(unknown),
                )
            claim = frozenset(requested)
        else:
            claim = frozenset(universe)
        tag = params.get("tag", "BartsSnmpd")
        digest = hashlib.sha256(
            ",".join(sorted(claim)).encode("utf-8")
        ).hexdigest()[:12]
        return f"{op}:{session.path}:{tag}:{digest}", claim

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def execute(self, request) -> dict:
        """Run *request* and return its JSON-safe result payload.

        Raises :class:`~repro.errors.DeadlineExceeded` on budget expiry
        and :class:`ProtocolError` on parameter problems; the core maps
        both to structured error responses.
        """
        method = getattr(self, "_op_" + request.op.replace("-", "_"), None)
        if method is None:  # pragma: no cover - protocol already vets ops
            raise ProtocolError("unknown-op", f"unhandled op {request.op!r}")
        # The request is threaded through explicitly: handlers run
        # concurrently on worker threads, so per-request context must
        # never live in shared instance state.
        return method(request.params, request.deadline, request)

    @staticmethod
    def _require(params: dict, key: str) -> str:
        value = params.get(key)
        if not isinstance(value, str) or not value:
            raise ProtocolError("bad-request", f"params.{key} is required")
        return value

    # ------------------------------------------------------------------
    # Interactive operations.
    # ------------------------------------------------------------------
    def _op_ping(
        self, params: dict, deadline: Optional[Deadline], request
    ) -> dict:
        return {"pong": True}

    def _op_status(
        self, params: dict, deadline: Optional[Deadline], request
    ) -> dict:
        if self.core is None:
            return {"cache": self.cache.stats()}
        return self.core.status_snapshot()

    def _op_slo(
        self, params: dict, deadline: Optional[Deadline], request
    ) -> dict:
        """Current SLO state: per-class windows, burn rates, alerts."""
        if self.core is None:
            return {"classes": {}, "alerts": []}
        return self.core.slo.snapshot(self.core.clock())

    def _op_compile(
        self, params: dict, deadline: Optional[Deadline], request
    ) -> dict:
        session = self.cache.get(self._require(params, "spec"))
        Deadline.poll(deadline, "service.compile")
        counts = session.result.specification.counts()
        return {
            "spec": session.path,
            "counts": dict(counts),
            "warnings": [
                str(warning)
                for warning in session.result.report.warnings[:MAX_REPORTED]
            ],
            "fingerprint": session.text_hash,
        }

    def _op_check(
        self, params: dict, deadline: Optional[Deadline], request
    ) -> dict:
        cache_hits_before = self.cache.hits
        session = self.cache.get(self._require(params, "spec"))
        spec_cache_hit = self.cache.hits > cache_hits_before
        if "chaos_sleep_s" in params:
            # Test/chaos knob (cf. shard_threshold below): hold the
            # request in execution so the pool's kill/overrun paths can
            # be exercised deterministically from outside.
            import time as _time

            _time.sleep(float(params["chaos_sleep_s"]))
        if params.get("chaos_exit"):
            # Test/chaos knob: die mid-request the way a segfault or
            # OOM kill would — only meaningful under the worker pool,
            # where the supervisor must recover; never set in real use.
            import os as _os

            _os._exit(int(params["chaos_exit"]))
        jobs = int(params.get("jobs", 1))
        capacity = bool(params.get("capacity", False))
        measure = (
            self.core is not None and self.core.config.measure_resources
        )
        with session.lock:
            warm = session.checks > 0
            session.checks += 1
            checker = session.checker
            if "shard_threshold" in params:
                # Test/bench knob: force multi-process sharding on small
                # corpora (mirrors the ConsistencyChecker ctor override).
                checker._shard_threshold = int(params["shard_threshold"])
            tallies_before = checker.cache_tallies() if measure else None
            outcome = checker.check(
                check_capacity=capacity, jobs=jobs, deadline=deadline
            )
            tallies_after = checker.cache_tallies() if measure else None
        if measure and request is not None:
            hits = tallies_after["hits"] - tallies_before["hits"]
            lookups = hits + (
                tallies_after["misses"] - tallies_before["misses"]
            )
            request.resources.update(
                facts_scanned=outcome.stats.get("references") or 0,
                cache_lookups=lookups,
                cache_hit_ratio=(
                    round(hits / lookups, 4) if lookups else 0.0
                ),
                spec_cache_hit=spec_cache_hit,
            )
        problems = [
            {"kind": problem.kind.value, "message": problem.message}
            for problem in outcome.inconsistencies[:MAX_REPORTED]
        ]
        return {
            "spec": session.path,
            "consistent": outcome.consistent,
            "inconsistencies": len(outcome.inconsistencies),
            "problems": problems,
            "warnings": len(outcome.warnings),
            "warm": warm,
            # Wall-clock "seconds" is deliberately excluded (cf.
            # ConsistencyResult.VOLATILE_STATS): simulated-runtime
            # transcripts must be byte-identical per seed.
            "stats": {
                "references": outcome.stats.get("references"),
                "instances": outcome.stats.get("instances"),
                "engine": outcome.stats.get("engine"),
            },
        }

    def _op_analyze(
        self, params: dict, deadline: Optional[Deadline], request
    ) -> dict:
        from repro.analysis import default_registry

        specs = params.get("specs")
        if specs is None:
            specs = [self._require(params, "spec")]
        if not isinstance(specs, list) or not specs:
            raise ProtocolError(
                "bad-request", "params.specs must be a non-empty list"
            )
        codes = params.get("select")
        registry = default_registry()
        diagnostics: List[dict] = []
        gating = False
        for spec in specs:
            session = self.cache.get(spec)
            Deadline.poll(deadline, "service.analyze")
            with session.lock:
                report = registry.run(
                    session.compiler.analysis_context(session.result),
                    codes=tuple(codes) if codes else None,
                )
            gating = gating or bool(report.gating())
            for diagnostic in report.diagnostics:
                diagnostics.append(
                    {
                        "code": diagnostic.code,
                        "severity": diagnostic.severity.value,
                        "message": diagnostic.message,
                        "location": str(diagnostic.location),
                    }
                )
        return {
            "specs": [str(Path(spec)) for spec in specs],
            "findings": len(diagnostics),
            "gating": gating,
            "diagnostics": diagnostics[:MAX_REPORTED],
        }

    def _op_diff(
        self, params: dict, deadline: Optional[Deadline], request
    ) -> dict:
        from repro.analysis import Waiver, relational_report
        from repro.consistency.impact import ImpactAnalyzer

        old = self.cache.get(self._require(params, "old"))
        new = self.cache.get(self._require(params, "new"))
        Deadline.poll(deadline, "service.diff")
        tags = tuple(
            tag.strip()
            for tag in str(params.get("output", "BartsSnmpd")).split(",")
            if tag.strip()
        )
        with old.lock:
            analyzer = ImpactAnalyzer(old.compiler.tree, tags=tags)
            analyzer.baseline(old.result.specification)
            Deadline.poll(deadline, "service.diff")
            impact = analyzer.analyze(new.result.specification)
        report = relational_report(impact)
        waiver = params.get("waiver")
        if waiver and Path(waiver).exists():
            report = Waiver.load(waiver).apply(report)
        return {
            "old": old.path,
            "new": new.path,
            "findings": [
                {
                    "code": diagnostic.code,
                    "severity": diagnostic.severity.value,
                    "message": diagnostic.message,
                }
                for diagnostic in report.diagnostics[:MAX_REPORTED]
            ],
            "gating": bool(report.gating()),
            "impacted_elements": sorted(impact.impacted_elements),
            "redrives": sorted(impact.redrive_elements()),
            "diff_entries": impact.stats.get("diff_entries", 0),
        }

    # ------------------------------------------------------------------
    # Bulk campaigns.
    # ------------------------------------------------------------------
    def _campaign_configs(
        self, session: SpecSession, tag: str, params: dict
    ) -> Dict[str, str]:
        """Rollout targets narrowed to the request's element claim."""
        with session.lock:
            targets = session.runtime.rollout_targets(tag)
        requested = params.get("elements")
        if requested is None:
            return targets
        claim = set(requested)
        return {
            target: text
            for target, text in targets.items()
            if target.partition("/")[0] in claim
        }

    def _campaign_journal(self, request):
        from repro.rollout import RolloutJournal

        if self.journal_dir is None:
            return None
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        safe = "".join(
            ch if ch.isalnum() or ch in "-_" else "-"
            for ch in str(request.id)
        )
        path = self.journal_dir / f"campaign-{safe}.jsonl"
        if path.exists():
            path.unlink()
        journal = RolloutJournal(path=path)
        # Stamp the campaign journal with the request's trace so every
        # durable record names the request that caused it.
        trace = getattr(request, "trace", None)
        if trace is not None:
            journal.set_trace(trace)
        return journal

    def _rollout_gate(self, session: SpecSession, params: dict):
        """The relational gate for ``rollout`` with a ``diff_base``."""
        from repro.analysis import Waiver, relational_report
        from repro.consistency.impact import ImpactAnalyzer
        from repro.rollout import RolloutGate

        diff_base = params.get("diff_base")
        if not diff_base:
            return None
        base = self.cache.get(diff_base)
        tag = params.get("tag", "BartsSnmpd")
        with base.lock:
            analyzer = ImpactAnalyzer(base.compiler.tree, tags=(tag,))
            analyzer.baseline(base.result.specification)
            impact = analyzer.analyze(session.result.specification)
        report = relational_report(impact)
        waiver = params.get("waiver")
        if waiver and Path(waiver).exists():
            report = Waiver.load(waiver).apply(report)
        return RolloutGate.from_impact(impact, report)

    def _op_rollout(
        self, params: dict, deadline: Optional[Deadline], request
    ) -> dict:
        import json as _json

        from repro.rollout import RetryPolicy

        session = self.cache.get(self._require(params, "spec"))
        tag = params.get("tag", "BartsSnmpd")
        policy = RetryPolicy(
            max_attempts=int(params.get("max_attempts", 5)),
            timeout_s=float(params.get("timeout_s", 2.0)),
        )
        gate = self._rollout_gate(session, params)
        configs = self._campaign_configs(session, tag, params)
        journal = self._campaign_journal(request)
        try:
            # One campaign at a time may mutate the shared runtime;
            # element-level disjointness (the bulkhead claim) is not a
            # memory-safety boundary inside the simulated fabric.
            with session.campaign_lock:
                if params.get("baseline_install"):
                    session.runtime.install_configuration(tag=tag)
                try:
                    report = session.runtime.rollout(
                        tag=tag,
                        policy=policy,
                        jobs=int(params.get("jobs", 4)),
                        seed=int(params.get("seed", 1989)),
                        chunk_size=int(params.get("chunk_size", 1024)),
                        configs=configs,
                        journal=journal,
                        gate=gate,
                        deadline=deadline,
                    )
                except RolloutVetoed as exc:
                    raise ProtocolError("vetoed", str(exc))
        finally:
            if journal is not None:
                journal.close()
        payload = _json.loads(report.to_json())
        if self.core is not None:
            now = self.core.clock()
            trace = getattr(request, "trace", None)
            for name in sorted(report.elements):
                element = report.elements[name]
                self.core.audit.event(
                    "apply", trace=trace, request_id=str(request.id),
                    op="rollout", at_s=now, element=name,
                    state=element.state.value, attempts=element.attempts,
                )
        return {
            "spec": session.path,
            "tag": tag,
            "complete": report.complete,
            "outcomes": payload.get("outcomes", {}),
            "committed": sorted(report.committed()),
            "dead_letter": sorted(report.dead_letter()),
            "duration_s": report.duration_s,
            "gated": gate is not None,
            "journal": str(journal.path) if journal is not None else None,
        }

    def _op_heal(
        self, params: dict, deadline: Optional[Deadline], request
    ) -> dict:
        import json as _json

        from repro.heal import HealthRegistry
        from repro.rollout import RetryPolicy

        session = self.cache.get(self._require(params, "spec"))
        tag = params.get("tag", "BartsSnmpd")
        policy = RetryPolicy(
            max_attempts=int(params.get("max_attempts", 5)),
            timeout_s=float(params.get("timeout_s", 2.0)),
        )
        configs = self._campaign_configs(session, tag, params)
        registry = HealthRegistry(sorted(configs))
        with session.campaign_lock:
            if params.get("install"):
                session.runtime.install_configuration(tag=tag)
            report = session.runtime.heal(
                tag=tag,
                policy=policy,
                jobs=int(params.get("jobs", 4)),
                seed=int(params.get("seed", 1989)),
                configs=configs,
                registry=registry,
                interval_s=float(params.get("interval_s", 30.0)),
                rounds=int(params.get("rounds", 10)),
                deadline=deadline,
            )
        payload = _json.loads(report.to_json())
        if self.core is not None:
            self.core.audit.event(
                "apply", trace=getattr(request, "trace", None),
                request_id=str(request.id), op="heal",
                at_s=self.core.clock(),
                converged=report.converged, rounds=len(report.rounds),
                quarantined=len(report.quarantined),
            )
        return {
            "spec": session.path,
            "tag": tag,
            "converged": report.converged,
            "rounds": len(report.rounds),
            "drift_repaired": payload.get("drift_repaired", 0),
            "quarantined": sorted(report.quarantined),
            "duration_s": report.duration_s,
        }

    # ------------------------------------------------------------------
    # Success predicate for campaign breakers.
    # ------------------------------------------------------------------
    @staticmethod
    def campaign_succeeded(op: str, result: dict) -> bool:
        if op == "rollout":
            return bool(result.get("complete"))
        if op == "heal":
            return bool(result.get("converged"))
        return True
