"""The ``nmsld`` wire protocol: newline-delimited JSON, one message per line.

Requests::

    {"id": "r1", "op": "check", "params": {"spec": "internet.nmsl"},
     "deadline_s": 5.0}

* ``id`` — optional client-chosen token, echoed verbatim on the
  response; the server assigns ``"req-N"`` when absent.
* ``op`` — one of :data:`OPS`.
* ``params`` — op-specific object (see ``docs/SERVICE.md``).
* ``class`` — optional priority-class override (one of
  ``interactive``/``normal``/``bulk``); defaults per op via
  :data:`OP_CLASS`.  A request may *demote* itself freely but may not
  promote a bulk op into the interactive class.
* ``deadline_s`` — optional relative deadline budget in seconds,
  propagated into the checker/coordinator/reconciler.
* ``cost_s`` — declared service cost; only meaningful to the simulated
  runtime (deterministic service times), ignored by ``nmsld`` proper.

Responses are either results or structured errors — **never** silent
drops::

    {"id": "r1", "ok": true, "op": "check", "class": "interactive",
     "result": {...}, "timing": {"queued_s": ..., "total_s": ...}}
    {"id": "r2", "ok": false, "op": "rollout", "error": {"code": 503,
     "kind": "shed", "message": "...", "retry_after_s": 0.8}}

Error kinds and their HTTP-style codes:

=============== ==== ==================================================
``bad-request``  400 malformed JSON / missing or invalid fields
``unknown-op``   404 ``op`` not in :data:`OPS`
``compile``      422 the specification does not compile
``vetoed``       403 relational gate refused the campaign (NM401 unwaived)
``queue-full``   503 bounded queue full; nothing lower-priority to shed
``shed``         503 evicted from the queue by a higher-priority arrival
``draining``     503 daemon is draining (SIGTERM received)
``circuit-open`` 503 campaign circuit breaker open (repeat offender)
``worker-lost``  503 a pool worker died mid-request and the op is not
                     replayable (or its replay budget is spent)
``quarantined``  503 the request's fingerprint is in the poison-request
                     registry (killed workers twice; NM501)
``deadline``     504 deadline expired (queued or mid-execution)
``internal``     500 unexpected server-side failure
=============== ==== ==================================================

Serialisation is deterministic: ``sort_keys=True``, compact separators —
same-seed simulated runs serialise byte-identical transcripts.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.obs.context import TraceContext

#: Priority classes in rank order — rank 0 is served first, the highest
#: rank is shed first.
PRIORITY_CLASSES: Tuple[str, ...] = ("interactive", "normal", "bulk")

CLASS_RANK: Dict[str, int] = {
    name: rank for rank, name in enumerate(PRIORITY_CLASSES)
}

#: Default priority class per operation.
OP_CLASS: Dict[str, str] = {
    "ping": "interactive",
    "status": "interactive",
    "slo": "interactive",
    "compile": "interactive",
    "check": "interactive",
    "diff": "interactive",
    "analyze": "normal",
    "rollout": "bulk",
    "heal": "bulk",
}

OPS: Tuple[str, ...] = tuple(sorted(OP_CLASS))

#: Ops that run campaigns over element sets (bulkhead-protected).
CAMPAIGN_OPS: Tuple[str, ...] = ("rollout", "heal")

#: Ops eligible for the multi-process worker pool: CPU-bound, stateless
#: with respect to the daemon (their only shared state is the warm spec
#: cache, which each worker owns a copy of).  Campaigns (rollout/heal)
#: mutate the shared simulated fabric and write journals — they stay
#: in-process; trivial ops (ping/status/slo) read core state directly.
POOLED_OPS: Tuple[str, ...] = ("analyze", "check", "compile", "diff")

#: Ops that may be transparently re-executed after a worker death: pure
#: reads of (spec text, cache state), so at-least-once execution is
#: indistinguishable from exactly-once.  Campaigns are deliberately
#: absent — a rollout interrupted by a worker death must surface as a
#: structured 503, never re-apply (its journal already guarantees
#: crash-resume without double application).
IDEMPOTENT_OPS = frozenset(
    {"analyze", "check", "compile", "diff", "ping", "slo", "status"}
)

#: Error kinds caused by the request itself (malformed, uncompilable,
#: policy-vetoed, poison-quarantined) rather than by service health —
#: excluded from availability SLO accounting, as 4xx-class outcomes
#: conventionally are.  ``quarantined`` counts as a client fault: the
#: registry only holds fingerprints that killed workers twice.
CLIENT_FAULT_KINDS = frozenset(
    {"bad-request", "unknown-op", "compile", "vetoed", "quarantined"}
)

ERROR_CODES: Dict[str, int] = {
    "bad-request": 400,
    "unknown-op": 404,
    "compile": 422,
    "vetoed": 403,
    "queue-full": 503,
    "shed": 503,
    "draining": 503,
    "circuit-open": 503,
    "worker-lost": 503,
    "quarantined": 503,
    "deadline": 504,
    "internal": 500,
}


class ProtocolError(ServiceError):
    """A request that cannot be admitted; carries its error kind."""

    def __init__(self, kind: str, message: str, request_id=None):
        if kind not in ERROR_CODES:
            raise ValueError(f"unknown protocol error kind {kind!r}")
        self.kind = kind
        self.code = ERROR_CODES[kind]
        self.request_id = request_id
        super().__init__(message)


def parse_request(line: str) -> dict:
    """Parse and validate one request line into a plain dict.

    Raises :class:`ProtocolError` (kind ``bad-request`` or
    ``unknown-op``) with as much of the request id preserved as could be
    recovered, so the caller can still address the error response.
    """
    line = line.strip()
    if not line:
        raise ProtocolError("bad-request", "empty request line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-request", f"malformed JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    request_id = message.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError(
            "bad-request", "id must be a string or integer", None
        )
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "missing op", request_id)
    if op not in OP_CLASS:
        raise ProtocolError(
            "unknown-op",
            f"unknown op {op!r} (have: {', '.join(OPS)})",
            request_id,
        )
    params = message.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            "bad-request", "params must be an object", request_id
        )
    cls = message.get("class", OP_CLASS[op])
    if cls not in CLASS_RANK:
        raise ProtocolError(
            "bad-request",
            f"unknown class {cls!r} (have: {', '.join(PRIORITY_CLASSES)})",
            request_id,
        )
    if CLASS_RANK[cls] < CLASS_RANK[OP_CLASS[op]]:
        raise ProtocolError(
            "bad-request",
            f"op {op!r} may not promote itself to class {cls!r}",
            request_id,
        )
    deadline_s = message.get("deadline_s")
    if deadline_s is not None:
        if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
            raise ProtocolError(
                "bad-request", "deadline_s must be a positive number",
                request_id,
            )
    cost_s = message.get("cost_s")
    if cost_s is not None:
        if not isinstance(cost_s, (int, float)) or cost_s < 0:
            raise ProtocolError(
                "bad-request", "cost_s must be a non-negative number",
                request_id,
            )
    traceparent = message.get("traceparent")
    if traceparent is not None:
        try:
            TraceContext.from_traceparent(traceparent)
        except ValueError as exc:
            raise ProtocolError("bad-request", str(exc), request_id) from None
    return {
        "id": request_id,
        "op": op,
        "params": params,
        "class": cls,
        "deadline_s": deadline_s,
        "cost_s": cost_s,
        "traceparent": traceparent,
    }


def result_response(
    request_id, op: str, cls: str, result: dict,
    timing: Optional[dict] = None,
    traceparent: Optional[str] = None,
    resources: Optional[dict] = None,
) -> dict:
    response = {
        "id": request_id,
        "ok": True,
        "op": op,
        "class": cls,
        "result": result,
    }
    if timing is not None:
        response["timing"] = timing
    if traceparent is not None:
        response["traceparent"] = traceparent
    if resources is not None:
        response["resources"] = resources
    return response


def error_response(
    request_id,
    kind: str,
    message: str,
    op: Optional[str] = None,
    cls: Optional[str] = None,
    traceparent: Optional[str] = None,
    **details,
) -> dict:
    """A structured refusal (503-style shed, 504 deadline, ...)."""
    error = {"code": ERROR_CODES[kind], "kind": kind, "message": message}
    for key in sorted(details):
        if details[key] is not None:
            error[key] = details[key]
    response = {"id": request_id, "ok": False, "error": error}
    if op is not None:
        response["op"] = op
    if cls is not None:
        response["class"] = cls
    if traceparent is not None:
        response["traceparent"] = traceparent
    return response


def encode_message(message: dict) -> str:
    """One wire line: deterministic compact JSON plus the newline."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    )
