"""Admission control: per-class priority queues with explicit shedding.

One bounded queue per priority class (``interactive`` < ``normal`` <
``bulk``).  Admission is deterministic:

* while total depth is under ``capacity`` every valid request is
  admitted (FIFO within its class);
* at capacity, an arrival sheds the **newest request of the lowest
  priority class strictly below its own** — those have waited least and
  matter least — and takes the freed slot; the shed request gets a
  structured 503 ``shed`` rejection, never a silent drop;
* an arrival with nothing below it to shed is itself rejected with a
  503 ``queue-full``.

Dispatch scans classes in rank order and each class FIFO, *skipping
over* requests whose campaign bulkhead conflicts with one in flight —
a blocked bulk campaign must not head-of-line-block an independent one
(the cross-starvation property the overload suite locks in).  Requests
whose deadline expired while queued are popped and reported as
expirations (504) rather than executed.

All decisions are pure functions of (arrival order, clock); no wall
time, no randomness — same-seed simulated runs shed byte-identically.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.service.protocol import CLASS_RANK, PRIORITY_CLASSES


class AdmissionController:
    """Bounded per-class queues plus the shed policy."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._queues: Dict[str, Deque] = {
            name: deque() for name in PRIORITY_CLASSES
        }
        self.admitted_total = 0
        self.shed_total = 0
        self.rejected_total = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def depth(self, cls: Optional[str] = None) -> int:
        if cls is not None:
            return len(self._queues[cls])
        return sum(len(queue) for queue in self._queues.values())

    def depths(self) -> Dict[str, int]:
        return {name: len(queue) for name, queue in self._queues.items()}

    def queued(self) -> List:
        """Every queued request, rank order then FIFO (drain helper)."""
        requests = []
        for name in PRIORITY_CLASSES:
            requests.extend(self._queues[name])
        return requests

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------
    def offer(self, request) -> Tuple[bool, Optional[object]]:
        """Try to admit *request*.

        Returns ``(admitted, shed_victim)``:

        * ``(True, None)`` — admitted, queue had room;
        * ``(True, victim)`` — admitted by shedding *victim* (the newest
          request of the lowest-priority class below the arrival's);
        * ``(False, None)`` — rejected (queue full, nothing below the
          arrival to shed).
        """
        if self.depth() < self.capacity:
            self._queues[request.cls].append(request)
            self.admitted_total += 1
            self._publish()
            return True, None
        victim = self._shed_victim(CLASS_RANK[request.cls])
        if victim is None:
            self.rejected_total += 1
            self._publish()
            return False, None
        self.shed_total += 1
        self._queues[request.cls].append(request)
        self.admitted_total += 1
        self._publish()
        return True, victim

    def _shed_victim(self, arrival_rank: int):
        """Pop the newest request of the lowest class below *arrival_rank*."""
        for rank in range(len(PRIORITY_CLASSES) - 1, arrival_rank, -1):
            queue = self._queues[PRIORITY_CLASSES[rank]]
            if queue:
                return queue.pop()  # LIFO within the victim class
        return None

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def pop_next(
        self,
        now: float,
        can_start: Callable[[object], bool],
    ) -> Optional[Tuple[object, str]]:
        """The next actionable request, or None if all are blocked.

        Returns ``(request, disposition)`` where disposition is
        ``"expired"`` (deadline passed while queued — caller sends the
        504) or ``"run"`` (caller dispatches it).  Scans rank order,
        FIFO within a class, skipping bulkhead-blocked requests.
        """
        for name in PRIORITY_CLASSES:
            queue = self._queues[name]
            for position, request in enumerate(queue):
                if request.deadline is not None and request.deadline.expired:
                    del queue[position]
                    self._publish()
                    return request, "expired"
                if can_start(request):
                    del queue[position]
                    self._publish()
                    return request, "run"
        return None

    # ------------------------------------------------------------------
    # Metrics.
    # ------------------------------------------------------------------
    def _publish(self) -> None:
        o = obs.current()
        if not o.enabled:
            return
        for name, queue in self._queues.items():
            o.gauge(
                "repro_service_queue_depth",
                "admitted requests waiting for a worker, by class",
                **{"class": name},
            ).set(len(queue))
