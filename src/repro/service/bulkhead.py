"""Per-campaign bulkheads: isolate concurrent rollout/heal campaigns.

A *campaign* (a bulk ``rollout`` or ``heal`` request) claims the set of
elements it will touch.  The registry admits any number of campaigns up
to ``max_campaigns`` **as long as their element sets are disjoint** —
two campuses rolling out at once cannot starve each other — while a
campaign overlapping an active one waits in its queue (the admission
controller skips over it, so independent campaigns behind it still
dispatch).

Repeat offenders are fenced with the heal layer's
:class:`~repro.heal.breaker.CircuitBreaker` (one per campaign key):
consecutive failed campaigns open the breaker and later submissions are
rejected immediately with a structured 503 ``circuit-open`` carrying the
cool-down, instead of burning a worker on a campaign that keeps dying.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro import obs
from repro.heal.breaker import CircuitBreaker


class CampaignBulkheads:
    """Tracks in-flight campaigns' element claims plus their breakers."""

    def __init__(
        self,
        max_campaigns: int = 4,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
    ):
        if max_campaigns < 1:
            raise ValueError(
                f"max_campaigns must be at least 1, got {max_campaigns}"
            )
        self.max_campaigns = max_campaigns
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._active: Dict[str, FrozenSet[str]] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.conflicts_total = 0

    # ------------------------------------------------------------------
    # Breakers (checked at submit time: fast rejection, no queueing).
    # ------------------------------------------------------------------
    def breaker(self, key: str) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                element=key,
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
            )
            self._breakers[key] = breaker
        return breaker

    def allow(self, key: str, now: float) -> bool:
        """Whether the campaign's breaker admits a new run at *now*."""
        return self.breaker(key).allow(now)

    def retry_after(self, key: str, now: float) -> float:
        """Seconds until an open breaker's cool-down elapses."""
        breaker = self.breaker(key)
        if breaker.opened_at is None:
            return 0.0
        return max(
            0.0, breaker.opened_at + breaker.current_cooldown() - now
        )

    # ------------------------------------------------------------------
    # Claims (checked at dispatch time: blocked campaigns wait).
    # ------------------------------------------------------------------
    def can_start(self, key: str, elements: FrozenSet[str]) -> bool:
        """Disjoint from every active campaign and under the cap?"""
        if key in self._active:
            return False  # one run of a given campaign at a time
        if len(self._active) >= self.max_campaigns:
            return False
        for claimed in self._active.values():
            if claimed & elements:
                self.conflicts_total += 1
                return False
        return True

    def acquire(self, key: str, elements: FrozenSet[str]) -> None:
        assert self.can_start(key, elements), f"bulkhead denied {key}"
        self._active[key] = frozenset(elements)
        self._publish()

    def release(self, key: str, ok: bool, now: float) -> None:
        self._active.pop(key, None)
        breaker = self.breaker(key)
        if ok:
            breaker.record_success(now)
        else:
            breaker.record_failure(now)
        self._publish()
        o = obs.current()
        if o.enabled:
            o.gauge(
                "repro_service_campaign_breaker_state",
                "campaign breaker state (0 closed, 1 half-open, 2 open)",
                campaign=key,
            ).set(breaker.gauge_value())

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def active(self) -> Dict[str, FrozenSet[str]]:
        return dict(self._active)

    def snapshot(self) -> dict:
        return {
            "active": {
                key: sorted(elements)
                for key, elements in sorted(self._active.items())
            },
            "max_campaigns": self.max_campaigns,
            "conflicts_total": self.conflicts_total,
            "breakers": {
                key: breaker.as_dict()
                for key, breaker in sorted(self._breakers.items())
                if breaker.opens or breaker.consecutive_failures
            },
        }

    def _publish(self) -> None:
        o = obs.current()
        if o.enabled:
            o.gauge(
                "repro_service_campaigns_active",
                "bulk campaigns currently holding a bulkhead claim",
            ).set(len(self._active))
