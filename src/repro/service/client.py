"""A minimal synchronous client for the ``nmsld`` NDJSON protocol.

Library use::

    with ServiceClient(socket_path="/run/nmsld.sock") as client:
        response = client.request("check", {"spec": "internet.nmsl"},
                                  deadline_s=5.0)

CLI use (the CI smoke test and ad-hoc operators)::

    python -m repro.service.client --socket /run/nmsld.sock \\
        check spec=examples/campus.nmsl deadline_s=5

Responses print as deterministic one-line JSON; the exit status is 0
for ``ok`` responses and the error's HTTP-style code divided by 100
otherwise (503 → 5, 400 → 4), so shell pipelines can branch on class.

The pseudo-op ``watch`` polls ``status`` + ``slo`` and prints one
summary line per tick — a minimal live view of queue depths, burn
rates, and alerts (``nmslc top`` renders the same data as a table)::

    python -m repro.service.client --socket /run/nmsld.sock watch \\
        interval=2 count=10
"""

from __future__ import annotations

import json
import socket
import sys
import time
from typing import Optional

from repro.service.protocol import encode_message


class ServiceClient:
    """Blocking NDJSON client over a unix or TCP socket."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout_s: float = 60.0,
    ):
        if socket_path:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(socket_path)
        else:
            if port is None:
                raise ValueError("need socket_path or port")
            self._sock = socket.create_connection(
                (host, port), timeout=timeout_s
            )
        self._file = self._sock.makefile("rwb")
        self._seq = 0

    def request(
        self,
        op: str,
        params: Optional[dict] = None,
        deadline_s: Optional[float] = None,
        cls: Optional[str] = None,
        request_id: Optional[str] = None,
        traceparent: Optional[str] = None,
    ) -> dict:
        """Send one request and block for its response.

        Pass ``traceparent`` (W3C ``00-<trace>-<span>-01``) to join the
        request to an existing trace; the response echoes the server's
        ``traceparent`` for the request either way.
        """
        self._seq += 1
        message = {
            "id": request_id or f"c-{self._seq}",
            "op": op,
            "params": params or {},
        }
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        if cls is not None:
            message["class"] = cls
        if traceparent is not None:
            message["traceparent"] = traceparent
        self._file.write(encode_message(message).encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def watch_snapshot(self) -> dict:
        """One ``status`` + ``slo`` poll, merged for live dashboards."""
        status = self.request("status")
        slo = self.request("slo")
        return {
            "status": status.get("result", {}),
            "slo": slo.get("result", {}),
        }

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def render_watch_line(snapshot: dict) -> str:
    """One compact live-view line from :meth:`ServiceClient.watch_snapshot`."""
    status = snapshot.get("status", {})
    slo = snapshot.get("slo", {})
    queue = status.get("queue", {})
    depths = queue.get("depths", {})
    alerts = slo.get("alerts", [])
    burn = 0.0
    for entry in slo.get("classes", {}).values():
        for window in entry.get("windows", []):
            burn = max(burn, window.get("burn_rate", 0.0))
    alert = (
        ",".join(
            f"{a.get('class')}:{a.get('severity')}" for a in alerts
        )
        or "-"
    )
    pool = status.get("pool") or {}
    pool_part = ""
    if pool:
        states = pool.get("states", {})
        pool_part = (
            f" workers={states.get('idle', 0)}i/{states.get('busy', 0)}b"
            f"/{states.get('down', 0)}d"
            f" restarts={pool.get('restarts_total', 0)}"
            f" quarantined={pool.get('quarantine', {}).get('size', 0)}"
        )
    return (
        f"in_flight={status.get('in_flight', 0)}"
        f" queued={sum(depths.values()) if depths else 0}"
        f" served={status.get('responses_total', 0)}"
        f" shed={queue.get('shed_total', 0)}"
        f"{pool_part}"
        f" burn={burn:.2f}"
        f" alerts={alert}"
        f"{' DRAINING' if status.get('draining') else ''}"
    )


def _parse_param(raw: str):
    key, sep, value = raw.partition("=")
    if not sep:
        raise SystemExit(f"parameter {raw!r} is not key=value")
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value  # bare string


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="one-shot nmsld protocol client",
    )
    parser.add_argument("--socket", help="unix socket path")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int)
    parser.add_argument("--deadline", type=float, dest="deadline_s")
    parser.add_argument("--class", dest="cls", default=None)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument(
        "--traceparent",
        default=None,
        help="join an existing trace (W3C 00-<trace>-<span>-01)",
    )
    parser.add_argument(
        "op", help="operation (ping, check, diff, ...; 'watch' = live view)"
    )
    parser.add_argument(
        "params",
        nargs="*",
        help="op parameters as key=value (value parsed as JSON if it parses)",
    )
    args = parser.parse_args(argv)
    params = dict(_parse_param(raw) for raw in args.params)
    with ServiceClient(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        timeout_s=args.timeout,
    ) as client:
        if args.op == "watch":
            interval = float(params.get("interval", 2.0))
            count = params.get("count")
            remaining = int(count) if count is not None else None
            while remaining is None or remaining > 0:
                snapshot = client.watch_snapshot()
                sys.stdout.write(render_watch_line(snapshot) + "\n")
                sys.stdout.flush()
                if remaining is not None:
                    remaining -= 1
                    if remaining == 0:
                        break
                time.sleep(interval)
            return 0
        response = client.request(
            args.op, params, deadline_s=args.deadline_s, cls=args.cls,
            traceparent=args.traceparent,
        )
    sys.stdout.write(
        json.dumps(response, sort_keys=True, separators=(",", ":")) + "\n"
    )
    if response.get("ok"):
        return 0
    return int(response.get("error", {}).get("code", 500)) // 100


if __name__ == "__main__":
    sys.exit(main())
