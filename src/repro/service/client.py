"""A minimal synchronous client for the ``nmsld`` NDJSON protocol.

Library use::

    with ServiceClient(socket_path="/run/nmsld.sock") as client:
        response = client.request("check", {"spec": "internet.nmsl"},
                                  deadline_s=5.0)

CLI use (the CI smoke test and ad-hoc operators)::

    python -m repro.service.client --socket /run/nmsld.sock \\
        check spec=examples/campus.nmsl deadline_s=5

Responses print as deterministic one-line JSON; the exit status is 0
for ``ok`` responses and the error's HTTP-style code divided by 100
otherwise (503 → 5, 400 → 4), so shell pipelines can branch on class.
"""

from __future__ import annotations

import json
import socket
import sys
from typing import Optional

from repro.service.protocol import encode_message


class ServiceClient:
    """Blocking NDJSON client over a unix or TCP socket."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout_s: float = 60.0,
    ):
        if socket_path:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(socket_path)
        else:
            if port is None:
                raise ValueError("need socket_path or port")
            self._sock = socket.create_connection(
                (host, port), timeout=timeout_s
            )
        self._file = self._sock.makefile("rwb")
        self._seq = 0

    def request(
        self,
        op: str,
        params: Optional[dict] = None,
        deadline_s: Optional[float] = None,
        cls: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> dict:
        """Send one request and block for its response."""
        self._seq += 1
        message = {
            "id": request_id or f"c-{self._seq}",
            "op": op,
            "params": params or {},
        }
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        if cls is not None:
            message["class"] = cls
        self._file.write(encode_message(message).encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _parse_param(raw: str):
    key, sep, value = raw.partition("=")
    if not sep:
        raise SystemExit(f"parameter {raw!r} is not key=value")
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value  # bare string


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="one-shot nmsld protocol client",
    )
    parser.add_argument("--socket", help="unix socket path")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int)
    parser.add_argument("--deadline", type=float, dest="deadline_s")
    parser.add_argument("--class", dest="cls", default=None)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("op", help="operation (ping, check, diff, ...)")
    parser.add_argument(
        "params",
        nargs="*",
        help="op parameters as key=value (value parsed as JSON if it parses)",
    )
    args = parser.parse_args(argv)
    params = dict(_parse_param(raw) for raw in args.params)
    with ServiceClient(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        timeout_s=args.timeout,
    ) as client:
        response = client.request(
            args.op, params, deadline_s=args.deadline_s, cls=args.cls
        )
    sys.stdout.write(
        json.dumps(response, sort_keys=True, separators=(",", ":")) + "\n"
    )
    if response.get("ok"):
        return 0
    return int(response.get("error", {}).get("code", 500)) // 100


if __name__ == "__main__":
    sys.exit(main())
