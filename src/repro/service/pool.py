"""Fault-isolated multi-process worker pool: supervision, recovery,
poison-request quarantine.

The GIL bounds a single-process ``nmsld`` to one CPU of check
throughput, and — worse for a management plane that must itself be
dependable — one wedged or crashing request takes every other request
down with it.  This module shards request execution across *supervised
worker processes* the same way ``--jobs`` shards the checker: fork off
a warm parent heap (:func:`repro.consistency.checker.frozen_fork_heap`),
share the compiled structures copy-on-write, and keep the merge
deterministic.

Three layers, strictly separated so the whole supervision state machine
runs byte-identically under the simulated runtime:

:class:`WorkerSupervisor`
    The *pure* state machine: per-worker lifecycle
    (``idle``/``busy``/``down``), exponential restart backoff, replay
    decisions for in-flight requests, wedge detection thresholds, and
    the poison-request registry.  Fed nothing but events and clock
    readings — no processes, no wall time — so
    :class:`~repro.service.runtime.SimulatedServiceRuntime` can drive
    it with seeded crash/wedge/slow-leak chaos and produce
    byte-identical same-seed transcripts.

:class:`PoisonRegistry`
    Fingerprints (op + canonical params + spec content digest) of
    requests whose execution killed a worker.  Two kills quarantines
    the fingerprint: subsequent arrivals are refused at admission with
    a structured NM501 ``quarantined`` error, so one pathological spec
    cannot flap the fleet through the restart budget.

:class:`ProcessWorkerPool`
    The production driver: real forked worker processes joined to the
    parent by pipes carrying request/response/heartbeat frames.  A
    reader thread per worker feeds responses back to the asyncio loop;
    a monitor kills workers that miss heartbeats or overrun their
    request deadline; crashed workers restart on the supervisor's
    backoff schedule.  Worker span subtrees ship back inside response
    frames and are spliced into the parent trace, so a pooled check
    stays one connected trace.

Replay semantics (the idempotency contract, per op):

=========== ========== ==============================================
op          replayable rationale
=========== ========== ==============================================
``check``   yes        pure read of (spec text, warm cache)
``analyze`` yes        pure read
``diff``    yes        pure read of both specs
``compile`` yes        pure read
``ping``    yes        trivial (never pooled in practice)
``status``  yes        read of core state (never pooled)
``slo``     yes        read of tracker state (never pooled)
``rollout`` **no**     mutates elements; journal guards resume instead
``heal``    **no**     mutates elements
=========== ========== ==============================================

A replayable request interrupted by a worker death re-executes **once**
on a fresh worker; anything else (second death, non-idempotent op)
returns a structured 503 ``worker-lost``.  Rollout and heal never run
in workers at all (:data:`~repro.service.protocol.POOLED_OPS`), so a
worker death can never double-apply a campaign.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.service.protocol import IDEMPOTENT_OPS

#: Worker states.
IDLE, BUSY, DOWN = "idle", "busy", "down"


def request_fingerprint(op: str, params: dict) -> str:
    """The poison-registry key: op + canonical params + spec digest.

    The spec parameter(s) contribute their *content* hash when the file
    is readable, so editing a poisonous spec clears its quarantine (the
    fingerprint changes) while resubmitting it verbatim does not.
    Deterministic: canonical JSON, no wall-clock or filesystem-order
    input.
    """
    digest = hashlib.sha256()
    digest.update(op.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(
        json.dumps(params, sort_keys=True, separators=(",", ":"),
                   default=str).encode("utf-8")
    )
    for key in ("spec", "old", "new"):
        value = params.get(key)
        if isinstance(value, str):
            try:
                content = Path(value).read_bytes()
            except OSError:
                continue
            digest.update(b"\x00" + key.encode("utf-8") + b"\x00")
            digest.update(hashlib.sha256(content).digest())
    return digest.hexdigest()


class PoisonRegistry:
    """Kill counts and quarantine verdicts per request fingerprint."""

    def __init__(self, threshold: int = 2, limit: int = 4096):
        self.threshold = threshold
        self.limit = limit
        self._kills: Dict[str, int] = {}
        self._quarantined: Dict[str, dict] = {}
        self._lock = threading.Lock()

    def record_kill(self, fingerprint: str, op: str, now: float) -> int:
        """Account one worker death to *fingerprint*; returns the count.

        Reaching the threshold moves the fingerprint into quarantine.
        """
        with self._lock:
            count = self._kills.get(fingerprint, 0) + 1
            self._kills[fingerprint] = count
            if len(self._kills) > self.limit:
                # Evict the oldest-inserted non-quarantined entry.
                for key in self._kills:
                    if key not in self._quarantined:
                        del self._kills[key]
                        break
            if (
                count >= self.threshold
                and fingerprint not in self._quarantined
            ):
                self._quarantined[fingerprint] = {
                    "op": op,
                    "kills": count,
                    "at_s": round(now, 9),
                }
                while len(self._quarantined) > self.limit:
                    oldest = next(iter(self._quarantined))
                    del self._quarantined[oldest]
            return count

    def is_quarantined(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._quarantined

    def __len__(self) -> int:
        with self._lock:
            return len(self._quarantined)

    def snapshot(self) -> dict:
        with self._lock:
            entries = [
                {"fingerprint": fingerprint[:16], **info}
                for fingerprint, info in self._quarantined.items()
            ]
        return {"size": len(entries), "entries": entries[:32]}


@dataclass
class WorkerState:
    """Parent-side view of one worker slot."""

    worker_id: int
    state: str = DOWN
    pid: Optional[int] = None
    #: Request currently executing on the worker (None when idle/down).
    request: object = None
    busy_since: Optional[float] = None
    started_s: Optional[float] = None
    last_heartbeat_s: Optional[float] = None
    last_rss_kb: Optional[float] = None
    #: Consecutive failures since the last completed request — drives
    #: the exponential backoff; a served request resets it.
    failure_streak: int = 0
    restarts: int = 0
    recycles: int = 0
    served: int = 0
    down_until: Optional[float] = None
    #: Bumped on every death/recycle so stale completion events (the
    #: simulated runtime) and stale pipe frames (the process pool) for a
    #: previous incarnation are recognisably dead.
    epoch: int = 0


@dataclass(frozen=True)
class FailureDecision:
    """What the supervisor decided about one worker death."""

    worker_id: int
    reason: str
    #: ``replay`` (requeue the in-flight request), ``refuse`` (answer it
    #: with ``kind``), or ``restart`` (worker was idle; nothing to do
    #: for any request).
    action: str
    restart_at_s: float
    backoff_s: float
    request: object = None
    kind: Optional[str] = None
    message: Optional[str] = None
    fingerprint: Optional[str] = None
    kills: int = 0
    quarantined: bool = False


class WorkerSupervisor:
    """Pure worker-pool state machine: assignment, failure, backoff.

    Thread-safe (its own lock) but never blocks, sleeps, or reads a
    clock — every method takes ``now`` from the caller, so decisions
    are a pure function of the event sequence and the supervision
    config.  Owned by :class:`~repro.service.core.ServiceCore`; driven
    by the simulated runtime's event heap or by
    :class:`ProcessWorkerPool`'s reader/monitor threads.
    """

    def __init__(self, config, registry: Optional[PoisonRegistry] = None):
        self.config = config
        self.workers: Dict[int, WorkerState] = {
            worker_id: WorkerState(worker_id=worker_id)
            for worker_id in range(config.pool_workers)
        }
        self.registry = registry or PoisonRegistry(
            threshold=config.poison_threshold
        )
        self.restarts_total = 0
        self.replays_total = 0
        self.recycles_total = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Lifecycle events.
    # ------------------------------------------------------------------
    def worker_started(
        self, worker_id: int, now: float, pid: Optional[int] = None
    ) -> WorkerState:
        with self._lock:
            state = self.workers[worker_id]
            state.state = IDLE
            state.pid = pid
            state.request = None
            state.busy_since = None
            state.started_s = now
            state.last_heartbeat_s = now
            state.last_rss_kb = None
            state.down_until = None
            self._publish()
            return state

    def heartbeat(
        self,
        worker_id: int,
        now: float,
        rss_kb: Optional[float] = None,
    ) -> None:
        with self._lock:
            state = self.workers.get(worker_id)
            if state is None or state.state == DOWN:
                return
            state.last_heartbeat_s = now
            if rss_kb is not None:
                state.last_rss_kb = rss_kb

    # ------------------------------------------------------------------
    # Assignment.
    # ------------------------------------------------------------------
    def has_idle(self) -> bool:
        with self._lock:
            return any(s.state == IDLE for s in self.workers.values())

    @staticmethod
    def _affinity_key(request) -> str:
        params = getattr(request, "params", None) or {}
        spec = params.get("spec") or params.get("new")
        if isinstance(spec, str) and spec:
            return spec
        return request.op

    def assign(self, request, now: float) -> int:
        """Pick a worker for *request* and mark it busy.

        Spec-affinity first: the same spec prefers the same worker (its
        cache is warm there), spilling deterministically to the
        lowest-id idle worker when the preferred one is busy or down.
        Raises :class:`RuntimeError` if nothing is idle — callers gate
        on :meth:`has_idle` via the core's ``_can_start``.
        """
        with self._lock:
            idle = [
                s.worker_id
                for s in self.workers.values()
                if s.state == IDLE
            ]
            if not idle:
                raise RuntimeError("no idle worker to assign")
            key = self._affinity_key(request)
            preferred = int(
                hashlib.sha256(key.encode("utf-8")).hexdigest(), 16
            ) % len(self.workers)
            worker_id = preferred if preferred in idle else min(idle)
            state = self.workers[worker_id]
            state.state = BUSY
            state.request = request
            state.busy_since = now
            request.worker_id = worker_id
            request.attempts += 1
            self._publish()
            return worker_id

    def completed(
        self,
        worker_id: int,
        now: float,
        rss_kb: Optional[float] = None,
    ) -> Optional[str]:
        """The worker finished its request; returns ``"recycle"`` when
        its resident set crossed the leak limit and it should be
        gracefully replaced (no request is ever lost to a recycle)."""
        with self._lock:
            state = self.workers[worker_id]
            state.state = IDLE
            state.request = None
            state.busy_since = None
            state.served += 1
            state.failure_streak = 0
            if rss_kb is not None:
                state.last_rss_kb = rss_kb
            limit = self.config.worker_rss_limit_kb
            self._publish()
            if (
                limit is not None
                and state.last_rss_kb is not None
                and state.last_rss_kb > limit
            ):
                return "recycle"
            return None

    def recycle(self, worker_id: int, now: float) -> float:
        """Gracefully retire an (idle) worker; returns its restart time."""
        with self._lock:
            state = self.workers[worker_id]
            state.state = DOWN
            state.request = None
            state.epoch += 1
            state.recycles += 1
            state.restarts += 1
            state.down_until = now + self.config.restart_backoff_s
            self.recycles_total += 1
            self.restarts_total += 1
            self._publish()
            return state.down_until

    # ------------------------------------------------------------------
    # Failure.
    # ------------------------------------------------------------------
    def worker_failed(
        self, worker_id: int, reason: str, now: float
    ) -> FailureDecision:
        """One worker died (crash) or was killed (wedge/overrun).

        Decides the in-flight request's fate — replay once if
        idempotent and fresh, quarantine its fingerprint if it has now
        killed workers twice, structured 503 otherwise — and schedules
        the worker's restart with exponential backoff.
        """
        with self._lock:
            state = self.workers[worker_id]
            request = state.request
            state.state = DOWN
            state.request = None
            state.busy_since = None
            state.epoch += 1
            state.restarts += 1
            state.failure_streak += 1
            self.restarts_total += 1
            backoff = min(
                self.config.restart_backoff_cap_s,
                self.config.restart_backoff_s
                * (2 ** (state.failure_streak - 1)),
            )
            state.down_until = now + backoff
            self._publish()
            if request is None:
                return FailureDecision(
                    worker_id=worker_id, reason=reason, action="restart",
                    restart_at_s=state.down_until, backoff_s=backoff,
                )
            fingerprint = request_fingerprint(request.op, request.params)
            kills = self.registry.record_kill(fingerprint, request.op, now)
            if kills >= self.registry.threshold:
                return FailureDecision(
                    worker_id=worker_id, reason=reason, action="refuse",
                    restart_at_s=state.down_until, backoff_s=backoff,
                    request=request, kind="quarantined",
                    message=(
                        f"request fingerprint {fingerprint[:16]} killed "
                        f"{kills} workers and is quarantined (NM501); "
                        "edit the specification to clear it"
                    ),
                    fingerprint=fingerprint, kills=kills, quarantined=True,
                )
            if (
                request.op in IDEMPOTENT_OPS
                and request.attempts <= self.config.replay_limit
            ):
                self.replays_total += 1
                return FailureDecision(
                    worker_id=worker_id, reason=reason, action="replay",
                    restart_at_s=state.down_until, backoff_s=backoff,
                    request=request, fingerprint=fingerprint, kills=kills,
                )
            return FailureDecision(
                worker_id=worker_id, reason=reason, action="refuse",
                restart_at_s=state.down_until, backoff_s=backoff,
                request=request, kind="worker-lost",
                message=(
                    f"worker {worker_id} {reason} while executing this "
                    f"{request.op}"
                    + (
                        " and the replay budget is spent"
                        if request.op in IDEMPOTENT_OPS
                        else f"; {request.op} is not replayable"
                    )
                ),
                fingerprint=fingerprint, kills=kills,
            )

    def abandon(self, worker_id: int, now: float):
        """Drain timeout: take the busy worker's request (it is being
        answered with a refusal) and retire the slot without scheduling
        a restart.  Returns the request, or None if the slot was idle."""
        with self._lock:
            state = self.workers[worker_id]
            request = state.request
            state.state = DOWN
            state.request = None
            state.busy_since = None
            state.epoch += 1
            state.down_until = None
            self._publish()
            return request

    # ------------------------------------------------------------------
    # Health checks (polled by the monitor / simulated detect events).
    # ------------------------------------------------------------------
    def overdue_workers(self, now: float) -> List[Tuple[int, str]]:
        """Busy workers that must be killed: deadline overrun (the
        request's budget plus grace has lapsed — a wedged handler) or a
        stale heartbeat (the process is alive but unresponsive)."""
        overdue = []
        with self._lock:
            for state in self.workers.values():
                if state.state != BUSY:
                    continue
                request = state.request
                deadline = getattr(request, "deadline", None)
                if (
                    deadline is not None
                    and now > deadline.at_s + self.config.deadline_grace_s
                ):
                    overdue.append((state.worker_id, "overrun"))
                    continue
                if (
                    state.last_heartbeat_s is not None
                    and now - state.last_heartbeat_s
                    > self.config.heartbeat_timeout_s
                ):
                    overdue.append((state.worker_id, "wedge"))
        return overdue

    def due_restarts(self, now: float) -> List[int]:
        with self._lock:
            return [
                s.worker_id
                for s in self.workers.values()
                if s.state == DOWN
                and s.down_until is not None
                and s.down_until <= now
            ]

    def epoch(self, worker_id: int) -> int:
        with self._lock:
            return self.workers[worker_id].epoch

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {IDLE: 0, BUSY: 0, DOWN: 0}
            for state in self.workers.values():
                counts[state.state] += 1
            return counts

    def snapshot(self, now: float) -> dict:
        """The ``/healthz`` + ``nmslc top`` pool view."""
        with self._lock:
            workers = []
            for worker_id in sorted(self.workers):
                state = self.workers[worker_id]
                entry = {
                    "worker": worker_id,
                    "state": state.state,
                    "pid": state.pid,
                    "restarts": state.restarts,
                    "recycles": state.recycles,
                    "served": state.served,
                }
                if state.last_heartbeat_s is not None:
                    entry["heartbeat_age_s"] = round(
                        max(0.0, now - state.last_heartbeat_s), 3
                    )
                if state.last_rss_kb is not None:
                    entry["rss_kb"] = state.last_rss_kb
                if state.state == BUSY and state.request is not None:
                    entry["request_id"] = str(state.request.id)
                    entry["op"] = state.request.op
                workers.append(entry)
            return {
                "workers": workers,
                "states": self.counts(),
                "restarts_total": self.restarts_total,
                "replays_total": self.replays_total,
                "recycles_total": self.recycles_total,
                "quarantine": self.registry.snapshot(),
            }

    def _publish(self) -> None:
        o = obs.current()
        if not o.enabled:
            return
        for state_name, count in self.counts().items():
            o.gauge(
                "repro_service_pool_workers",
                "worker-pool slots by lifecycle state",
                state=state_name,
            ).set(count)
        o.gauge(
            "repro_service_pool_quarantine_size",
            "fingerprints in the poison-request registry",
        ).set(len(self.registry))


# ----------------------------------------------------------------------
# The production pool: real forked processes behind the supervisor.
# ----------------------------------------------------------------------
def _rss_kb() -> float:
    import resource

    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _pool_worker_main(
    worker_id: int,
    conn,
    spec_cache_limit: int,
    heartbeat_interval_s: float,
    measure_resources: bool,
) -> None:
    """The worker child: execute request frames until told to exit.

    Forked from the daemon, so it inherits the observability session
    (tracer, allocator) and — via :func:`frozen_fork_heap` — any warm
    parent heap copy-on-write.  Every request adopts its trace context,
    runs under a ``service.request`` span, and ships the spans it
    closed back in the response frame for the parent to splice.
    """
    import signal
    import time as _time

    from repro.deadline import Deadline
    from repro.errors import DeadlineExceeded, ReproError
    from repro.obs.context import TraceContext
    from repro.service.handlers import ServiceHandlers, SpecCache
    from repro.service.protocol import ProtocolError

    # The parent's asyncio signal handlers are meaningless here and a
    # SIGTERM to the process group must kill workers promptly.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    handlers = ServiceHandlers(cache=SpecCache(limit=spec_cache_limit))
    if measure_resources:
        # The only core attribute pooled handlers consult is the
        # resource-measurement flag (_op_check); a stub keeps the
        # accounting flowing without a real ServiceCore in the child.
        from types import SimpleNamespace

        handlers.core = SimpleNamespace(
            config=SimpleNamespace(measure_resources=True)
        )
    send_lock = threading.Lock()
    stop = threading.Event()

    def send(frame) -> None:
        with send_lock:
            conn.send(frame)

    def heartbeats() -> None:
        while not stop.wait(heartbeat_interval_s):
            try:
                send(("hb", {"rss_kb": _rss_kb()}))
            except (OSError, BrokenPipeError):
                return

    threading.Thread(
        target=heartbeats, name="heartbeat", daemon=True
    ).start()

    class _ChildRequest:
        """The slice of ServiceRequest the handlers consume."""

        def __init__(self, payload):
            self.id = payload["id"]
            self.op = payload["op"]
            self.params = payload["params"]
            self.cls = payload["cls"]
            remaining = payload.get("deadline_remaining_s")
            self.deadline = (
                Deadline(
                    at_s=_time.monotonic() + remaining,
                    clock=_time.monotonic,
                    label=self.op,
                )
                if remaining is not None
                else None
            )
            self.trace = (
                TraceContext(
                    trace_id=payload["trace_id"],
                    span_id=payload["span_id"],
                )
                if payload.get("trace_id")
                else None
            )
            self.resources: dict = {}

    while True:
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(frame, tuple) or frame[0] == "exit":
            break
        payload = frame[1]
        request = _ChildRequest(payload)
        o = obs.current()
        tracer = getattr(o, "tracer", None)
        span_mark = len(tracer) if tracer is not None else 0
        cpu0 = _time.thread_time() if measure_resources else None
        with o.adopt(request.trace):
            with o.span(
                "service.request",
                op=request.op, cls=request.cls,
                request_id=str(request.id), worker=worker_id,
            ):
                try:
                    result = handlers.execute(request)
                    failure = None
                except DeadlineExceeded as exc:
                    failure, result = ("deadline", str(exc)), None
                except ProtocolError as exc:
                    failure, result = (exc.kind, str(exc)), None
                except ReproError as exc:
                    failure, result = ("internal", str(exc)), None
                except Exception as exc:  # noqa: BLE001 - frame must go back
                    failure = ("internal", f"{type(exc).__name__}: {exc}")
                    result = None
        if cpu0 is not None:
            request.resources["cpu_s"] = round(
                max(0.0, _time.thread_time() - cpu0), 6
            )
        response = {
            "id": payload["id"],
            "ok": failure is None,
            "result": result,
            "rss_kb": _rss_kb(),
        }
        if failure is not None:
            response["kind"], response["message"] = failure
        if request.resources:
            response["resources"] = request.resources
        if tracer is not None:
            response["spans"] = tracer.export_spans(span_mark)
        try:
            send(("res", response))
        except (OSError, BrokenPipeError):
            break
    stop.set()


@dataclass
class _WorkerHandle:
    worker_id: int
    process: object
    conn: object
    epoch: int
    reader: Optional[threading.Thread] = None
    #: Why the monitor killed it (``wedge``/``overrun``), so the exit
    #: path reports the true reason rather than generic ``crash``.
    kill_reason: Optional[str] = None
    #: Set when the parent asked it to exit (drain/recycle) — its EOF
    #: is then expected and must not trigger crash recovery.
    retired: bool = False
    responded: "set" = field(default_factory=set)


class ProcessWorkerPool:
    """Forked worker processes driven by the asyncio runtime.

    The supervisor (owned by the core) makes every decision; this class
    only moves bytes and signals: spawn, dispatch frames, read frames,
    SIGKILL on the monitor's verdicts, respawn on the backoff schedule.
    """

    def __init__(self, runtime) -> None:
        import multiprocessing

        self.runtime = runtime
        self.core = runtime.core
        self.supervisor = self.core.pool
        if "fork" not in multiprocessing.get_all_start_methods():
            raise OSError("worker pool requires the fork start method")
        self._context = multiprocessing.get_context("fork")
        self._handles: Dict[int, _WorkerHandle] = {}
        self._loop = None
        self._stopping = False
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------
    def start(self, loop) -> None:
        self._loop = loop
        for worker_id in sorted(self.supervisor.workers):
            self._spawn(worker_id)

    def _spawn(self, worker_id: int) -> None:
        from repro.consistency.checker import frozen_fork_heap

        config = self.core.config
        parent_conn, child_conn = self._context.Pipe()
        with frozen_fork_heap():
            process = self._context.Process(
                target=_pool_worker_main,
                args=(
                    worker_id,
                    child_conn,
                    config.spec_cache_limit,
                    config.heartbeat_interval_s,
                    config.measure_resources,
                ),
                name=f"nmsld-pool-{worker_id}",
                daemon=True,
            )
            process.start()
        child_conn.close()
        state = self.core.pool_worker_started(worker_id, pid=process.pid)
        handle = _WorkerHandle(
            worker_id=worker_id,
            process=process,
            conn=parent_conn,
            epoch=state.epoch,
        )
        with self._lock:
            self._handles[worker_id] = handle
        handle.reader = threading.Thread(
            target=self._reader,
            args=(handle,),
            name=f"nmsld-pool-reader-{worker_id}",
            daemon=True,
        )
        handle.reader.start()

    def _respawn(self, worker_id: int, epoch: int) -> None:
        if self._stopping:
            return
        if self.supervisor.epoch(worker_id) != epoch:
            return  # a newer incarnation already handled this slot
        self._spawn(worker_id)
        self.runtime._kick()

    # -- frame plumbing -------------------------------------------------
    def _reader(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                kind, payload = handle.conn.recv()
            except (EOFError, OSError):
                break
            except (TypeError, ValueError):
                continue  # torn frame from a dying worker
            if kind == "hb":
                self.supervisor.heartbeat(
                    handle.worker_id,
                    self.core.clock(),
                    rss_kb=payload.get("rss_kb"),
                )
            elif kind == "res":
                self._call_on_loop(self._on_response, handle, payload)
        self._call_on_loop(self._on_exit, handle)

    def _call_on_loop(self, callback, *args) -> None:
        try:
            self._loop.call_soon_threadsafe(callback, *args)
        except RuntimeError:
            pass  # loop already closed; the daemon is exiting

    def dispatch(self, request) -> None:
        """Ship one assigned request to its worker."""
        with self._lock:
            handle = self._handles.get(request.worker_id)
        if handle is None:
            return  # death raced the dispatch; the exit path replays
        trace = request.trace
        payload = {
            "id": request.id,
            "op": request.op,
            "params": request.params,
            "cls": request.cls,
            "deadline_remaining_s": (
                max(0.001, request.deadline.at_s - self.core.clock())
                if request.deadline is not None
                else None
            ),
            "trace_id": trace.trace_id if trace is not None else None,
            "span_id": trace.span_id if trace is not None else None,
        }
        try:
            handle.conn.send(("req", payload))
        except (OSError, BrokenPipeError):
            pass  # reader sees the EOF; crash recovery takes over

    def _on_response(self, handle: _WorkerHandle, frame: dict) -> None:
        if self.supervisor.epoch(handle.worker_id) != handle.epoch:
            return  # a stale frame from a replaced incarnation
        state = self.supervisor.workers[handle.worker_id]
        request = state.request
        if request is None or request.id != frame.get("id"):
            return  # response for a request the supervisor already settled
        handle.responded.add(frame.get("id"))
        message = self.core.finish_remote(request, frame)
        recycle = self.core.pool_completed(
            request, rss_kb=frame.get("rss_kb")
        )
        import asyncio

        asyncio.ensure_future(
            self.runtime._send(request.reply_to, message)
        )
        if recycle == "recycle" and not self._stopping:
            self._retire(handle, reason="recycle")
        self.runtime._kick()

    def _on_exit(self, handle: _WorkerHandle) -> None:
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(timeout=5.0)
        if handle.retired or self._stopping:
            return  # expected exit: drain or recycle already settled it
        reason = handle.kill_reason or "crash"
        delivery, decision = self.core.worker_failed(
            handle.worker_id, reason
        )
        if delivery is not None:
            import asyncio

            asyncio.ensure_future(
                self.runtime._send(delivery[0], delivery[1])
            )
        delay = max(0.0, decision.restart_at_s - self.core.clock())
        epoch = self.supervisor.epoch(handle.worker_id)
        self._loop.call_later(
            delay, self._respawn, handle.worker_id, epoch
        )
        self.runtime._kick()

    # -- kills, recycles, drain -----------------------------------------
    def kill_worker(self, worker_id: int, reason: str) -> None:
        """SIGKILL one worker (monitor verdict: wedge/overrun)."""
        import os
        import signal as _signal

        with self._lock:
            handle = self._handles.get(worker_id)
        if handle is None or handle.process.pid is None:
            return
        handle.kill_reason = reason
        try:
            os.kill(handle.process.pid, _signal.SIGKILL)
        except ProcessLookupError:
            pass

    def _retire(self, handle: _WorkerHandle, reason: str) -> None:
        """Gracefully replace an idle worker (rss recycle)."""
        handle.retired = True
        restart_at = self.supervisor.recycle(
            handle.worker_id, self.core.clock()
        )
        self.core.audit_pool_event(
            "worker-recycle", handle.worker_id, reason=reason,
            pid=handle.process.pid,
        )
        self.core.count_pool_restart("recycle")
        try:
            handle.conn.send(("exit",))
        except (OSError, BrokenPipeError):
            pass
        epoch = self.supervisor.epoch(handle.worker_id)
        delay = max(0.0, restart_at - self.core.clock())
        self._loop.call_later(
            delay, self._respawn, handle.worker_id, epoch
        )

    async def stop(self, grace_s: float) -> None:
        """Bounded drain: graceful exits, then SIGKILL stragglers.

        Idle workers get an exit frame immediately.  Busy workers get
        *grace_s* to deliver their response (which still flows through
        the normal path); whatever is left is SIGKILLed and its
        in-flight request answered with a structured ``worker-lost``
        refusal — a drain never silently drops a request.
        """
        import asyncio
        import os
        import signal as _signal

        self._stopping = True
        with self._lock:
            handles = dict(self._handles)
        for handle in handles.values():
            state = self.supervisor.workers[handle.worker_id]
            if state.state != BUSY:
                handle.retired = True
                try:
                    handle.conn.send(("exit",))
                except (OSError, BrokenPipeError):
                    pass
        deadline = self.core.clock() + grace_s
        while self.core.clock() < deadline:
            if not any(
                s.state == BUSY
                for s in self.supervisor.workers.values()
            ):
                break
            await asyncio.sleep(0.05)
        for handle in handles.values():
            state = self.supervisor.workers[handle.worker_id]
            if state.state == BUSY:
                delivery = self.core.abandon_in_flight(
                    handle.worker_id, reason="drain-timeout"
                )
                if delivery is not None:
                    await self.runtime._send(delivery[0], delivery[1])
                handle.retired = True
                if handle.process.pid is not None:
                    try:
                        os.kill(handle.process.pid, _signal.SIGKILL)
                    except ProcessLookupError:
                        pass
            else:
                handle.retired = True
                try:
                    handle.conn.send(("exit",))
                except (OSError, BrokenPipeError):
                    pass
        for handle in handles.values():
            handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
