"""``nmsld`` — the always-on management-plane daemon.

Boots an :class:`~repro.service.runtime.AsyncServiceRuntime` serving the
NDJSON protocol on a unix socket (or TCP port) with the Prometheus
``/metrics`` + ``/healthz`` HTTP endpoint alongside.  SIGTERM or SIGINT
begins a graceful drain; the process exits 0 once the last in-flight
campaign has finished and its journal is closed.

Usage::

    nmsld --socket /run/nmsld.sock --http-port 9189 &
    echo '{"op":"check","params":{"spec":"internet.nmsl"}}' | nc -U /run/nmsld.sock
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro import __version__
from repro.obs import Observability, configure_logging, set_current
from repro.service.core import ServiceConfig
from repro.service.runtime import AsyncServiceRuntime


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmsld",
        description=(
            "Always-on NMSL management-plane service: compile, check, "
            "analyze, diff, rollout and heal over a newline-delimited-"
            "JSON socket, with admission control, priority classes, "
            "load shedding, deadlines, campaign bulkheads and graceful "
            "drain."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"nmsld {__version__}"
    )
    parser.add_argument(
        "--socket",
        metavar="PATH",
        help="serve on a unix domain socket at PATH",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address when --socket is not given (default %(default)s)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral, reported in --ready-file)",
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve GET /metrics and /healthz on this port (0 = ephemeral)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help=(
            "supervised worker processes for check/analyze/diff/compile "
            "and handler threads for everything else (default "
            "%(default)s; must be >= 1)"
        ),
    )
    parser.add_argument(
        "--no-worker-pool",
        action="store_true",
        help=(
            "run every op in-process on the thread pool (pre-pool "
            "behaviour: no fault isolation, no crash recovery)"
        ),
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "on SIGTERM, seconds busy workers get to finish before "
            "SIGKILL (their requests are answered with structured "
            "refusals; default %(default)s)"
        ),
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="bounded admission queue capacity (default %(default)s)",
    )
    parser.add_argument(
        "--max-campaigns",
        type=int,
        default=4,
        help="concurrent disjoint rollout/heal campaigns (default %(default)s)",
    )
    parser.add_argument(
        "--spec-cache",
        type=int,
        default=8,
        metavar="N",
        help="warm compiled specifications kept resident (default %(default)s)",
    )
    parser.add_argument(
        "--journal-dir",
        metavar="DIR",
        help="write one durable rollout journal per campaign under DIR",
    )
    parser.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write endpoint/pid JSON to PATH once listening",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        dest="metrics_path",
        help="write a final Prometheus scrape to PATH on drain",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        dest="trace_path",
        help=(
            "write the request trace to PATH on drain "
            "(.jsonl = event log, else Chrome trace_event JSON)"
        ),
    )
    parser.add_argument(
        "--audit-log",
        metavar="PATH",
        dest="audit_path",
        help="append one JSONL audit event per admission decision to PATH",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v info, -vv debug)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose, stream=sys.stderr)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1 (got {args.workers})")
    if args.drain_grace < 0:
        parser.error("--drain-grace must be >= 0")
    cpus = os.cpu_count() or 1
    if args.workers > cpus:
        print(
            f"nmsld: warning: --workers {args.workers} exceeds the "
            f"{cpus} available CPUs; extra workers only add memory and "
            "restart surface",
            file=sys.stderr,
        )
    previous = set_current(Observability(process_name="nmsld"))
    try:
        config = ServiceConfig(
            workers=args.workers,
            queue_capacity=args.queue_depth,
            max_campaigns=args.max_campaigns,
            spec_cache_limit=args.spec_cache,
            journal_dir=args.journal_dir,
            audit_path=args.audit_path,
            pool_workers=0 if args.no_worker_pool else args.workers,
            drain_grace_s=args.drain_grace,
        )
        runtime = AsyncServiceRuntime(
            config=config,
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            http_port=args.http_port,
            ready_file=args.ready_file,
            metrics_path=args.metrics_path,
            trace_path=args.trace_path,
        )
        try:
            return runtime.run()
        except KeyboardInterrupt:
            return 130
        except OSError as exc:
            # e.g. the socket path is owned by a live daemon, or the
            # bind itself failed: a clean diagnostic, not a traceback.
            print(f"nmsld: {exc}", file=sys.stderr)
            return 1
    finally:
        set_current(previous)


if __name__ == "__main__":
    sys.exit(main())
