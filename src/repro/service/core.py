"""The runtime-agnostic service core: every robustness decision.

:class:`ServiceCore` owns admission (per-class bounded queues with
explicit shedding), campaign bulkheads and breakers, per-request
deadlines, drain, and the metrics around all of them.  It is entirely
passive — it never sleeps, spawns, or reads a wall clock.  A *runtime*
(:class:`~repro.service.runtime.SimulatedServiceRuntime` or
:class:`~repro.service.runtime.AsyncServiceRuntime`) drives it through
four calls:

* :meth:`submit` — a request line arrived; returns the responses that
  are already decided (rejections, shed victims) and queues the rest;
* :meth:`next_action` — pick the next startable request (or an expired
  one to refuse), honouring priority order and bulkhead disjointness;
* :meth:`execute` — run one request to completion on the caller's
  thread, returning the wire response;
* :meth:`begin_drain` / :meth:`drain_responses` — stop admitting and
  refuse everything still queued, structured, never silent.

Because every decision lives here, the deterministic simulated runtime
exercises the *same* shed ordering, deadline expiry, and bulkhead logic
that production ``nmsld`` runs — the chaos suite's byte-identical
transcripts are transcripts of the real scheduler.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro import obs
from repro.deadline import Deadline
from repro.errors import DeadlineExceeded, ReproError
from repro.service.admission import AdmissionController
from repro.service.bulkhead import CampaignBulkheads
from repro.service.handlers import ServiceHandlers, SpecCache
from repro.service.protocol import (
    CAMPAIGN_OPS,
    CLASS_RANK,
    ProtocolError,
    error_response,
    parse_request,
    result_response,
)

#: Latency histogram buckets (seconds) for per-class service latency.
LATENCY_BUCKETS_S = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)


@dataclass
class ServiceConfig:
    """Tunables for one daemon instance."""

    workers: int = 4
    queue_capacity: int = 64
    max_campaigns: int = 4
    spec_cache_limit: int = 8
    journal_dir: Optional[str] = None
    #: Default deadline budget per class when the request names none.
    #: ``None`` disables the implicit deadline for that class.
    default_deadline_s: dict = field(
        default_factory=lambda: {
            "interactive": 30.0,
            "normal": 120.0,
            "bulk": None,
        }
    )
    #: Rough per-request service time used for ``retry_after_s`` hints
    #: on shed/queue-full refusals.
    nominal_service_s: float = 0.2
    #: Workers that only interactive-class requests may occupy: under
    #: bulk saturation at least this many slots stay free for checks
    #: and diffs, bounding interactive tail latency.  Clamped to
    #: ``workers - 1``; 0 disables the reservation.
    reserved_interactive_workers: int = 0
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 30.0


@dataclass
class ServiceRequest:
    """One admitted (or about-to-be-refused) request."""

    id: object
    op: str
    params: dict
    cls: str
    rank: int
    deadline: Optional[Deadline]
    deadline_s: Optional[float]
    cost_s: float
    arrival_s: float
    seq: int
    elements: frozenset = frozenset()
    campaign_key: Optional[str] = None
    started_s: Optional[float] = None
    #: Opaque reply handle for the runtime (e.g. the client connection).
    reply_to: object = None


class ServiceCore:
    """Scheduler state machine shared by both runtimes."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.config = config or ServiceConfig()
        #: Monotonic clock closure injected by the runtime.
        self.clock = clock or (lambda: 0.0)
        self.admission = AdmissionController(
            capacity=self.config.queue_capacity
        )
        self.bulkheads = CampaignBulkheads(
            max_campaigns=self.config.max_campaigns,
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self.handlers = ServiceHandlers(
            cache=SpecCache(limit=self.config.spec_cache_limit),
            journal_dir=self.config.journal_dir,
        )
        self.handlers.core = self
        self.draining = False
        self.in_flight = 0
        self._seq = 0
        self.started_s: Optional[float] = None
        self.requests_total = 0
        self.responses_total = 0
        #: Guards all scheduler state (queues, bulkheads, in_flight,
        #: counters).  The asyncio runtime mutates the core from the
        #: event loop (submit/next_action via executors) *and* from
        #: worker threads (execute -> finish); nothing here is safe
        #: without it.  Reentrant because e.g. submit needs
        #: _retry_after_hint while already holding the lock.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(
        self, line: str, reply_to: object = None, arrival_s: float = None
    ) -> Tuple[Optional[ServiceRequest], List[Tuple[object, dict]]]:
        """Admit one request line.

        Returns ``(admitted_request_or_None, responses)`` where each
        response is ``(reply_to, message)`` — refusals of this arrival
        and/or the shed victim it displaced.  Every refusal is
        structured; nothing is ever silently dropped.
        """
        now = self.clock() if arrival_s is None else arrival_s
        with self._lock:
            self.requests_total += 1
            try:
                parsed = parse_request(line)
            except ProtocolError as exc:
                self._count("invalid", "invalid", "rejected")
                return None, [
                    (
                        reply_to,
                        error_response(exc.request_id, exc.kind, str(exc)),
                    )
                ]
            request_id = parsed["id"]
            if request_id is None:
                request_id = f"req-{self.requests_total}"
            op, cls = parsed["op"], parsed["class"]

            if self.draining:
                self._count(op, cls, "draining")
                return None, [self._draining_refusal(reply_to, request_id, op, cls)]

            deadline_s = parsed["deadline_s"]
            if deadline_s is None:
                deadline_s = self.config.default_deadline_s.get(cls)
            deadline = (
                Deadline(at_s=now + deadline_s, clock=self.clock, label=op)
                if deadline_s is not None
                else None
            )
            self._seq += 1
            request = ServiceRequest(
                id=request_id,
                op=op,
                params=parsed["params"],
                cls=cls,
                rank=CLASS_RANK[cls],
                deadline=deadline,
                deadline_s=deadline_s,
                cost_s=parsed["cost_s"] or 0.0,
                arrival_s=now,
                seq=self._seq,
                reply_to=reply_to,
            )

        if op in CAMPAIGN_OPS:
            # Campaign planning resolves the element claim through the
            # spec cache; a cold cache compiles the spec, which can take
            # seconds at paper scale — never hold the core lock here.
            try:
                request.campaign_key, request.elements = (
                    self.handlers.campaign_plan(op, request.params)
                )
            except ProtocolError as exc:
                with self._lock:
                    self._count(op, cls, "rejected")
                return None, [
                    (
                        reply_to,
                        error_response(
                            request_id, exc.kind, str(exc), op=op, cls=cls
                        ),
                    )
                ]

        with self._lock:
            if self.draining:
                # Drain began while the campaign was being planned; the
                # queue has already been flushed, so anything admitted
                # now would never be answered.
                self._count(op, cls, "draining")
                return None, [self._draining_refusal(reply_to, request_id, op, cls)]
            if request.campaign_key is not None and not self.bulkheads.allow(
                request.campaign_key, now
            ):
                retry = self.bulkheads.retry_after(request.campaign_key, now)
                self._count(op, cls, "circuit-open")
                return None, [
                    (
                        reply_to,
                        error_response(
                            request_id, "circuit-open",
                            f"campaign {request.campaign_key} breaker open"
                            " after repeated failures",
                            op=op, cls=cls,
                            retry_after_s=round(retry, 6),
                        ),
                    )
                ]

            admitted, victim = self.admission.offer(request)
            responses: List[Tuple[object, dict]] = []
            if victim is not None:
                self._count(victim.op, victim.cls, "shed")
                o = obs.current()
                if o.enabled:
                    o.counter(
                        "repro_service_shed_total",
                        "requests evicted by higher-priority arrivals",
                        **{"class": victim.cls},
                    ).inc()
                responses.append(
                    (
                        victim.reply_to,
                        error_response(
                            victim.id, "shed",
                            f"shed by higher-priority {request.op} arrival"
                            " under overload",
                            op=victim.op, cls=victim.cls,
                            retry_after_s=self._retry_after_hint(),
                        ),
                    )
                )
            if not admitted:
                self._count(op, cls, "queue-full")
                responses.append(
                    (
                        reply_to,
                        error_response(
                            request_id, "queue-full",
                            f"queue at capacity ({self.admission.capacity})"
                            " with nothing lower-priority to shed",
                            op=op, cls=cls,
                            retry_after_s=self._retry_after_hint(),
                        ),
                    )
                )
                return None, responses
            return request, responses

    def _draining_refusal(
        self, reply_to: object, request_id: object, op: str, cls: str
    ) -> Tuple[object, dict]:
        return (
            reply_to,
            error_response(
                request_id, "draining",
                "daemon is draining; resubmit to its successor",
                op=op, cls=cls,
            ),
        )

    def _retry_after_hint(self) -> float:
        backlog = self.admission.depth() + self.in_flight
        workers = max(1, self.config.workers)
        return round(
            self.config.nominal_service_s * max(1, backlog) / workers, 6
        )

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def next_action(self) -> Optional[Tuple[ServiceRequest, str]]:
        """The next ``(request, "run" | "expired")``, or None.

        ``"run"`` requests have already acquired their bulkhead claim
        (if campaigns); the caller must execute then :meth:`finish`.
        ``"expired"`` requests must be refused via :meth:`expire`.
        """
        with self._lock:
            action = self.admission.pop_next(self.clock(), self._can_start)
            if action is None:
                return None
            request, disposition = action
            if disposition == "run" and request.campaign_key is not None:
                self.bulkheads.acquire(request.campaign_key, request.elements)
            if disposition == "run":
                self.in_flight += 1
                request.started_s = self.clock()
            return request, disposition

    def _can_start(self, request: ServiceRequest) -> bool:
        if request.rank > 0:
            reserve = min(
                self.config.reserved_interactive_workers,
                self.config.workers - 1,
            )
            free = self.config.workers - self.in_flight
            if free <= reserve:
                return False  # keep the reserved slots for interactive
        if request.campaign_key is None:
            return True
        return self.bulkheads.can_start(
            request.campaign_key, request.elements
        )

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def execute(self, request: ServiceRequest) -> dict:
        """Run *request*; always returns a wire response message."""
        try:
            result = self.handlers.execute(request)
        except DeadlineExceeded as exc:
            response = error_response(
                request.id, "deadline", str(exc),
                op=request.op, cls=request.cls,
            )
            return self.finish(request, response, outcome="deadline")
        except ProtocolError as exc:
            response = error_response(
                request.id, exc.kind, str(exc),
                op=request.op, cls=request.cls,
            )
            return self.finish(request, response, outcome=exc.kind)
        except ReproError as exc:
            response = error_response(
                request.id, "internal", str(exc),
                op=request.op, cls=request.cls,
            )
            return self.finish(request, response, outcome="internal")
        except Exception as exc:  # noqa: BLE001 - worker must not die
            response = error_response(
                request.id, "internal",
                f"{type(exc).__name__}: {exc}",
                op=request.op, cls=request.cls,
            )
            return self.finish(request, response, outcome="internal")
        response = result_response(
            request.id, request.op, request.cls, result,
            timing=self._timing(request),
        )
        ok = self.handlers.campaign_succeeded(request.op, result)
        return self.finish(
            request, response, outcome="ok" if ok else "incomplete"
        )

    def finish(
        self, request: ServiceRequest, response: dict, outcome: str
    ) -> dict:
        now = self.clock()
        with self._lock:
            self.in_flight -= 1
            if request.campaign_key is not None:
                self.bulkheads.release(
                    request.campaign_key, ok=(outcome == "ok"), now=now
                )
            self._count(request.op, request.cls, outcome)
            o = obs.current()
            if o.enabled and request.started_s is not None:
                o.histogram(
                    "repro_service_latency_seconds",
                    buckets=LATENCY_BUCKETS_S,
                    _help="request latency from arrival to response, by class",
                    **{"class": request.cls},
                ).observe(max(0.0, now - request.arrival_s))
            self.responses_total += 1
        return response

    def _timing(self, request: ServiceRequest) -> dict:
        now = self.clock()
        started = (
            request.started_s
            if request.started_s is not None
            else request.arrival_s
        )
        return {
            "queued_s": round(max(0.0, started - request.arrival_s), 6),
            "service_s": round(max(0.0, now - started), 6),
            "total_s": round(max(0.0, now - request.arrival_s), 6),
        }

    def expire(self, request: ServiceRequest) -> dict:
        """Refuse a request whose deadline lapsed while queued."""
        with self._lock:
            self._count(request.op, request.cls, "deadline")
            self.responses_total += 1
        return error_response(
            request.id, "deadline",
            f"deadline ({request.deadline_s}s) expired while queued",
            op=request.op, cls=request.cls,
        )

    # ------------------------------------------------------------------
    # Drain.
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        with self._lock:
            self.draining = True
        o = obs.current()
        if o.enabled:
            o.gauge(
                "repro_service_draining",
                "1 while the daemon refuses new work pending shutdown",
            ).set(1)

    def drain_responses(self) -> List[Tuple[object, dict]]:
        """Refuse everything still queued (drain flushes the queues)."""
        responses = []
        with self._lock:
            for request in self.admission.queued():
                self._count(request.op, request.cls, "draining")
                self.responses_total += 1
                responses.append(
                    (
                        request.reply_to,
                        error_response(
                            request.id, "draining",
                            "daemon drained before this request was served",
                            op=request.op, cls=request.cls,
                        ),
                    )
                )
            # Reset the queues; everything in them has now been answered.
            for name in list(self.admission._queues):
                self.admission._queues[name].clear()
        return responses

    @property
    def idle(self) -> bool:
        with self._lock:
            return self.in_flight == 0 and self.admission.depth() == 0

    # ------------------------------------------------------------------
    # Introspection / metrics.
    # ------------------------------------------------------------------
    def status_snapshot(self) -> dict:
        with self._lock:
            return {
                "draining": self.draining,
                "in_flight": self.in_flight,
                "queue": {
                    "depths": self.admission.depths(),
                    "capacity": self.admission.capacity,
                    "admitted_total": self.admission.admitted_total,
                    "shed_total": self.admission.shed_total,
                    "rejected_total": self.admission.rejected_total,
                },
                "campaigns": self.bulkheads.snapshot(),
                "cache": self.handlers.cache.stats(),
                "requests_total": self.requests_total,
                "responses_total": self.responses_total,
            }

    def _count(self, op: str, cls: str, outcome: str) -> None:
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_service_requests_total",
                "requests by op, class and outcome",
                op=op, outcome=outcome, **{"class": cls},
            ).inc()
