"""The runtime-agnostic service core: every robustness decision.

:class:`ServiceCore` owns admission (per-class bounded queues with
explicit shedding), campaign bulkheads and breakers, per-request
deadlines, drain, and the metrics around all of them.  It is entirely
passive — it never sleeps, spawns, or reads a wall clock.  A *runtime*
(:class:`~repro.service.runtime.SimulatedServiceRuntime` or
:class:`~repro.service.runtime.AsyncServiceRuntime`) drives it through
four calls:

* :meth:`submit` — a request line arrived; returns the responses that
  are already decided (rejections, shed victims) and queues the rest;
* :meth:`next_action` — pick the next startable request (or an expired
  one to refuse), honouring priority order and bulkhead disjointness;
* :meth:`execute` — run one request to completion on the caller's
  thread, returning the wire response;
* :meth:`begin_drain` / :meth:`drain_responses` — stop admitting and
  refuse everything still queued, structured, never silent.

Because every decision lives here, the deterministic simulated runtime
exercises the *same* shed ordering, deadline expiry, and bulkhead logic
that production ``nmsld`` runs — the chaos suite's byte-identical
transcripts are transcripts of the real scheduler.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro import obs
from repro.deadline import Deadline
from repro.errors import DeadlineExceeded, ReproError
from repro.obs.audit import AuditLog
from repro.obs.context import IdAllocator, TraceContext
from repro.obs.slo import SloTracker
from repro.service.admission import AdmissionController
from repro.service.bulkhead import CampaignBulkheads
from repro.service.handlers import ServiceHandlers, SpecCache
from repro.service.pool import WorkerSupervisor, request_fingerprint
from repro.service.protocol import (
    CAMPAIGN_OPS,
    CLASS_RANK,
    CLIENT_FAULT_KINDS,
    POOLED_OPS,
    ProtocolError,
    error_response,
    parse_request,
    result_response,
)

#: Latency histogram buckets (seconds) for per-class service latency.
LATENCY_BUCKETS_S = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)


def _safe_id(request_id) -> Optional[str]:
    """Request ids as audit-log strings (ints become their repr)."""
    return None if request_id is None else str(request_id)


@dataclass
class ServiceConfig:
    """Tunables for one daemon instance."""

    workers: int = 4
    queue_capacity: int = 64
    max_campaigns: int = 4
    spec_cache_limit: int = 8
    journal_dir: Optional[str] = None
    #: Default deadline budget per class when the request names none.
    #: ``None`` disables the implicit deadline for that class.
    default_deadline_s: dict = field(
        default_factory=lambda: {
            "interactive": 30.0,
            "normal": 120.0,
            "bulk": None,
        }
    )
    #: Rough per-request service time used for ``retry_after_s`` hints
    #: on shed/queue-full refusals.
    nominal_service_s: float = 0.2
    #: Workers that only interactive-class requests may occupy: under
    #: bulk saturation at least this many slots stay free for checks
    #: and diffs, bounding interactive tail latency.  Clamped to
    #: ``workers - 1``; 0 disables the reservation.
    reserved_interactive_workers: int = 0
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    #: JSONL audit-log path (None keeps the bounded in-memory tail only).
    audit_path: Optional[str] = None
    #: Seed for trace/span id minting when no tracer is installed.
    trace_seed: int = 0x1989
    #: Per-class SLO objectives (None = repro.obs.slo defaults).
    slo_objectives: Optional[dict] = None
    #: Measure per-request CPU seconds and return a ``resources`` block
    #: in response envelopes.  Off by default: the simulated runtime's
    #: transcripts must stay byte-identical, and thread CPU time is not.
    measure_resources: bool = False
    #: Supervised worker *processes* for pooled ops (check/analyze/
    #: diff/compile).  0 disables the pool entirely: everything runs
    #: in-process on the thread pool, exactly as before the pool
    #: existed.  When > 0, ``workers`` still bounds the in-process
    #: thread pool that serves local ops (ping/status/slo/rollout/heal).
    pool_workers: int = 0
    #: Worker heartbeat cadence and the staleness that marks a busy
    #: worker wedged (the heartbeat thread cannot run — e.g. a handler
    #: holding the GIL in a C loop, or the process is stopped).
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 5.0
    #: Extra time past the request deadline before a busy worker is
    #: declared overrun and SIGKILLed (the in-process cooperative
    #: deadline should have fired long before this).
    deadline_grace_s: float = 2.0
    #: Exponential restart backoff: ``base * 2**(streak-1)``, capped.
    restart_backoff_s: float = 0.5
    restart_backoff_cap_s: float = 8.0
    #: How many times an idempotent request may be re-executed after a
    #: worker death before it is refused with ``worker-lost``.
    replay_limit: int = 1
    #: Worker kills by one request fingerprint before quarantine.
    poison_threshold: int = 2
    #: SIGTERM drain: seconds busy workers get to finish before SIGKILL.
    drain_grace_s: float = 10.0
    #: Gracefully recycle a worker whose resident set exceeds this (kB);
    #: None disables the slow-leak guard.
    worker_rss_limit_kb: Optional[float] = None


@dataclass
class ServiceRequest:
    """One admitted (or about-to-be-refused) request."""

    id: object
    op: str
    params: dict
    cls: str
    rank: int
    deadline: Optional[Deadline]
    deadline_s: Optional[float]
    cost_s: float
    arrival_s: float
    seq: int
    elements: frozenset = frozenset()
    campaign_key: Optional[str] = None
    started_s: Optional[float] = None
    #: Opaque reply handle for the runtime (e.g. the client connection).
    reply_to: object = None
    #: The request's trace context: trace id from the client's
    #: ``traceparent`` when given (else freshly minted), span id naming
    #: the request's root — every span, journal record and audit event
    #: the request produces carries ``trace.trace_id``.
    trace: Optional[TraceContext] = None
    #: Per-request resource accounting (cpu_s, facts_scanned, ...),
    #: filled by execute()/handlers and echoed in the response envelope
    #: when ``config.measure_resources`` is on.
    resources: dict = field(default_factory=dict)
    #: Pool-worker slot currently executing this request (pool mode).
    worker_id: Optional[int] = None
    #: Execution attempts so far — bumped by the supervisor on assign;
    #: a replayed request arrives at its second worker with attempts=1.
    attempts: int = 0


class ServiceCore:
    """Scheduler state machine shared by both runtimes."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.config = config or ServiceConfig()
        #: Monotonic clock closure injected by the runtime.
        self.clock = clock or (lambda: 0.0)
        self.admission = AdmissionController(
            capacity=self.config.queue_capacity
        )
        self.bulkheads = CampaignBulkheads(
            max_campaigns=self.config.max_campaigns,
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self.handlers = ServiceHandlers(
            cache=SpecCache(limit=self.config.spec_cache_limit),
            journal_dir=self.config.journal_dir,
        )
        self.handlers.core = self
        #: Fallback id mint for processes with no tracer installed; when
        #: a tracer exists its allocator is used instead so span ids
        #: stay unique process-wide (see :meth:`_ids`).
        self._own_ids = IdAllocator(seed=self.config.trace_seed)
        self.audit = AuditLog(path=self.config.audit_path)
        self.slo = SloTracker(objectives=self.config.slo_objectives)
        #: The worker-pool supervisor (None when the pool is disabled).
        #: The core makes every supervision *decision*; runtimes only
        #: deliver its events (spawn, kill, restart-at).
        self.pool: Optional[WorkerSupervisor] = (
            WorkerSupervisor(self.config)
            if self.config.pool_workers > 0
            else None
        )
        #: Requests requeued after a worker death, served before the
        #: admission queues (they already waited their turn once).
        self._replays: "collections.deque[ServiceRequest]" = (
            collections.deque()
        )
        self.draining = False
        self.in_flight = 0
        #: In-process executions only (local ops in pool mode); bounds
        #: the thread pool separately from the worker processes.
        self.in_flight_local = 0
        self._seq = 0
        self.started_s: Optional[float] = None
        self.requests_total = 0
        self.responses_total = 0
        #: Guards all scheduler state (queues, bulkheads, in_flight,
        #: counters).  The asyncio runtime mutates the core from the
        #: event loop (submit/next_action via executors) *and* from
        #: worker threads (execute -> finish); nothing here is safe
        #: without it.  Reentrant because e.g. submit needs
        #: _retry_after_hint while already holding the lock.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(
        self, line: str, reply_to: object = None, arrival_s: float = None
    ) -> Tuple[Optional[ServiceRequest], List[Tuple[object, dict]]]:
        """Admit one request line.

        Returns ``(admitted_request_or_None, responses)`` where each
        response is ``(reply_to, message)`` — refusals of this arrival
        and/or the shed victim it displaced.  Every refusal is
        structured; nothing is ever silently dropped.
        """
        now = self.clock() if arrival_s is None else arrival_s
        with self._lock:
            self.requests_total += 1
            try:
                parsed = parse_request(line)
            except ProtocolError as exc:
                self._count("invalid", "invalid", "rejected")
                self.audit.event(
                    "reject", request_id=_safe_id(exc.request_id),
                    at_s=now, kind=exc.kind, message=str(exc),
                )
                return None, [
                    (
                        reply_to,
                        error_response(exc.request_id, exc.kind, str(exc)),
                    )
                ]
            request_id = parsed["id"]
            if request_id is None:
                request_id = f"req-{self.requests_total}"
            op, cls = parsed["op"], parsed["class"]
            trace = self._mint_context(parsed.get("traceparent"))

            if self.draining:
                self._count(op, cls, "draining")
                self._audit_refusal(
                    "draining", trace, request_id, op, cls, now
                )
                return None, [
                    self._draining_refusal(reply_to, request_id, op, cls, trace)
                ]

            deadline_s = parsed["deadline_s"]
            if deadline_s is None:
                deadline_s = self.config.default_deadline_s.get(cls)
            deadline = (
                Deadline(at_s=now + deadline_s, clock=self.clock, label=op)
                if deadline_s is not None
                else None
            )
            self._seq += 1
            request = ServiceRequest(
                id=request_id,
                op=op,
                params=parsed["params"],
                cls=cls,
                rank=CLASS_RANK[cls],
                deadline=deadline,
                deadline_s=deadline_s,
                cost_s=parsed["cost_s"] or 0.0,
                arrival_s=now,
                seq=self._seq,
                reply_to=reply_to,
                trace=trace,
            )

        if self.pool is not None and op in POOLED_OPS:
            # The poison registry is consulted at admission (fingerprint
            # hashing reads spec files — never under the core lock): a
            # request whose fingerprint already killed two workers is
            # refused up front instead of burning another restart.
            fingerprint = request_fingerprint(op, request.params)
            if self.pool.registry.is_quarantined(fingerprint):
                with self._lock:
                    self._count(op, cls, "quarantined")
                    self._audit_refusal(
                        "quarantined", trace, request_id, op, cls,
                        self.clock(), fingerprint=fingerprint[:16],
                    )
                return None, [
                    (
                        reply_to,
                        error_response(
                            request_id, "quarantined",
                            f"request fingerprint {fingerprint[:16]} is "
                            "quarantined after killing "
                            f"{self.pool.registry.threshold} workers; edit "
                            "the specification to clear it",
                            op=op, cls=cls,
                            traceparent=trace.traceparent(),
                            diagnostic="NM501",
                        ),
                    )
                ]

        if op in CAMPAIGN_OPS:
            # Campaign planning resolves the element claim through the
            # spec cache; a cold cache compiles the spec, which can take
            # seconds at paper scale — never hold the core lock here.
            try:
                request.campaign_key, request.elements = (
                    self.handlers.campaign_plan(op, request.params)
                )
            except ProtocolError as exc:
                with self._lock:
                    self._count(op, cls, "rejected")
                    self._audit_refusal(
                        exc.kind, trace, request_id, op, cls, self.clock(),
                        message=str(exc),
                    )
                return None, [
                    (
                        reply_to,
                        error_response(
                            request_id, exc.kind, str(exc), op=op, cls=cls,
                            traceparent=trace.traceparent(),
                        ),
                    )
                ]

        with self._lock:
            if self.draining:
                # Drain began while the campaign was being planned; the
                # queue has already been flushed, so anything admitted
                # now would never be answered.
                self._count(op, cls, "draining")
                self._audit_refusal(
                    "draining", trace, request_id, op, cls, self.clock()
                )
                return None, [
                    self._draining_refusal(reply_to, request_id, op, cls, trace)
                ]
            if request.campaign_key is not None and not self.bulkheads.allow(
                request.campaign_key, now
            ):
                retry = self.bulkheads.retry_after(request.campaign_key, now)
                self._count(op, cls, "circuit-open")
                self._audit_refusal(
                    "circuit-open", trace, request_id, op, cls, now,
                    campaign=request.campaign_key,
                )
                return None, [
                    (
                        reply_to,
                        error_response(
                            request_id, "circuit-open",
                            f"campaign {request.campaign_key} breaker open"
                            " after repeated failures",
                            op=op, cls=cls,
                            traceparent=trace.traceparent(),
                            retry_after_s=round(retry, 6),
                        ),
                    )
                ]

            admitted, victim = self.admission.offer(request)
            responses: List[Tuple[object, dict]] = []
            if victim is not None:
                self._count(victim.op, victim.cls, "shed")
                self._audit_refusal(
                    "shed", victim.trace, victim.id, victim.op, victim.cls,
                    now, latency_s=max(0.0, now - victim.arrival_s),
                    shed_by=str(request_id),
                )
                o = obs.current()
                if o.enabled:
                    o.counter(
                        "repro_service_shed_total",
                        "requests evicted by higher-priority arrivals",
                        **{"class": victim.cls},
                    ).inc()
                responses.append(
                    (
                        victim.reply_to,
                        error_response(
                            victim.id, "shed",
                            f"shed by higher-priority {request.op} arrival"
                            " under overload",
                            op=victim.op, cls=victim.cls,
                            traceparent=(
                                victim.trace.traceparent()
                                if victim.trace is not None
                                else None
                            ),
                            retry_after_s=self._retry_after_hint(),
                        ),
                    )
                )
            if not admitted:
                self._count(op, cls, "queue-full")
                self._audit_refusal(
                    "queue-full", trace, request_id, op, cls, now
                )
                responses.append(
                    (
                        reply_to,
                        error_response(
                            request_id, "queue-full",
                            f"queue at capacity ({self.admission.capacity})"
                            " with nothing lower-priority to shed",
                            op=op, cls=cls,
                            traceparent=trace.traceparent(),
                            retry_after_s=self._retry_after_hint(),
                        ),
                    )
                )
                return None, responses
            self.audit.event(
                "admit", trace=trace, request_id=_safe_id(request_id),
                op=op, cls=cls, at_s=now,
                queue_depth=self.admission.depth(),
            )
            return request, responses

    def _mint_context(self, traceparent: Optional[str]) -> TraceContext:
        """The request's trace context: client's trace id, fresh span id.

        The span id names the request's *root*; every span the request
        produces descends from it.  Ids come from the installed tracer's
        allocator when there is one (so span ids stay unique across the
        whole process trace) and from the core's own seeded allocator
        otherwise.
        """
        ids = getattr(getattr(obs.current(), "tracer", None), "ids", None)
        if ids is None:
            ids = self._own_ids
        if traceparent:
            parent = TraceContext.from_traceparent(traceparent)
            return TraceContext(
                trace_id=parent.trace_id, span_id=ids.span_id()
            )
        return TraceContext(trace_id=ids.trace_id(), span_id=ids.span_id())

    def _audit_refusal(
        self, kind, trace, request_id, op, cls, now, latency_s=0.0, **fields
    ) -> None:
        self.audit.event(
            kind, trace=trace, request_id=_safe_id(request_id),
            op=op, cls=cls, at_s=now, **fields,
        )
        # Client faults (bad params, uncompilable spec) are the
        # requester's problem, not unavailability.
        if kind not in CLIENT_FAULT_KINDS:
            self.slo.record(cls, latency_s, ok=False, now=now)

    def _draining_refusal(
        self, reply_to: object, request_id: object, op: str, cls: str,
        trace: Optional[TraceContext] = None,
    ) -> Tuple[object, dict]:
        return (
            reply_to,
            error_response(
                request_id, "draining",
                "daemon is draining; resubmit to its successor",
                op=op, cls=cls,
                traceparent=(
                    trace.traceparent() if trace is not None else None
                ),
            ),
        )

    def _retry_after_hint(self) -> float:
        backlog = self.admission.depth() + self.in_flight
        workers = max(1, self.config.workers)
        return round(
            self.config.nominal_service_s * max(1, backlog) / workers, 6
        )

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def next_action(self) -> Optional[Tuple[ServiceRequest, str]]:
        """The next ``(request, disposition)``, or None.

        ``"run"`` requests execute in-process (the caller runs
        :meth:`execute` then the response is done); ``"remote"``
        requests (pool mode only) have been assigned a worker slot —
        the caller ships them to that worker and later settles them via
        :meth:`finish_remote` or :meth:`worker_failed`.  ``"expired"``
        requests must be refused via :meth:`expire`.  Replayed requests
        are served before the admission queues — they already waited
        their turn once.
        """
        with self._lock:
            now = self.clock()
            while self._replays:
                request = self._replays[0]
                if (
                    request.deadline is not None
                    and now > request.deadline.at_s
                ):
                    self._replays.popleft()
                    return request, "expired"
                if not self._can_start(request):
                    # Head-of-line replay needs an idle worker; local
                    # ops in the admission queues may still start.
                    break
                self._replays.popleft()
                return self._start(request)
            action = self.admission.pop_next(now, self._can_start)
            if action is None:
                return None
            request, disposition = action
            if disposition == "expired":
                return request, disposition
            return self._start(request)

    def _start(
        self, request: ServiceRequest
    ) -> Tuple[ServiceRequest, str]:
        """Mark one startable request running; picks its disposition."""
        if request.campaign_key is not None:
            self.bulkheads.acquire(request.campaign_key, request.elements)
        self.in_flight += 1
        request.started_s = self.clock()
        if self.pool is not None and request.op in POOLED_OPS:
            self.pool.assign(request, self.clock())
            return request, "remote"
        self.in_flight_local += 1
        return request, "run"

    def _can_start(self, request: ServiceRequest) -> bool:
        if self.pool is not None and request.op in POOLED_OPS:
            # Pooled ops gate on an idle worker process; the class
            # reservation below protects the in-process thread pool.
            return self.pool.has_idle()
        if request.rank > 0:
            reserve = min(
                self.config.reserved_interactive_workers,
                self.config.workers - 1,
            )
            free = self.config.workers - self.in_flight_local
            if free <= reserve:
                return False  # keep the reserved slots for interactive
        if (
            self.pool is not None
            and self.in_flight_local >= self.config.workers
        ):
            # With the pool on, remote requests do not occupy threads,
            # so the runtimes no longer gate dispatch on ``in_flight``;
            # local thread capacity is enforced here instead.
            return False
        if request.campaign_key is None:
            return True
        return self.bulkheads.can_start(
            request.campaign_key, request.elements
        )

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def execute(self, request: ServiceRequest) -> dict:
        """Run *request*; always returns a wire response message.

        The worker thread *adopts* the request's trace context for the
        duration, so every span the handler opens — including subtrees
        spliced back from forked checker shards — carries the request's
        trace id; when ``config.measure_resources`` is on the thread's
        CPU seconds are attributed to the request.
        """
        o = obs.current()
        traceparent = (
            request.trace.traceparent() if request.trace is not None else None
        )
        cpu0 = (
            time.thread_time() if self.config.measure_resources else None
        )
        with o.adopt(request.trace):
            with o.span(
                "service.request",
                op=request.op, cls=request.cls, request_id=str(request.id),
            ):
                try:
                    result = self.handlers.execute(request)
                    failure = None
                except DeadlineExceeded as exc:
                    failure, result = ("deadline", str(exc)), None
                except ProtocolError as exc:
                    failure, result = (exc.kind, str(exc)), None
                except ReproError as exc:
                    failure, result = ("internal", str(exc)), None
                except Exception as exc:  # noqa: BLE001 - worker must not die
                    failure = ("internal", f"{type(exc).__name__}: {exc}")
                    result = None
        if cpu0 is not None:
            request.resources["cpu_s"] = round(
                max(0.0, time.thread_time() - cpu0), 6
            )
        if failure is not None:
            kind, message = failure
            if kind == "vetoed":
                self.audit.event(
                    "veto", trace=request.trace,
                    request_id=_safe_id(request.id),
                    op=request.op, cls=request.cls, at_s=self.clock(),
                    message=message,
                )
            response = error_response(
                request.id, kind, message,
                op=request.op, cls=request.cls, traceparent=traceparent,
            )
            outcome = "deadline" if kind == "deadline" else kind
            return self.finish(request, response, outcome=outcome)
        response = result_response(
            request.id, request.op, request.cls, result,
            timing=self._timing(request),
            traceparent=traceparent,
            resources=(
                dict(sorted(request.resources.items()))
                if self.config.measure_resources and request.resources
                else None
            ),
        )
        ok = self.handlers.campaign_succeeded(request.op, result)
        return self.finish(
            request, response, outcome="ok" if ok else "incomplete"
        )

    def finish(
        self, request: ServiceRequest, response: dict, outcome: str
    ) -> dict:
        now = self.clock()
        latency_s = max(0.0, now - request.arrival_s)
        with self._lock:
            self.in_flight -= 1
            if request.worker_id is None:
                self.in_flight_local -= 1
            if request.campaign_key is not None:
                self.bulkheads.release(
                    request.campaign_key, ok=(outcome == "ok"), now=now
                )
            self._count(request.op, request.cls, outcome)
            o = obs.current()
            if o.enabled and request.started_s is not None:
                o.histogram(
                    "repro_service_latency_seconds",
                    buckets=LATENCY_BUCKETS_S,
                    _help="request latency from arrival to response, by class",
                    **{"class": request.cls},
                ).observe(latency_s)
            ok = bool(response.get("ok"))
            error_kind = (
                None if ok else (response.get("error") or {}).get("kind")
            )
            if ok or error_kind not in CLIENT_FAULT_KINDS:
                self.slo.record(request.cls, latency_s, ok=ok, now=now)
            self.audit.event(
                "response", trace=request.trace,
                request_id=_safe_id(request.id),
                op=request.op, cls=request.cls, at_s=now,
                outcome=outcome, latency_s=round(latency_s, 9),
            )
            self.responses_total += 1
        return response

    def _timing(self, request: ServiceRequest) -> dict:
        now = self.clock()
        started = (
            request.started_s
            if request.started_s is not None
            else request.arrival_s
        )
        return {
            "queued_s": round(max(0.0, started - request.arrival_s), 6),
            "service_s": round(max(0.0, now - started), 6),
            "total_s": round(max(0.0, now - request.arrival_s), 6),
        }

    def expire(self, request: ServiceRequest) -> dict:
        """Refuse a request whose deadline lapsed while queued."""
        now = self.clock()
        with self._lock:
            self._count(request.op, request.cls, "deadline")
            self._audit_refusal(
                "deadline", request.trace, request.id,
                request.op, request.cls, now,
                latency_s=max(0.0, now - request.arrival_s),
                queued=True,
            )
            self.responses_total += 1
        return error_response(
            request.id, "deadline",
            f"deadline ({request.deadline_s}s) expired while queued",
            op=request.op, cls=request.cls,
            traceparent=(
                request.trace.traceparent()
                if request.trace is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Worker pool (pool mode only): remote completion and supervision.
    # ------------------------------------------------------------------
    def finish_remote(self, request: ServiceRequest, frame: dict) -> dict:
        """Settle a request from its worker's response frame.

        The worker shipped its span subtree inside the frame; splicing
        it here keeps a pooled check one connected trace (the same
        ``export_spans``/``splice`` contract the forked checker shards
        use).  Accounting then flows through :meth:`finish` exactly as
        an in-process execution would.
        """
        o = obs.current()
        tracer = getattr(o, "tracer", None)
        if tracer is not None and frame.get("spans"):
            tracer.splice(frame["spans"])
        traceparent = (
            request.trace.traceparent() if request.trace is not None else None
        )
        if frame.get("resources"):
            request.resources.update(frame["resources"])
        if frame.get("ok"):
            response = result_response(
                request.id, request.op, request.cls, frame.get("result"),
                timing=self._timing(request),
                traceparent=traceparent,
                resources=(
                    dict(sorted(request.resources.items()))
                    if self.config.measure_resources and request.resources
                    else None
                ),
            )
            return self.finish(request, response, outcome="ok")
        kind = frame.get("kind", "internal")
        response = error_response(
            request.id, kind, frame.get("message", "worker failure"),
            op=request.op, cls=request.cls, traceparent=traceparent,
        )
        return self.finish(request, response, outcome=kind)

    def pool_worker_started(self, worker_id: int, pid=None):
        """A worker came up (boot or post-crash restart)."""
        now = self.clock()
        with self._lock:
            state = self.pool.worker_started(worker_id, now, pid=pid)
            self.audit.event(
                "worker-restart" if state.restarts else "worker-start",
                at_s=now, worker=worker_id, pid=pid,
                restarts=state.restarts,
            )
            return state

    def pool_completed(
        self, request: ServiceRequest, rss_kb=None
    ) -> Optional[str]:
        """Free the request's worker slot; returns ``"recycle"`` when
        the slow-leak guard wants the worker gracefully replaced."""
        with self._lock:
            return self.pool.completed(
                request.worker_id, self.clock(), rss_kb=rss_kb
            )

    def worker_failed(
        self, worker_id: int, reason: str
    ) -> Tuple[Optional[Tuple[object, dict]], "FailureDecision"]:
        """A worker died (*reason*: crash/wedge/overrun): decide the
        in-flight request's fate and the restart schedule.

        Returns ``(delivery, decision)``: *delivery* is a
        ``(reply_to, response)`` to send now (refusals), or None (the
        request was requeued for replay, or the worker was idle).  The
        runtime restarts the worker at ``decision.restart_at_s``.
        """
        now = self.clock()
        with self._lock:
            decision = self.pool.worker_failed(worker_id, reason, now)
            self.count_pool_restart(reason)
            self.audit.event(
                "worker-exit", at_s=now, worker=worker_id, reason=reason,
                trace=(
                    decision.request.trace
                    if decision.request is not None else None
                ),
                action=decision.action,
                backoff_s=round(decision.backoff_s, 6),
                request_id=_safe_id(
                    decision.request.id
                    if decision.request is not None
                    else None
                ),
            )
            if decision.request is None:
                return None, decision
            request = decision.request
            if decision.action == "replay" and not self.draining:
                # The slot accounting resets: the request re-enters the
                # dispatch path and re-increments in_flight on restart.
                self.in_flight -= 1
                request.worker_id = None
                self._replays.append(request)
                self.audit.event(
                    "replay", trace=request.trace,
                    request_id=_safe_id(request.id), op=request.op,
                    cls=request.cls, at_s=now, worker=worker_id,
                    reason=reason, attempts=request.attempts,
                )
                o = obs.current()
                if o.enabled:
                    o.counter(
                        "repro_service_pool_replays_total",
                        "idempotent requests re-executed after a worker "
                        "death",
                        op=request.op,
                    ).inc()
                return None, decision
            if decision.action == "refuse" and decision.quarantined:
                self.audit.event(
                    "quarantine", trace=request.trace,
                    request_id=_safe_id(request.id), op=request.op,
                    cls=request.cls, at_s=now,
                    fingerprint=(decision.fingerprint or "")[:16],
                    kills=decision.kills,
                )
            kind = decision.kind or "worker-lost"
            message = decision.message or f"worker {worker_id} {reason}"
            if decision.action == "replay" and self.draining:
                # Replay would outlive the drain; answer structurally.
                kind = "draining"
                message = (
                    f"worker {worker_id} {reason} mid-request during drain"
                )
            details = {"worker": worker_id, "reason": reason}
            if decision.quarantined:
                details["diagnostic"] = "NM501"
            response = error_response(
                request.id, kind, message,
                op=request.op, cls=request.cls,
                traceparent=(
                    request.trace.traceparent()
                    if request.trace is not None
                    else None
                ),
                **details,
            )
            return (
                (request.reply_to, self.finish(request, response, kind)),
                decision,
            )

    def abandon_in_flight(
        self, worker_id: int, reason: str
    ) -> Optional[Tuple[object, dict]]:
        """Drain timeout: the worker is about to be SIGKILLed with its
        request still running — answer the request (never drop it)."""
        now = self.clock()
        with self._lock:
            request = self.pool.abandon(worker_id, now)
            if request is None:
                return None
            self.audit.event(
                "worker-exit", at_s=now, worker=worker_id, reason=reason,
                trace=request.trace, action="refuse",
                request_id=_safe_id(request.id),
            )
            response = error_response(
                request.id, "worker-lost",
                f"daemon drained; worker {worker_id} killed after the "
                "grace period with this request still executing",
                op=request.op, cls=request.cls,
                traceparent=(
                    request.trace.traceparent()
                    if request.trace is not None
                    else None
                ),
                worker=worker_id, reason=reason,
            )
            return request.reply_to, self.finish(
                request, response, "worker-lost"
            )

    def audit_pool_event(self, event: str, worker_id: int, **fields):
        self.audit.event(
            event, at_s=self.clock(), worker=worker_id, **fields
        )

    def count_pool_restart(self, reason: str) -> None:
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_service_pool_restarts_total",
                "worker restarts by cause (crash/wedge/overrun/recycle)",
                reason=reason,
            ).inc()

    # ------------------------------------------------------------------
    # Drain.
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        with self._lock:
            self.draining = True
        o = obs.current()
        if o.enabled:
            o.gauge(
                "repro_service_draining",
                "1 while the daemon refuses new work pending shutdown",
            ).set(1)

    def drain_responses(self) -> List[Tuple[object, dict]]:
        """Refuse everything still queued (drain flushes the queues)."""
        responses = []
        now = self.clock()
        with self._lock:
            for request in self.admission.queued():
                self._count(request.op, request.cls, "draining")
                self._audit_refusal(
                    "draining", request.trace, request.id,
                    request.op, request.cls, now,
                    latency_s=max(0.0, now - request.arrival_s),
                )
                self.responses_total += 1
                responses.append(
                    (
                        request.reply_to,
                        error_response(
                            request.id, "draining",
                            "daemon drained before this request was served",
                            op=request.op, cls=request.cls,
                            traceparent=(
                                request.trace.traceparent()
                                if request.trace is not None
                                else None
                            ),
                        ),
                    )
                )
            # Reset the queues; everything in them has now been answered.
            for name in list(self.admission._queues):
                self.admission._queues[name].clear()
        return responses

    @property
    def idle(self) -> bool:
        with self._lock:
            return self.in_flight == 0 and self.admission.depth() == 0

    # ------------------------------------------------------------------
    # Introspection / metrics.
    # ------------------------------------------------------------------
    def status_snapshot(self) -> dict:
        with self._lock:
            pool = (
                self.pool.snapshot(self.clock())
                if self.pool is not None
                else None
            )
            return {
                "draining": self.draining,
                "in_flight": self.in_flight,
                "pool": pool,
                "queue": {
                    "depths": self.admission.depths(),
                    "capacity": self.admission.capacity,
                    "admitted_total": self.admission.admitted_total,
                    "shed_total": self.admission.shed_total,
                    "rejected_total": self.admission.rejected_total,
                },
                "campaigns": self.bulkheads.snapshot(),
                "cache": self.handlers.cache.stats(),
                "requests_total": self.requests_total,
                "responses_total": self.responses_total,
                "audit_events": self.audit.total,
            }

    def _count(self, op: str, cls: str, outcome: str) -> None:
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_service_requests_total",
                "requests by op, class and outcome",
                op=op, outcome=outcome, **{"class": cls},
            ).inc()
