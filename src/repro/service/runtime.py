"""Two drivers for one scheduler: simulated clock and real asyncio.

The CESK-machine idiom from the interpreter literature: keep the whole
transition function pure (:class:`~repro.service.core.ServiceCore`) and
put *time* behind a protocol so the same machine can be stepped by a
deterministic harness or by the operating system.

:class:`SimulatedServiceRuntime`
    Drives the core on a logical clock with a single event heap.
    Arrivals are offered at declared times, service costs are declared
    per request, and the whole run — shed ordering, deadline expiries,
    bulkhead waits — is a pure function of the offered workload, so two
    same-seed runs produce byte-identical transcripts.  This is the
    substrate for the overload chaos suite and the service benchmark.

:class:`AsyncServiceRuntime`
    The production driver: an asyncio NDJSON socket server plus a tiny
    HTTP endpoint for ``/metrics`` (Prometheus 0.0.4) and ``/healthz``.
    Handlers execute on a thread pool (the checker and the simulated
    rollout fabric are synchronous, CPU-bound code); the event loop does
    admission, dispatch and replies.  SIGTERM/SIGINT begin a graceful
    drain: stop admitting, answer everything queued with structured
    ``draining`` refusals, let in-flight campaigns finish (their
    journals make crash-resume possible regardless), flush metrics,
    exit 0.
"""

from __future__ import annotations

import heapq
import json
import logging
from typing import List, Optional, Protocol, Tuple

from repro import obs
from repro.service.core import ServiceConfig, ServiceCore, ServiceRequest
from repro.service.protocol import encode_message

_log = logging.getLogger("repro.service")


class RuntimeProtocol(Protocol):
    """What a driver of :class:`ServiceCore` must provide."""

    core: ServiceCore

    def run(self) -> object:
        """Serve until drained/stopped; returns a runtime-specific value."""


# ----------------------------------------------------------------------
# Deterministic simulated runtime.
# ----------------------------------------------------------------------
class SimulatedServiceRuntime:
    """Steps the core on a logical clock; fully deterministic.

    Workload is offered up front (or incrementally) with
    :meth:`offer`; :meth:`run` then executes the discrete-event loop:

    * ``arrival`` events submit the request line to the core (shedding
      and rejections resolve immediately, deterministically);
    * free workers pick the next startable request; the clock jumps to
      ``start + cost_s`` **before** the handler runs, so a deadline
      shorter than the declared cost genuinely expires *mid-execution*
      and surfaces as a 504 from inside the checker — the same code
      path production hits, compressed onto the logical clock;
    * ``drain_at`` (optional) begins a graceful drain mid-run.

    With ``config.pool_workers > 0`` the same heap drives the worker
    pool's *entire* supervision state machine on the logical clock:
    pooled ops dispatch to supervisor-assigned worker slots, and
    :meth:`inject_chaos` schedules deterministic worker faults —

    * ``worker-crash``: the worker dies instantly (epoch-bumping its
      pending completion); the in-flight request replays or is refused
      per the supervisor's decision and the worker restarts on the
      backoff schedule;
    * ``worker-wedge``: the worker stops making progress *and* stops
      heartbeating; detection fires ``heartbeat_timeout_s`` later;
    * ``slow-leak``: the worker's synthetic resident set grows per
      completion until the rss limit triggers a graceful recycle.

    Handlers still execute in-process (there are no real child
    processes on a logical clock) — what is simulated is supervision:
    assignment, death, replay, quarantine, backoff, recycle.

    The transcript — every response in emission order, serialised with
    the protocol's deterministic encoder — is the unit of comparison
    for the chaos suite's byte-identical assertions.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        workers: Optional[int] = None,
        drain_at_s: Optional[float] = None,
    ):
        self._now = 0.0
        self.core = ServiceCore(config=config, clock=lambda: self._now)
        self.workers = workers or self.core.config.workers
        self.drain_at_s = drain_at_s
        self._events: List[Tuple[float, int, str, object]] = []
        self._eseq = 0
        self.transcript: List[str] = []
        self.responses: List[dict] = []
        #: Pool-mode chaos state: wedged (worker -> epoch), synthetic
        #: per-worker rss and leak growth rates.
        self._wedged = {}
        self._rss = {}
        self._leak = {}
        if drain_at_s is not None:
            self._push(drain_at_s, "drain", None)

    # -- workload -------------------------------------------------------
    def offer(self, at_s: float, message: dict) -> None:
        """Schedule a request (a protocol message dict) at *at_s*."""
        self._push(at_s, "arrival", encode_message(message).rstrip("\n"))

    def offer_line(self, at_s: float, line: str) -> None:
        self._push(at_s, "arrival", line)

    def inject_chaos(
        self, at_s: float, kind: str, worker: int = 0, **params
    ) -> None:
        """Schedule a deterministic worker fault (pool mode only).

        *kind* is ``worker-crash``, ``worker-wedge`` or ``slow-leak``
        (``growth_kb=`` sets the per-completion rss growth).
        """
        if kind not in ("worker-crash", "worker-wedge", "slow-leak"):
            raise ValueError(f"unknown chaos kind {kind!r}")
        self._push(at_s, "chaos", (kind, worker, params))

    def _push(self, at_s: float, kind: str, payload: object) -> None:
        self._eseq += 1
        heapq.heappush(self._events, (at_s, self._eseq, kind, payload))

    # -- engine ---------------------------------------------------------
    def _emit(self, message: dict) -> None:
        self.responses.append(message)
        self.transcript.append(encode_message(message).rstrip("\n"))

    def _dispatch_free_workers(self) -> None:
        """Start queued work on free workers (busy ones hold a slot)."""
        while self._busy < self.workers:
            action = self.core.next_action()
            if action is None:
                return
            request, disposition = action
            if disposition == "expired":
                self._emit(self.core.expire(request))
                continue
            self._busy += 1
            # The completion event carries the request; the clock will
            # be advanced to start + cost before the handler runs.
            self._push(self._now + request.cost_s, "complete", request)

    def run(self) -> List[dict]:
        """Drain the event heap; returns every response in order."""
        if self.core.pool is not None:
            return self._run_pooled()
        self._busy = 0
        while self._events:
            at_s, _seq, kind, payload = heapq.heappop(self._events)
            self._now = max(self._now, at_s)
            if kind == "arrival":
                request, responses = self.core.submit(
                    payload, reply_to=None, arrival_s=self._now
                )
                for _reply_to, message in responses:
                    self._emit(message)
                self._dispatch_free_workers()
            elif kind == "complete":
                request = payload
                # Clock already at start + cost_s: execute the handler
                # "at" completion time so cooperative deadline polls
                # inside the checker observe the elapsed service time.
                self._emit(self.core.execute(request))
                self._busy -= 1
                self._dispatch_free_workers()
            elif kind == "drain":
                self.core.begin_drain()
                for _reply_to, message in self.core.drain_responses():
                    self._emit(message)
        return self.responses

    # -- pooled engine --------------------------------------------------
    def _dispatch_pooled(self) -> None:
        """Start everything startable: remote slots and local threads.

        ``_can_start`` gates pooled ops on supervisor-idle slots and
        local ops on ``in_flight_local``; no runtime-side busy counter
        is needed.
        """
        while True:
            action = self.core.next_action()
            if action is None:
                return
            request, disposition = action
            if disposition == "expired":
                self._emit(self.core.expire(request))
                continue
            if disposition == "remote":
                worker_id = request.worker_id
                self._push(
                    self._now + request.cost_s,
                    "remote-complete",
                    (worker_id, self.core.pool.epoch(worker_id), request),
                )
            else:
                self._push(self._now + request.cost_s, "complete", request)

    def _schedule_restart(self, worker_id: int, at_s: float) -> None:
        self._push(
            at_s, "worker-up", (worker_id, self.core.pool.epoch(worker_id))
        )

    def _apply_chaos(self, chaos_kind: str, worker_id: int, params) -> None:
        pool = self.core.pool
        state = pool.workers[worker_id]
        if chaos_kind == "worker-crash":
            if state.state == "down":
                return  # already dead; nothing to crash
            delivery, decision = self.core.worker_failed(worker_id, "crash")
            if delivery is not None:
                self._emit(delivery[1])
            self._schedule_restart(worker_id, decision.restart_at_s)
        elif chaos_kind == "worker-wedge":
            if state.state != "busy":
                return  # a wedge only bites mid-request
            epoch = pool.epoch(worker_id)
            self._wedged[worker_id] = epoch
            self._push(
                self._now + self.core.config.heartbeat_timeout_s,
                "wedge-detect",
                (worker_id, epoch),
            )
        elif chaos_kind == "slow-leak":
            self._leak[worker_id] = float(params.get("growth_kb", 65536.0))

    def _remote_complete(self, worker_id, epoch, request) -> None:
        pool = self.core.pool
        if pool.epoch(worker_id) != epoch:
            return  # the worker died mid-request; supervision answered it
        if self._wedged.get(worker_id) == epoch:
            return  # wedged: this completion never happens
        rss = None
        if worker_id in self._leak:
            self._rss[worker_id] = (
                self._rss.get(worker_id, 0.0) + self._leak[worker_id]
            )
            rss = self._rss[worker_id]
        self._emit(self.core.execute(request))
        if pool.completed(request.worker_id, self._now, rss_kb=rss) == (
            "recycle"
        ):
            restart_at = pool.recycle(worker_id, self._now)
            self.core.audit_pool_event(
                "worker-recycle", worker_id, reason="rss-limit",
                rss_kb=rss,
            )
            self.core.count_pool_restart("recycle")
            self._rss[worker_id] = 0.0
            self._schedule_restart(worker_id, restart_at)

    def _run_pooled(self) -> List[dict]:
        """The discrete-event loop with worker supervision in the heap."""
        for worker_id in sorted(self.core.pool.workers):
            self.core.pool_worker_started(worker_id)
        while self._events:
            at_s, _seq, kind, payload = heapq.heappop(self._events)
            self._now = max(self._now, at_s)
            if kind == "arrival":
                _request, responses = self.core.submit(
                    payload, reply_to=None, arrival_s=self._now
                )
                for _reply_to, message in responses:
                    self._emit(message)
            elif kind == "complete":
                self._emit(self.core.execute(payload))
            elif kind == "remote-complete":
                self._remote_complete(*payload)
            elif kind == "chaos":
                self._apply_chaos(*payload)
            elif kind == "wedge-detect":
                worker_id, epoch = payload
                if (
                    self.core.pool.epoch(worker_id) == epoch
                    and self._wedged.get(worker_id) == epoch
                ):
                    del self._wedged[worker_id]
                    delivery, decision = self.core.worker_failed(
                        worker_id, "wedge"
                    )
                    if delivery is not None:
                        self._emit(delivery[1])
                    self._schedule_restart(
                        worker_id, decision.restart_at_s
                    )
            elif kind == "worker-up":
                worker_id, epoch = payload
                if (
                    self.core.pool.epoch(worker_id) == epoch
                    and self.core.pool.workers[worker_id].state == "down"
                ):
                    self.core.pool_worker_started(worker_id)
            elif kind == "drain":
                self.core.begin_drain()
                for _reply_to, message in self.core.drain_responses():
                    self._emit(message)
            self._dispatch_pooled()
        return self.responses

    def transcript_text(self) -> str:
        """The full run as one deterministic NDJSON document."""
        return "\n".join(self.transcript) + "\n"


# ----------------------------------------------------------------------
# Production asyncio runtime.
# ----------------------------------------------------------------------
class AsyncServiceRuntime:
    """The real daemon: NDJSON socket service + HTTP metrics/health."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: Optional[int] = None,
        ready_file: Optional[str] = None,
        metrics_path: Optional[str] = None,
        trace_path: Optional[str] = None,
    ):
        import time

        config = config or ServiceConfig()
        # Real requests get real resource accounting; the simulated
        # runtime leaves this off so its transcripts stay byte-identical
        # (thread CPU time is not a function of the logical clock).
        config.measure_resources = True
        self.core = ServiceCore(config=config, clock=time.monotonic)
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.http_port = http_port
        self.ready_file = ready_file
        self.metrics_path = metrics_path
        self.trace_path = trace_path
        self._drain_requested = False

    # -- socket protocol ------------------------------------------------
    async def _serve_client(self, reader, writer) -> None:
        import asyncio

        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace")
                if not text.strip():
                    continue
                # Submission runs on its own small executor: admitting a
                # campaign resolves its element claim through the spec
                # cache, and a cold-cache compile takes seconds — it must
                # never stall the event loop (other clients, dispatch,
                # /metrics, /healthz).  ServiceCore is lock-protected, so
                # concurrent submits and finishes are safe.
                try:
                    request, responses = await loop.run_in_executor(
                        self._submit_executor,
                        self.core.submit, text, writer,
                    )
                except RuntimeError:
                    break  # executor shut down mid-drain; daemon is exiting
                for reply_to, message in responses:
                    await self._send(reply_to or writer, message)
                if request is not None:
                    self._kick()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _send(self, writer, message: dict) -> None:
        if writer is None:
            return
        try:
            writer.write(encode_message(message).encode("utf-8"))
            await writer.drain()
        except (ConnectionResetError, OSError):
            pass  # client went away; response already accounted for

    def _kick(self) -> None:
        """Wake the dispatcher: queued work may now be startable."""
        self._work_available.set()

    async def _dispatcher(self) -> None:
        """Moves startable requests onto the worker thread pool."""
        import asyncio

        loop = asyncio.get_running_loop()

        def _done(request: ServiceRequest, task: "asyncio.Future") -> None:
            message = task.result()
            asyncio.ensure_future(self._send(request.reply_to, message))
            self._kick()

        while not self._stopped:
            await self._work_available.wait()
            self._work_available.clear()
            while True:
                if (
                    self._pool is None
                    and self.core.in_flight >= self.core.config.workers
                ):
                    # Pool mode drops this fast-path: remote requests do
                    # not occupy threads, so thread capacity is enforced
                    # inside the core's _can_start instead.
                    break
                action = self.core.next_action()
                if action is None:
                    break
                request, disposition = action
                if disposition == "expired":
                    await self._send(
                        request.reply_to, self.core.expire(request)
                    )
                    continue
                if disposition == "remote":
                    self._pool.dispatch(request)
                    continue
                future = loop.run_in_executor(
                    self._executor, self.core.execute, request
                )
                future.add_done_callback(
                    lambda task, request=request: _done(request, task)
                )

    async def _pool_monitor(self) -> None:
        """Kill workers that wedge (stale heartbeat) or overrun their
        request deadline past the grace; the supervisor's verdicts, the
        pool's SIGKILLs — recovery then flows through the worker's exit
        path exactly as a spontaneous crash would."""
        import asyncio

        interval = max(0.05, self.core.config.heartbeat_interval_s)
        while not self._stopped:
            await asyncio.sleep(interval)
            if self._pool is None or self._pool._stopping:
                continue
            for worker_id, reason in self.core.pool.overdue_workers(
                self.core.clock()
            ):
                self._pool.kill_worker(worker_id, reason)

    # -- HTTP metrics/health --------------------------------------------
    async def _serve_http(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            while True:  # drain headers
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            if path.startswith("/metrics"):
                o = obs.current()
                if o.enabled:
                    o.publish_tracer_stats()
                    self.core.slo.publish(o, self.core.clock())
                    body = o.metrics.to_prometheus()
                else:
                    body = "# metrics disabled\n"
                content_type = "text/plain; version=0.0.4; charset=utf-8"
                status = "200 OK"
            elif path.startswith("/slo"):
                body = (
                    json.dumps(
                        self.core.slo.snapshot(self.core.clock()),
                        sort_keys=True,
                    )
                    + "\n"
                )
                content_type = "application/json"
                status = "200 OK"
            elif path.startswith("/healthz"):
                snapshot = self.core.status_snapshot()
                slo = self.core.slo.healthz_summary(self.core.clock())
                snapshot["slo"] = slo
                if self.core.draining:
                    # Drain is distinct and non-200: supervisors and
                    # load balancers must stop routing *before* the
                    # socket closes.
                    snapshot["status"] = "draining"
                    status = "503 Service Unavailable"
                elif slo["alerting"] is not None:
                    snapshot["status"] = "degraded"
                    status = "200 OK"
                else:
                    snapshot["status"] = "ok"
                    status = "200 OK"
                body = json.dumps(snapshot, sort_keys=True) + "\n"
                content_type = "application/json"
            else:
                body = "not found\n"
                content_type = "text/plain"
                status = "404 Not Found"
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (ConnectionResetError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    # -- lifecycle ------------------------------------------------------
    def request_drain(self) -> None:
        self._drain_requested = True

    @staticmethod
    def _remove_stale_socket(path: str) -> None:
        """Unlink a leftover socket file unless a live daemon owns it.

        asyncio does not remove the socket file on ``server.close()``,
        and a crash leaves one behind too; without this, every restart
        with the same ``--socket`` fails with EADDRINUSE.  A file that
        still answers connections belongs to a running daemon and is
        left alone (startup fails loudly instead of stealing it).
        """
        import os
        import socket
        import stat

        try:
            mode = os.stat(path).st_mode
        except OSError:
            return  # nothing there: the normal first-boot case
        if not stat.S_ISSOCK(mode):
            raise OSError(
                f"{path} exists and is not a socket; refusing to replace it"
            )
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(0.25)
        try:
            probe.connect(path)
        except OSError:
            AsyncServiceRuntime._unlink_socket(path)  # stale: no listener
        else:
            raise OSError(
                f"{path}: another daemon is already listening"
            )
        finally:
            probe.close()

    @staticmethod
    def _unlink_socket(path: str) -> None:
        import os

        try:
            os.unlink(path)
        except OSError:
            pass

    async def _run_async(self) -> int:
        import asyncio
        import signal

        self._stopped = False
        self._work_available = asyncio.Event()
        loop = asyncio.get_running_loop()
        # Worker processes fork first, while this process is still
        # (nearly) single-threaded — forking after the executors spin up
        # would copy a process image with live worker threads.
        self._pool = None
        if self.core.pool is not None:
            from repro.service.pool import ProcessWorkerPool

            self._pool = ProcessWorkerPool(self)
            self._pool.start(loop)
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=self.core.config.workers,
            thread_name_prefix="nmsld-worker",
        )
        # Dedicated threads for admission so a spec compile during
        # campaign planning cannot wait behind (or freeze) handler work.
        self._submit_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="nmsld-submit"
        )
        drain_event = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, drain_event.set)
            except (NotImplementedError, RuntimeError):
                pass

        if self.socket_path:
            self._remove_stale_socket(self.socket_path)
            server = await asyncio.start_unix_server(
                self._serve_client, path=self.socket_path
            )
            endpoint = self.socket_path
        else:
            server = await asyncio.start_server(
                self._serve_client, host=self.host, port=self.port
            )
            self.port = server.sockets[0].getsockname()[1]
            endpoint = f"{self.host}:{self.port}"

        http_server = None
        if self.http_port is not None:
            http_server = await asyncio.start_server(
                self._serve_http, host=self.host, port=self.http_port
            )
            self.http_port = http_server.sockets[0].getsockname()[1]

        if self.ready_file:
            import os
            from pathlib import Path

            # Write-then-rename so a supervisor polling for the file
            # never observes a partially written payload.
            ready = Path(self.ready_file)
            tmp = ready.with_name(ready.name + ".tmp")
            tmp.write_text(
                json.dumps(
                    {
                        "endpoint": endpoint,
                        "http_port": self.http_port,
                        "pid": os.getpid(),
                    },
                    sort_keys=True,
                )
                + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, ready)

        dispatcher = asyncio.ensure_future(self._dispatcher())
        monitor = (
            asyncio.ensure_future(self._pool_monitor())
            if self._pool is not None
            else None
        )
        _log.info(
            "listening on %s (http: %s)", endpoint, self.http_port
        )

        try:
            # Serve until a drain is requested (signal/request_drain()).
            while not (drain_event.is_set() or self._drain_requested):
                try:
                    await asyncio.wait_for(drain_event.wait(), timeout=0.1)
                except asyncio.TimeoutError:
                    pass

            # Graceful drain: stop admitting, answer the queue, finish
            # in-flight work (workers get --drain-grace seconds, then
            # SIGKILL with their requests answered), flush, exit 0.
            self.core.begin_drain()
            server.close()
            await server.wait_closed()
            if self.socket_path:
                self._unlink_socket(self.socket_path)
            for reply_to, message in self.core.drain_responses():
                await self._send(reply_to, message)
            if self._pool is not None:
                await self._pool.stop(self.core.config.drain_grace_s)
            while self.core.in_flight > 0:
                await asyncio.sleep(0.05)
            self._stopped = True
            self._kick()  # unblock the dispatcher to observe _stopped
            await asyncio.wait_for(dispatcher, timeout=5.0)
            if monitor is not None:
                await asyncio.wait_for(monitor, timeout=5.0)
            if http_server is not None:
                http_server.close()
                await http_server.wait_closed()
            self._submit_executor.shutdown(wait=True)
            self._executor.shutdown(wait=True)
            if self.metrics_path:
                self._flush_metrics()
            if self.trace_path:
                self._flush_trace()
            self.core.audit.close()
            _log.info(
                "drained cleanly after %d responses",
                self.core.responses_total,
            )
            return 0
        finally:
            # Every exit path — clean drain, a raised exception, a
            # cancelled task — leaves no stale socket file behind.
            if self.socket_path:
                self._unlink_socket(self.socket_path)

    def _flush_metrics(self) -> None:
        """Final Prometheus scrape written to disk on drain."""
        from pathlib import Path

        o = obs.current()
        if o.enabled and o.metrics is not None:
            o.publish_tracer_stats()
            self.core.slo.publish(o, self.core.clock())
            Path(self.metrics_path).write_text(
                o.metrics.to_prometheus(), encoding="utf-8"
            )

    def _flush_trace(self) -> None:
        """Final span export (JSONL or Chrome by suffix) on drain."""
        o = obs.current()
        if o.enabled and o.tracer is not None:
            o.tracer.write(self.trace_path)

    def run(self) -> int:
        import asyncio

        return asyncio.run(self._run_async())
