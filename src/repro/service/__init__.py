"""``repro.service`` — the always-on management-plane service (``nmsld``).

Everything the batch CLI does — compile, check, analyze, diff, rollout,
heal — exposed as requests over a newline-delimited-JSON socket
protocol, served by a long-running daemon with a warm spec/fact cache,
admission control, per-class priority queues, bounded queues with
explicit load shedding, per-request deadlines, per-campaign bulkheads,
graceful drain on SIGTERM, and a supervised multi-process worker pool
(:mod:`repro.service.pool`) with crash recovery, idempotent-request
replay and poison-request quarantine.

The scheduler/dispatcher is runtime-agnostic: :class:`ServiceCore` holds
every robustness decision (admit/shed/dispatch/expire/drain) and two
runtimes drive it behind one :class:`RuntimeProtocol` —
:class:`SimulatedServiceRuntime` on a deterministic logical clock
(tests, chaos, benchmarks: byte-identical reports per seed) and
:class:`AsyncServiceRuntime` on real asyncio wall-clock I/O (service
mode).  See ``docs/SERVICE.md``.
"""

from repro.service.admission import AdmissionController, PRIORITY_CLASSES
from repro.service.bulkhead import CampaignBulkheads
from repro.service.core import ServiceConfig, ServiceCore, ServiceRequest
from repro.service.handlers import ServiceHandlers, SpecCache
from repro.service.pool import (
    PoisonRegistry,
    ProcessWorkerPool,
    WorkerSupervisor,
    request_fingerprint,
)
from repro.service.protocol import (
    IDEMPOTENT_OPS,
    OP_CLASS,
    OPS,
    POOLED_OPS,
    ProtocolError,
    encode_message,
    error_response,
    parse_request,
    result_response,
)
from repro.service.runtime import (
    AsyncServiceRuntime,
    RuntimeProtocol,
    SimulatedServiceRuntime,
)

__all__ = [
    "IDEMPOTENT_OPS",
    "OPS",
    "OP_CLASS",
    "POOLED_OPS",
    "PRIORITY_CLASSES",
    "AdmissionController",
    "AsyncServiceRuntime",
    "CampaignBulkheads",
    "PoisonRegistry",
    "ProcessWorkerPool",
    "ProtocolError",
    "RuntimeProtocol",
    "ServiceConfig",
    "ServiceCore",
    "ServiceHandlers",
    "ServiceRequest",
    "SimulatedServiceRuntime",
    "SpecCache",
    "WorkerSupervisor",
    "encode_message",
    "error_response",
    "parse_request",
    "request_fingerprint",
    "result_response",
]
