"""``repro.service`` — the always-on management-plane service (``nmsld``).

Everything the batch CLI does — compile, check, analyze, diff, rollout,
heal — exposed as requests over a newline-delimited-JSON socket
protocol, served by a long-running daemon with a warm spec/fact cache,
admission control, per-class priority queues, bounded queues with
explicit load shedding, per-request deadlines, per-campaign bulkheads,
and graceful drain on SIGTERM.

The scheduler/dispatcher is runtime-agnostic: :class:`ServiceCore` holds
every robustness decision (admit/shed/dispatch/expire/drain) and two
runtimes drive it behind one :class:`RuntimeProtocol` —
:class:`SimulatedServiceRuntime` on a deterministic logical clock
(tests, chaos, benchmarks: byte-identical reports per seed) and
:class:`AsyncServiceRuntime` on real asyncio wall-clock I/O (service
mode).  See ``docs/SERVICE.md``.
"""

from repro.service.admission import AdmissionController, PRIORITY_CLASSES
from repro.service.bulkhead import CampaignBulkheads
from repro.service.core import ServiceConfig, ServiceCore, ServiceRequest
from repro.service.handlers import ServiceHandlers, SpecCache
from repro.service.protocol import (
    OP_CLASS,
    OPS,
    ProtocolError,
    encode_message,
    error_response,
    parse_request,
    result_response,
)
from repro.service.runtime import (
    AsyncServiceRuntime,
    RuntimeProtocol,
    SimulatedServiceRuntime,
)

__all__ = [
    "OPS",
    "OP_CLASS",
    "PRIORITY_CLASSES",
    "AdmissionController",
    "AsyncServiceRuntime",
    "CampaignBulkheads",
    "ProtocolError",
    "RuntimeProtocol",
    "ServiceConfig",
    "ServiceCore",
    "ServiceHandlers",
    "ServiceRequest",
    "SimulatedServiceRuntime",
    "SpecCache",
    "encode_message",
    "error_response",
    "parse_request",
    "result_response",
]
