"""Rollout state machine vocabulary and the structured report.

Every element moves through an explicit state machine::

    pending -> staged -> verified -> committed
        \\________________________/
                  |  (any phase fails: retry with backoff)
                  v
                failed -> rolled-back

``committed`` and ``rolled-back`` are terminal successes of their
respective goals; ``failed`` is terminal only when the retry budget is
exhausted *and* no last-known-good configuration could be restored.
Elements that do not reach ``committed`` land in the dead-letter list so
a campus-wide sweep degrades to partial success instead of aborting.

The :class:`RolloutReport` is pure data — logical times only, keys
sorted — so a run with a fixed seed serialises bit-identically across
repeats (the chaos suite asserts exactly that).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class RolloutState(enum.Enum):
    """Where one element is in its delivery lifecycle."""

    PENDING = "pending"
    STAGED = "staged"
    VERIFIED = "verified"
    COMMITTED = "committed"
    FAILED = "failed"
    ROLLED_BACK = "rolled-back"

    def terminal(self) -> bool:
        return self in (
            RolloutState.COMMITTED,
            RolloutState.FAILED,
            RolloutState.ROLLED_BACK,
        )


#: Legal transitions — the coordinator asserts every move against this.
TRANSITIONS = {
    RolloutState.PENDING: {RolloutState.STAGED, RolloutState.FAILED},
    RolloutState.STAGED: {
        RolloutState.VERIFIED,
        RolloutState.PENDING,  # verify failed: restage on the next attempt
        RolloutState.FAILED,
    },
    RolloutState.VERIFIED: {
        RolloutState.COMMITTED,
        RolloutState.PENDING,  # apply/confirm failed: retry
        RolloutState.FAILED,
    },
    RolloutState.FAILED: {RolloutState.ROLLED_BACK},
    RolloutState.COMMITTED: set(),
    RolloutState.ROLLED_BACK: set(),
}


@dataclass(frozen=True)
class AttemptRecord:
    """One delivery attempt (or rollback attempt) against one element."""

    attempt: int
    phase: str  # "stage" | "verify" | "apply" | "confirm" | "rollback"
    outcome: str  # "ok" or an error description
    at_s: float  # logical time the attempt finished
    exchanges: int  # protocol exchanges the attempt consumed

    def as_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "phase": self.phase,
            "outcome": self.outcome,
            "at_s": round(self.at_s, 6),
            "exchanges": self.exchanges,
        }


@dataclass
class ElementRollout:
    """Everything that happened to one element during the campaign."""

    element: str
    state: RolloutState = RolloutState.PENDING
    attempts: int = 0
    generation: Optional[int] = None  # confirmed generation, when committed
    history: List[AttemptRecord] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "state": self.state.value,
            "attempts": self.attempts,
            "generation": self.generation,
            "history": [record.as_dict() for record in self.history],
        }


@dataclass
class RolloutReport:
    """The structured outcome of one rollout campaign."""

    seed: int
    jobs: int
    elements: Dict[str, ElementRollout] = field(default_factory=dict)
    duration_s: float = 0.0

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------
    def committed(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                name
                for name, element in self.elements.items()
                if element.state is RolloutState.COMMITTED
            )
        )

    def dead_letter(self) -> Tuple[str, ...]:
        """Elements that exhausted their retry budget short of the target."""
        return tuple(
            sorted(
                name
                for name, element in self.elements.items()
                if element.state
                in (RolloutState.FAILED, RolloutState.ROLLED_BACK)
            )
        )

    @property
    def complete(self) -> bool:
        return not self.dead_letter()

    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for element in self.elements.values():
            counts[element.state.value] = counts.get(element.state.value, 0) + 1
        return dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "jobs": self.jobs,
            "duration_s": round(self.duration_s, 6),
            "outcomes": self.outcomes(),
            "committed": list(self.committed()),
            "dead_letter": list(self.dead_letter()),
            "elements": {
                name: self.elements[name].as_dict()
                for name in sorted(self.elements)
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable summary, one line per element."""
        lines = [
            f"rollout: {len(self.committed())}/{len(self.elements)} committed"
            f" in {self.duration_s:.2f}s (seed {self.seed}, jobs {self.jobs})"
        ]
        for name in sorted(self.elements):
            element = self.elements[name]
            generation = (
                f" gen {element.generation}"
                if element.generation is not None
                else ""
            )
            last = element.history[-1].outcome if element.history else "-"
            lines.append(
                f"  {name}: {element.state.value} after "
                f"{element.attempts} attempt(s){generation}"
                + ("" if last == "ok" else f" [{last}]")
            )
        if self.dead_letter():
            lines.append("dead letter: " + ", ".join(self.dead_letter()))
        return "\n".join(lines)
