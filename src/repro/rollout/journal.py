"""The durable campaign journal: a write-ahead log for rollouts.

A :class:`RolloutJournal` records every observable decision a
:class:`~repro.rollout.coordinator.RolloutCoordinator` makes — campaign
parameters, element admissions, attempt starts, per-exchange outcomes,
state transitions, retry decisions, and terminal outcomes — as one JSON
object per line (JSONL).  Each line is appended with a single ``write``
call and flushed immediately (optionally ``fsync``-ed), so a coordinator
killed at any point leaves a prefix-consistent journal behind.

The journal exists for exactly one reason: **crash-resume**.
:meth:`RolloutCoordinator.resume` replays a journal to rebuild the
campaign's scheduler state (which elements are waiting, in flight, or
terminal; the logical clock; retry schedules; even a half-finished
delivery attempt's per-exchange position) and then continues the event
loop where the dead coordinator stopped.  Because every record carries
logical times and the whole campaign runs under a deterministic clock,
an interrupted-then-resumed campaign produces a
:class:`~repro.rollout.state.RolloutReport` byte-identical to an
uninterrupted run of the same seed.

Records are schema-versioned (the leading ``campaign`` header carries
``schema``); replay rejects unknown schema versions and skips unknown
record types, so old journals stay readable as fields are added.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import JournalError
from repro.rollout.state import (
    AttemptRecord,
    ElementRollout,
    RolloutReport,
    RolloutState,
)

#: Journal format version; bumped when record semantics change.
SCHEMA_VERSION = 1


def config_digest(text: str) -> str:
    """Hex fingerprint of one target's configuration text (header field)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class RolloutJournal:
    """An append-only JSONL journal, written ahead of every decision.

    ``path=None`` keeps the journal in memory only (tests, and campaigns
    that want resumability within one process without touching disk).
    With a path, every :meth:`append` writes one complete line and
    flushes; ``fsync=True`` additionally forces the line to stable
    storage before returning — the classic durability/throughput trade,
    off by default because the simulated campaigns are logical-time.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        fsync: bool = False,
        records: Optional[List[dict]] = None,
    ):
        self.path = Path(path) if path is not None else None
        self.fsync = fsync
        self.records: List[dict] = list(records or [])
        self._handle = None
        #: When set (service mode), every appended record is stamped
        #: with the originating request's trace id — ``grep <trace_id>``
        #: then finds the journal lines a request caused.  Unset in CLI
        #: and test paths, where records stay exactly as before (replay
        #: reads by key, so the extra field is ignored either way).
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None

    def set_trace(self, context) -> None:
        """Stamp subsequent records with *context*'s trace/span ids."""
        self.trace_id = getattr(context, "trace_id", None)
        self.span_id = getattr(context, "span_id", None)

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def append(self, record: dict) -> dict:
        """Durably append one record (single write + flush, fsync opt-in)."""
        if self.trace_id is not None:
            record.setdefault("trace_id", self.trace_id)
        self.records.append(record)
        if self.path is not None:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> "RolloutJournal":
        """Read a journal back from disk (appends will extend the file)."""
        records = []
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from exc
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise JournalError(
                    f"{path}:{number}: malformed journal line: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise JournalError(
                    f"{path}:{number}: journal records must be objects"
                )
            records.append(record)
        return cls(path=path, records=records)

    def replay(self) -> "JournalState":
        """Fold the record stream into a :class:`JournalState`."""
        return JournalState.from_records(self.records, source=str(self.path))


@dataclass
class InterruptedAttempt:
    """A journaled ``attempt_start`` with no completing ``attempt`` record.

    The coordinator died mid-delivery; the per-exchange events say how
    far it got, and ``apply_intent`` whether the atomic apply trigger may
    already have reached the agent (the one exchange whose replay must
    never be guessed — resume disambiguates it with a live generation
    read-back).
    """

    attempt: int
    ready_at: float
    now: float
    rollback: bool
    exchanges: List[dict] = field(default_factory=list)
    apply_intent: bool = False


@dataclass
class ElementJournalState:
    """Everything the journal knows about one element."""

    element: str
    state: RolloutState = RolloutState.PENDING
    attempts: int = 0
    rollback_attempts: int = 0
    generation: Optional[int] = None
    history: List[AttemptRecord] = field(default_factory=list)
    admitted_at: Optional[float] = None
    next_ready: Optional[float] = None
    interrupted: Optional[InterruptedAttempt] = None

    @property
    def started(self) -> bool:
        return self.admitted_at is not None

    def as_rollout(self) -> ElementRollout:
        """The element's exact :class:`ElementRollout` at journal end."""
        return ElementRollout(
            element=self.element,
            state=self.state,
            attempts=self.attempts,
            generation=self.generation,
            history=list(self.history),
        )


@dataclass
class JournalState:
    """A replayed journal: campaign header plus per-element positions."""

    header: dict
    elements: Dict[str, ElementJournalState]
    now: float = 0.0
    finished: bool = False
    duration_s: Optional[float] = None
    events: int = 0

    @classmethod
    def from_records(
        cls, records: List[dict], source: str = "<memory>"
    ) -> "JournalState":
        if not records:
            raise JournalError(f"{source}: journal is empty")
        header = records[0]
        if header.get("type") != "campaign":
            raise JournalError(
                f"{source}: first record must be the campaign header, "
                f"got {header.get('type')!r}"
            )
        schema = header.get("schema")
        if schema != SCHEMA_VERSION:
            raise JournalError(
                f"{source}: unsupported journal schema {schema!r} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        state = cls(
            header=header,
            elements={
                name: ElementJournalState(name)
                for name in header.get("elements", {})
            },
        )
        for record in records[1:]:
            state._apply(record, source)
            state.events += 1
        return state

    def _element(self, record: dict, source: str) -> ElementJournalState:
        name = record.get("element")
        element = self.elements.get(name)
        if element is None:
            raise JournalError(
                f"{source}: record names unknown element {name!r}"
            )
        return element

    def _apply(self, record: dict, source: str) -> None:
        kind = record.get("type")
        if kind == "admit":
            element = self._element(record, source)
            element.admitted_at = record["at"]
        elif kind == "attempt_start":
            element = self._element(record, source)
            element.interrupted = InterruptedAttempt(
                attempt=record["attempt"],
                ready_at=record["ready_at"],
                now=record["now"],
                rollback=record.get("rollback", False),
            )
            if element.admitted_at is None:
                element.admitted_at = record["ready_at"]
            self.now = max(self.now, record["now"])
        elif kind == "exchange":
            element = self._element(record, source)
            if element.interrupted is not None:
                element.interrupted.exchanges.append(record)
        elif kind == "apply_intent":
            element = self._element(record, source)
            if element.interrupted is not None:
                element.interrupted.apply_intent = True
        elif kind == "transition":
            element = self._element(record, source)
            element.state = RolloutState(record["to"])
        elif kind == "attempt":
            element = self._element(record, source)
            element.interrupted = None
            element.history.append(
                AttemptRecord(
                    attempt=record["attempt"],
                    phase=record["phase"],
                    outcome=record["outcome"],
                    at_s=record["at_s"],
                    exchanges=record["exchanges"],
                )
            )
            if record.get("rollback", False):
                element.rollback_attempts = max(
                    element.rollback_attempts, record["attempt"]
                )
            else:
                element.attempts = max(element.attempts, record["attempt"])
            if record.get("generation") is not None:
                element.generation = record["generation"]
            element.next_ready = record.get("next_ready")
        elif kind == "end":
            self.finished = True
            self.duration_s = record.get("duration_s")
        # Unknown record types (e.g. "resume" markers, future additions)
        # are deliberately skipped: old readers stay compatible.

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------
    def report(self) -> RolloutReport:
        """Reconstruct the campaign's :class:`RolloutReport` so far.

        For a finished journal this is byte-identical to the report the
        live coordinator returned — the journal round-trip property the
        test suite locks in.
        """
        return RolloutReport(
            seed=self.header.get("seed", 0),
            jobs=self.header.get("jobs", 1),
            elements={
                name: element.as_rollout()
                for name, element in sorted(self.elements.items())
            },
            duration_s=self.duration_s or 0.0,
        )

    def committed(self) -> List[str]:
        """Elements the journal proves committed — resume skips these."""
        return sorted(
            name
            for name, element in self.elements.items()
            if element.state is RolloutState.COMMITTED
        )
