"""Fault-tolerant configuration rollout (the prescriptive loop, hardened).

The paper's Section 5 ships compiled configuration to running network
managers; this package makes that delivery transactional and
fault-tolerant:

* :mod:`repro.rollout.retry` — shared retry budgets and deterministic
  exponential backoff (also used by the file/mail transports);
* :mod:`repro.rollout.state` — the per-element delivery state machine
  (pending → staged → verified → committed | failed → rolled-back) and
  the structured :class:`RolloutReport`;
* :mod:`repro.rollout.coordinator` — the :class:`RolloutCoordinator`
  that drives two-phase apply (chunked staging, fingerprint read-back,
  atomic apply trigger, generation confirm) with bounded concurrency,
  rollback to last-known-good, and a dead-letter list;
* :mod:`repro.rollout.journal` — the durable :class:`RolloutJournal`
  write-ahead log behind :meth:`RolloutCoordinator.resume`: a crashed
  coordinator replays it and finishes the campaign byte-identically.

See ``docs/ROLLOUT.md`` for the state machine diagram and failure-mode
catalogue; chaos-test it with :class:`repro.netsim.faults.FaultInjector`.
"""

from repro.rollout.coordinator import (
    RolloutCoordinator,
    SendFunction,
    config_fingerprint,
)
from repro.rollout.gate import BLOCKING_CODES, RolloutGate
from repro.rollout.journal import (
    ElementJournalState,
    InterruptedAttempt,
    JournalState,
    RolloutJournal,
    SCHEMA_VERSION,
    config_digest,
)
from repro.rollout.retry import RetryPolicy
from repro.rollout.state import (
    AttemptRecord,
    ElementRollout,
    RolloutReport,
    RolloutState,
    TRANSITIONS,
)

__all__ = [
    "AttemptRecord",
    "BLOCKING_CODES",
    "ElementJournalState",
    "ElementRollout",
    "InterruptedAttempt",
    "JournalState",
    "RetryPolicy",
    "RolloutCoordinator",
    "RolloutGate",
    "RolloutJournal",
    "RolloutReport",
    "RolloutState",
    "SCHEMA_VERSION",
    "SendFunction",
    "TRANSITIONS",
    "config_digest",
    "config_fingerprint",
]
