"""The rollout coordinator: fault-tolerant two-phase configuration delivery.

The paper ships compiled configuration "via the normal network management
protocol" (Section 5); this module makes that path survive a hostile
internet.  For each element the coordinator performs a two-phase apply
over plain SNMP Sets/Gets against the agent's enterprise staging objects:

1. **stage** — read the element's current config generation, truncate the
   staging object, then write the configuration text in bounded chunks;
2. **verify** — read back the staged text's SHA-256 fingerprint and
   compare it against the locally computed one (catching corrupted,
   duplicated, or torn chunk deliveries);
3. **apply** — trigger the atomic apply object;
4. **confirm** — read the generation number again and require it to have
   advanced.

Any failed exchange fails the whole attempt; attempts retry under an
exponential-backoff schedule with deterministic jitter
(:class:`~repro.rollout.retry.RetryPolicy`).  Elements that exhaust the
budget are rolled back to their last-known-good configuration (same
two-phase machinery) and land in the dead-letter list either way, so a
campus-wide sweep degrades to partial success with a structured
:class:`~repro.rollout.state.RolloutReport` instead of aborting.

Time is logical: successful exchanges cost ``policy.rtt_s``, timeouts
cost ``policy.timeout_s``, and a deterministic event loop interleaves at
most ``jobs`` elements at once — the whole campaign is a pure function of
(channels, configs, policy, seed).
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import (
    DeliveryError,
    DeliveryTimeout,
    RolloutError,
    SnmpError,
)
from repro.rollout.retry import RetryPolicy
from repro.rollout.state import (
    AttemptRecord,
    ElementRollout,
    RolloutReport,
    RolloutState,
    TRANSITIONS,
)

#: A protocol channel to one element: request octets in, response octets out.
SendFunction = Callable[[bytes], bytes]


def config_fingerprint(text: str) -> bytes:
    """The fingerprint the agent must echo for a staged configuration."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest().encode("ascii")


class _AttemptFailed(RolloutError):
    """Internal: one delivery attempt failed in a named phase."""

    def __init__(self, phase: str, reason: str):
        super().__init__(f"{phase}: {reason}")
        self.phase = phase
        self.reason = reason


class RolloutCoordinator:
    """Drives a configuration campaign across many elements."""

    def __init__(
        self,
        channels: Dict[str, SendFunction],
        configs: Dict[str, str],
        policy: Optional[RetryPolicy] = None,
        jobs: int = 4,
        seed: int = 1989,
        last_known_good: Optional[Dict[str, str]] = None,
        chunk_size: int = 1024,
    ):
        if jobs < 1:
            raise RolloutError(f"jobs must be at least 1, got {jobs}")
        if chunk_size < 1:
            raise RolloutError(f"chunk_size must be at least 1, got {chunk_size}")
        missing = sorted(set(configs) - set(channels))
        if missing:
            raise RolloutError(
                "no delivery channel for element(s): " + ", ".join(missing)
            )
        self.channels = channels
        self.configs = configs
        self.policy = policy or RetryPolicy()
        self.jobs = jobs
        self.seed = seed
        self.last_known_good = dict(last_known_good or {})
        self.chunk_size = chunk_size
        self._rollback_attempts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # The campaign event loop.
    # ------------------------------------------------------------------
    def run(self) -> RolloutReport:
        """Deliver every configuration; never raises for per-element faults."""
        o = obs.current()
        report = RolloutReport(
            seed=self.seed,
            jobs=self.jobs,
            elements={
                name: ElementRollout(name) for name in sorted(self.configs)
            },
        )
        with o.span(
            "rollout.run",
            elements=len(self.configs),
            jobs=self.jobs,
            seed=self.seed,
        ) as span:
            waiting = deque(sorted(self.configs))
            in_flight: List[Tuple[float, str]] = []  # (ready_at, element) heap
            finished_at = 0.0
            now = 0.0
            while in_flight or waiting:
                while len(in_flight) < self.jobs and waiting:
                    heapq.heappush(in_flight, (now, waiting.popleft()))
                ready_at, element = heapq.heappop(in_flight)
                now = max(now, ready_at)
                # Feed simulated time to the observability clock so spans
                # recorded under a logical clock track campaign time.
                o.set_time(now)
                next_ready = self._step(element, now, report)
                finished_at = max(finished_at, now)
                if next_ready is not None:
                    heapq.heappush(in_flight, (next_ready, element))
            report.duration_s = max(
                finished_at,
                max(
                    (
                        record.history[-1].at_s
                        for record in report.elements.values()
                        if record.history
                    ),
                    default=0.0,
                ),
            )
            o.set_time(report.duration_s)
            span.annotate(
                committed=sum(
                    record.state is RolloutState.COMMITTED
                    for record in report.elements.values()
                ),
                dead_letters=len(report.dead_letter()),
            )
        if o.enabled:
            for record in report.elements.values():
                o.counter(
                    "repro_rollout_elements_total",
                    "campaign elements by terminal state",
                    state=record.state.value,
                ).inc()
        return report

    def _step(
        self, element: str, now: float, report: RolloutReport
    ) -> Optional[float]:
        """Run one attempt for *element*; returns the next wake-up time,
        or None when the element reached a terminal state."""
        record = report.elements[element]
        if record.state is RolloutState.FAILED:
            return self._step_rollback(element, now, record)
        return self._step_forward(element, now, record)

    def _step_forward(
        self, element: str, now: float, record: ElementRollout
    ) -> Optional[float]:
        o = obs.current()
        record.attempts += 1
        with o.span(
            "rollout.attempt", element=element, attempt=record.attempts
        ) as span:
            outcome = self._deliver(
                element, self.configs[element], record, rollback=False
            )
            phase, reason, elapsed, exchanges, generation = outcome
            at = now + elapsed
            o.set_time(at)
            ok = phase is None
            span.annotate(
                phase=phase or "commit", outcome="ok" if ok else reason
            )
        record.history.append(
            AttemptRecord(
                attempt=record.attempts,
                phase=phase or "commit",
                outcome="ok" if ok else reason,
                at_s=at,
                exchanges=exchanges,
            )
        )
        if ok:
            record.generation = generation
            return None
        if record.attempts < self.policy.max_attempts:
            self._move(record, RolloutState.PENDING)
            if o.enabled:
                o.counter(
                    "repro_rollout_retries_total",
                    "attempt-level retries scheduled",
                    element=element,
                ).inc()
            return at + self.policy.backoff(
                record.attempts, key=element, seed=self.seed
            )
        # Budget exhausted: dead-letter; try to restore last-known-good.
        self._move(record, RolloutState.FAILED)
        if self.last_known_good.get(element):
            return at + self.policy.backoff(
                self.policy.max_attempts, key=element, seed=self.seed
            )
        return None

    def _step_rollback(
        self, element: str, now: float, record: ElementRollout
    ) -> Optional[float]:
        attempt = self._rollback_attempts.get(element, 0) + 1
        self._rollback_attempts[element] = attempt
        outcome = self._deliver(
            element, self.last_known_good[element], record, rollback=True
        )
        phase, reason, elapsed, exchanges, _generation = outcome
        at = now + elapsed
        ok = phase is None
        record.history.append(
            AttemptRecord(
                attempt=attempt,
                phase="rollback",
                outcome="ok" if ok else f"{phase}: {reason}",
                at_s=at,
                exchanges=exchanges,
            )
        )
        if ok:
            self._move(record, RolloutState.ROLLED_BACK)
            return None
        if attempt < self.policy.rollback_attempts:
            return at + self.policy.backoff(
                attempt, key=f"{element}#rollback", seed=self.seed
            )
        return None  # stays FAILED: nothing more we can do from here

    # ------------------------------------------------------------------
    # One two-phase delivery attempt.
    # ------------------------------------------------------------------
    def _deliver(
        self,
        element: str,
        text: str,
        record: ElementRollout,
        rollback: bool,
    ) -> Tuple[Optional[str], str, float, int, Optional[int]]:
        """Stage, verify, apply, confirm.  Returns
        ``(failed_phase | None, reason, elapsed_s, exchanges, generation)``."""
        from repro.snmp.agent import (
            ADMIN_COMMUNITY,
            NMSL_CONFIG_APPLY,
            NMSL_CONFIG_DIGEST,
            NMSL_CONFIG_GENERATION,
            NMSL_CONFIG_RESET,
            NMSL_CONFIG_TEXT,
        )
        from repro.snmp.manager import SnmpManager

        manager = SnmpManager(ADMIN_COMMUNITY, self.channels[element])
        elapsed = 0.0
        exchanges = 0
        o = obs.current()

        def exchange(op, phase: str):
            nonlocal elapsed, exchanges
            retries = self.policy.exchange_retries
            while True:
                exchanges += 1
                if o.enabled:
                    o.counter(
                        "repro_rollout_exchanges_total",
                        "protocol exchanges attempted, by delivery phase",
                        phase=phase,
                    ).inc()
                try:
                    result = op()
                except DeliveryTimeout as exc:
                    elapsed += self.policy.timeout_s
                    if o.enabled:
                        o.counter(
                            "repro_rollout_timeouts_total",
                            "exchanges that timed out",
                            phase=phase,
                        ).inc()
                    if retries <= 0:
                        raise _AttemptFailed(phase, f"timeout: {exc}") from exc
                    retries -= 1
                    if o.enabled:
                        o.counter(
                            "repro_rollout_retransmissions_total",
                            "exchange-level retransmissions after a timeout",
                            phase=phase,
                        ).inc()
                    continue
                except DeliveryError as exc:
                    elapsed += self.policy.rtt_s
                    raise _AttemptFailed(phase, f"delivery: {exc}") from exc
                except SnmpError as exc:
                    elapsed += self.policy.rtt_s
                    raise _AttemptFailed(phase, f"protocol: {exc}") from exc
                elapsed += self.policy.rtt_s
                return result

        octets = text.encode("utf-8")
        try:
            generation_before = exchange(
                lambda: manager.get_one(NMSL_CONFIG_GENERATION), "stage"
            )
            exchange(lambda: manager.set([(NMSL_CONFIG_RESET, 1)]), "stage")
            for start in range(0, len(octets), self.chunk_size):
                chunk = octets[start : start + self.chunk_size]
                exchange(
                    lambda c=chunk: manager.set([(NMSL_CONFIG_TEXT, c)]),
                    "stage",
                )
            if not rollback:
                self._move(record, RolloutState.STAGED)
            staged_digest = exchange(
                lambda: manager.get_one(NMSL_CONFIG_DIGEST), "verify"
            )
            if bytes(staged_digest) != config_fingerprint(text):
                raise _AttemptFailed(
                    "verify", "fingerprint mismatch on staged configuration"
                )
            if not rollback:
                self._move(record, RolloutState.VERIFIED)
            exchange(lambda: manager.set([(NMSL_CONFIG_APPLY, 1)]), "apply")
            generation_after = exchange(
                lambda: manager.get_one(NMSL_CONFIG_GENERATION), "confirm"
            )
            if not isinstance(generation_after, int) or (
                isinstance(generation_before, int)
                and generation_after <= generation_before
            ):
                raise _AttemptFailed(
                    "confirm",
                    f"generation did not advance "
                    f"({generation_before!r} -> {generation_after!r})",
                )
            if not rollback:
                self._move(record, RolloutState.COMMITTED)
            return None, "", elapsed, exchanges, generation_after
        except _AttemptFailed as failure:
            return failure.phase, failure.reason, elapsed, exchanges, None

    # ------------------------------------------------------------------
    # State machine enforcement.
    # ------------------------------------------------------------------
    @staticmethod
    def _move(record: ElementRollout, state: RolloutState) -> None:
        if record.state is state:
            return
        if state not in TRANSITIONS[record.state]:
            raise RolloutError(
                f"illegal transition {record.state.value} -> {state.value} "
                f"for {record.element}"
            )
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_rollout_transitions_total",
                "per-element state-machine transitions",
                from_state=record.state.value,
                to_state=state.value,
            ).inc()
        record.state = state
