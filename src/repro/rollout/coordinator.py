"""The rollout coordinator: fault-tolerant two-phase configuration delivery.

The paper ships compiled configuration "via the normal network management
protocol" (Section 5); this module makes that path survive a hostile
internet.  For each element the coordinator performs a two-phase apply
over plain SNMP Sets/Gets against the agent's enterprise staging objects:

1. **stage** — read the element's current config generation, truncate the
   staging object, then write the configuration text in bounded chunks;
2. **verify** — read back the staged text's SHA-256 fingerprint and
   compare it against the locally computed one (catching corrupted,
   duplicated, or torn chunk deliveries);
3. **apply** — trigger the atomic apply object;
4. **confirm** — read the generation number again and require it to have
   advanced.

Any failed exchange fails the whole attempt; attempts retry under an
exponential-backoff schedule with deterministic jitter
(:class:`~repro.rollout.retry.RetryPolicy`).  Elements that exhaust the
budget are rolled back to their last-known-good configuration (same
two-phase machinery) and land in the dead-letter list either way, so a
campus-wide sweep degrades to partial success with a structured
:class:`~repro.rollout.state.RolloutReport` instead of aborting.

Time is logical: successful exchanges cost ``policy.rtt_s``, timeouts
cost ``policy.timeout_s``, and a deterministic event loop interleaves at
most ``jobs`` elements at once — the whole campaign is a pure function of
(channels, configs, policy, seed).

**Durability.**  Given a :class:`~repro.rollout.journal.RolloutJournal`,
the coordinator write-ahead-logs every admission, attempt start,
protocol exchange outcome, state transition, and retry decision before
acting on it.  A coordinator killed at any point (the
``crash_coordinator_after`` chaos hook raises
:class:`~repro.errors.CoordinatorCrash` after N journaled events) can be
reincarnated with :meth:`RolloutCoordinator.resume`: committed elements
are skipped outright, a half-finished delivery attempt replays its
journaled exchanges and continues live from the next one — re-verifying
any staged-but-unapplied text with a fresh digest read-back, and
disambiguating an in-doubt apply trigger with a generation read-back so
no element ever receives a duplicate apply.  Under the logical clock the
resumed campaign's report is byte-identical to an uninterrupted run.

A :class:`~repro.heal.registry.HealthRegistry` may be attached; elements
it has quarantined are dead-lettered immediately instead of being
hammered — the reconciler (``repro.heal``) owns moving them back.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.errors import (
    CoordinatorCrash,
    DeliveryError,
    DeliveryTimeout,
    JournalError,
    RolloutError,
    SnmpError,
)
from repro.rollout.journal import (
    InterruptedAttempt,
    JournalState,
    RolloutJournal,
    SCHEMA_VERSION,
    config_digest,
)
from repro.rollout.retry import RetryPolicy
from repro.rollout.state import (
    AttemptRecord,
    ElementRollout,
    RolloutReport,
    RolloutState,
    TRANSITIONS,
)

#: A protocol channel to one element: request octets in, response octets out.
SendFunction = Callable[[bytes], bytes]


def config_fingerprint(text: str) -> bytes:
    """The fingerprint the agent must echo for a staged configuration."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest().encode("ascii")


class _AttemptFailed(RolloutError):
    """Internal: one delivery attempt failed in a named phase."""

    def __init__(self, phase: str, reason: str):
        super().__init__(f"{phase}: {reason}")
        self.phase = phase
        self.reason = reason


def _encode_result(value) -> object:
    """JSON-safe encoding of an exchange result for the journal."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return {"bytes": bytes(value).decode("latin-1")}
    return None  # sets return bindings the replay never needs


def _decode_result(value) -> object:
    if isinstance(value, dict):
        octets = value.get("bytes")
        return octets.encode("latin-1") if octets is not None else None
    return value


class RolloutCoordinator:
    """Drives a configuration campaign across many elements."""

    def __init__(
        self,
        channels: Dict[str, SendFunction],
        configs: Dict[str, str],
        policy: Optional[RetryPolicy] = None,
        jobs: int = 4,
        seed: int = 1989,
        last_known_good: Optional[Dict[str, str]] = None,
        chunk_size: int = 1024,
        journal: Optional[RolloutJournal] = None,
        crash_coordinator_after: Optional[int] = None,
        health=None,
        gate=None,
        deadline=None,
    ):
        if jobs < 1:
            raise RolloutError(f"jobs must be at least 1, got {jobs}")
        if chunk_size < 1:
            raise RolloutError(f"chunk_size must be at least 1, got {chunk_size}")
        if crash_coordinator_after is not None and crash_coordinator_after < 1:
            raise RolloutError(
                "crash_coordinator_after must be at least 1, got "
                f"{crash_coordinator_after}"
            )
        if gate is not None:
            # The relational gate both vetoes (unwaived access widening —
            # before any element is touched) and narrows the campaign to
            # the impacted elements, before channel validation so pruned
            # targets need no channel either.
            gate.check()
            configs = gate.filter_targets(configs)
        missing = sorted(set(configs) - set(channels))
        if missing:
            raise RolloutError(
                "no delivery channel for element(s): " + ", ".join(missing)
            )
        self.channels = channels
        self.configs = configs
        self.policy = policy or RetryPolicy()
        self.jobs = jobs
        self.seed = seed
        self.last_known_good = dict(last_known_good or {})
        self.chunk_size = chunk_size
        self.journal = journal
        self.crash_coordinator_after = crash_coordinator_after
        self.health = health
        self.gate = gate
        #: Optional :class:`repro.deadline.Deadline` — polled between
        #: event-loop steps so an over-budget service campaign aborts
        #: (journaled, resumable) instead of running to completion.
        self.deadline = deadline
        self._rollback_attempts: Dict[str, int] = {}
        self._replays: Dict[str, List[dict]] = {}
        self._events = 0

    # ------------------------------------------------------------------
    # Journaling and the coordinator-crash chaos hook.
    # ------------------------------------------------------------------
    def _journal_record(self, record: dict) -> None:
        """Append one WAL record, then maybe die (chaos hook).

        The crash fires *after* the append so the journal always holds
        the record — mirroring a process killed right after a durable
        write, the worst point for a non-journaled coordinator.
        """
        if self.journal is not None:
            self.journal.append(record)
        self._events += 1
        if (
            self.crash_coordinator_after is not None
            and self._events >= self.crash_coordinator_after
        ):
            raise CoordinatorCrash(
                f"coordinator killed after {self._events} journaled event(s)"
            )

    def _journal_header(self) -> None:
        if self.journal is not None and self.journal.trace_id is None:
            # Service handlers stamp the journal from the request; a
            # coordinator driven under an open span (e.g. a traced CLI
            # run) picks up the ambient context instead.  Outside any
            # trace this is a no-op and records stay exactly as before.
            context = obs.current().current_context()
            if context is not None:
                self.journal.set_trace(context)
        self._journal_record(
            {
                "type": "campaign",
                "schema": SCHEMA_VERSION,
                "seed": self.seed,
                "jobs": self.jobs,
                "chunk_size": self.chunk_size,
                "policy": {
                    "max_attempts": self.policy.max_attempts,
                    "exchange_retries": self.policy.exchange_retries,
                    "timeout_s": self.policy.timeout_s,
                    "rtt_s": self.policy.rtt_s,
                    "base_backoff_s": self.policy.base_backoff_s,
                    "multiplier": self.policy.multiplier,
                    "max_backoff_s": self.policy.max_backoff_s,
                    "jitter": self.policy.jitter,
                    "rollback_attempts": self.policy.rollback_attempts,
                },
                "elements": {
                    name: config_digest(text)
                    for name, text in sorted(self.configs.items())
                },
            }
        )

    def _journal_exchange(
        self,
        element: str,
        phase: str,
        op: str,
        outcome: str,
        elapsed: float,
        result=None,
        reason: Optional[str] = None,
    ) -> None:
        record = {
            "type": "exchange",
            "element": element,
            "phase": phase,
            "op": op,
            "outcome": outcome,
            "elapsed": elapsed,
        }
        if result is not None:
            record["result"] = _encode_result(result)
        if reason is not None:
            record["reason"] = reason
        self._journal_record(record)

    def _journal_attempt(
        self,
        element: str,
        entry: AttemptRecord,
        rollback: bool,
        next_ready: Optional[float],
        generation: Optional[int] = None,
    ) -> None:
        self._journal_record(
            {
                "type": "attempt",
                "element": element,
                "attempt": entry.attempt,
                "phase": entry.phase,
                "outcome": entry.outcome,
                "at_s": entry.at_s,
                "exchanges": entry.exchanges,
                "rollback": rollback,
                "next_ready": next_ready,
                "generation": generation,
            }
        )

    # ------------------------------------------------------------------
    # The campaign event loop.
    # ------------------------------------------------------------------
    def run(self) -> RolloutReport:
        """Deliver every configuration; never raises for per-element faults."""
        report = RolloutReport(
            seed=self.seed,
            jobs=self.jobs,
            elements={
                name: ElementRollout(name) for name in sorted(self.configs)
            },
        )
        self._journal_header()
        quarantined = self._quarantined(report)
        waiting = deque(
            name for name in sorted(self.configs) if name not in quarantined
        )
        return self._run_loop(report, waiting, [], 0.0, 0.0)

    def _quarantined(self, report: RolloutReport) -> set:
        """Dead-letter elements the health registry has quarantined."""
        if self.health is None:
            return set()
        names = {
            name
            for name in self.configs
            if self.health.is_quarantined(name)
        }
        for name in sorted(names):
            record = report.elements[name]
            self._transition(record, RolloutState.FAILED)
            entry = AttemptRecord(
                attempt=0,
                phase="quarantine",
                outcome="quarantined by health registry",
                at_s=0.0,
                exchanges=0,
            )
            record.history.append(entry)
            self._journal_attempt(name, entry, rollback=False, next_ready=None)
        return names

    def _run_loop(
        self,
        report: RolloutReport,
        waiting: deque,
        in_flight: List[Tuple[float, str]],
        now: float,
        finished_at: float,
    ) -> RolloutReport:
        o = obs.current()
        with o.span(
            "rollout.run",
            elements=len(self.configs),
            jobs=self.jobs,
            seed=self.seed,
        ) as span:
            heapq.heapify(in_flight)
            while in_flight or waiting:
                if self.deadline is not None:
                    self.deadline.check("rollout.campaign")
                while len(in_flight) < self.jobs and waiting:
                    element = waiting.popleft()
                    self._journal_record(
                        {"type": "admit", "element": element, "at": now}
                    )
                    heapq.heappush(in_flight, (now, element))
                ready_at, element = heapq.heappop(in_flight)
                now = max(now, ready_at)
                # Feed simulated time to the observability clock so spans
                # recorded under a logical clock track campaign time.
                o.set_time(now)
                next_ready = self._step(element, ready_at, now, report)
                finished_at = max(finished_at, now)
                if next_ready is not None:
                    heapq.heappush(in_flight, (next_ready, element))
            report.duration_s = max(
                finished_at,
                max(
                    (
                        record.history[-1].at_s
                        for record in report.elements.values()
                        if record.history
                    ),
                    default=0.0,
                ),
            )
            o.set_time(report.duration_s)
            self._journal_record({"type": "end", "duration_s": report.duration_s})
            span.annotate(
                committed=sum(
                    record.state is RolloutState.COMMITTED
                    for record in report.elements.values()
                ),
                dead_letters=len(report.dead_letter()),
            )
        if o.enabled:
            for record in report.elements.values():
                o.counter(
                    "repro_rollout_elements_total",
                    "campaign elements by terminal state",
                    state=record.state.value,
                ).inc()
        return report

    # ------------------------------------------------------------------
    # Crash-resume.
    # ------------------------------------------------------------------
    def resume(
        self, journal: Union[RolloutJournal, str, Path]
    ) -> RolloutReport:
        """Continue a journaled campaign where a dead coordinator stopped.

        Rebuilds the scheduler (waiting queue, in-flight heap with the
        original ready times, logical clock, retry counters) and each
        element's record from the journal, skips elements the journal
        proves terminal, replays any half-finished attempt's journaled
        exchanges and continues it live, then re-enters the ordinary
        event loop.  The coordinator must be constructed with the same
        configs, policy, seed, jobs and chunk size as the original —
        the campaign header is cross-checked and a mismatch raises
        :class:`~repro.errors.JournalError`.
        """
        if isinstance(journal, (str, Path)):
            journal = RolloutJournal.load(journal)
        state = journal.replay()
        self._validate_resume(state)
        if self.journal is None:
            self.journal = journal
        else:
            self._journal_header()
        if state.finished:
            return state.report()
        report = RolloutReport(seed=self.seed, jobs=self.jobs, elements={})
        waiting_names: List[str] = []
        in_flight: List[Tuple[float, str]] = []
        self._replays = {}
        for name in sorted(self.configs):
            journaled = state.elements[name]
            record = journaled.as_rollout()
            report.elements[name] = record
            if journaled.rollback_attempts:
                self._rollback_attempts[name] = journaled.rollback_attempts
            interrupted = journaled.interrupted
            if interrupted is not None:
                # The attempt re-executes: journaled exchanges replay,
                # the rest run live.  Roll the record back to the state
                # it had when the attempt started.
                if interrupted.rollback:
                    record.state = RolloutState.FAILED
                    self._rollback_attempts[name] = interrupted.attempt - 1
                else:
                    record.state = RolloutState.PENDING
                    record.attempts = interrupted.attempt - 1
                self._replays[name] = self._build_replay(name, interrupted)
                heapq.heappush(in_flight, (interrupted.ready_at, name))
            elif record.state in (
                RolloutState.COMMITTED,
                RolloutState.ROLLED_BACK,
            ):
                continue  # proven terminal: never re-applied
            elif record.state is RolloutState.FAILED and (
                journaled.next_ready is None
            ):
                continue  # dead-lettered with no rollback pending
            elif journaled.started:
                ready = (
                    journaled.next_ready
                    if journaled.next_ready is not None
                    else journaled.admitted_at
                )
                heapq.heappush(in_flight, (ready, name))
            else:
                waiting_names.append(name)
        self._journal_record({"type": "resume", "replayed_events": state.events})
        return self._run_loop(
            report, deque(waiting_names), in_flight, state.now, state.now
        )

    def _validate_resume(self, state: JournalState) -> None:
        header = state.header
        mismatches = []
        for key, mine in (
            ("seed", self.seed),
            ("jobs", self.jobs),
            ("chunk_size", self.chunk_size),
        ):
            if header.get(key) != mine:
                mismatches.append(f"{key}: journal {header.get(key)!r} != {mine!r}")
        journaled = header.get("elements", {})
        if set(journaled) != set(self.configs):
            mismatches.append(
                "element set differs "
                f"(journal {sorted(journaled)}, campaign {sorted(self.configs)})"
            )
        else:
            for name, text in self.configs.items():
                if journaled[name] != config_digest(text):
                    mismatches.append(f"configuration for {name} changed")
        policy = header.get("policy", {})
        if policy.get("max_attempts") != self.policy.max_attempts or (
            policy.get("exchange_retries") != self.policy.exchange_retries
        ):
            mismatches.append("retry policy differs")
        if mismatches:
            raise JournalError(
                "journal does not match this campaign: " + "; ".join(mismatches)
            )

    def _build_replay(
        self, element: str, interrupted: InterruptedAttempt
    ) -> List[dict]:
        """Decide which journaled exchanges replay and which rerun live.

        * apply journaled **ok** — the agent committed; replay everything
          and continue at confirm (never re-apply).
        * apply intent journaled but no outcome — in doubt: a live
          generation read-back decides.  If the generation advanced the
          apply landed (synthesize its success); otherwise fall through.
        * otherwise — replay only the staging prefix, so the digest
          read-back runs live again and **re-verifies** whatever is
          actually in the agent's staging store (which may have drifted,
          or evaporated with an agent restart, while the coordinator was
          down).
        """
        events = list(interrupted.exchanges)
        apply_ok = any(
            event.get("op") == "apply" and event.get("outcome") == "ok"
            for event in events
        )
        if apply_ok:
            return events
        if interrupted.apply_intent:
            generation_before = next(
                (
                    event.get("result")
                    for event in events
                    if event.get("op") == "generation-before"
                    and event.get("outcome") == "ok"
                ),
                None,
            )
            probed = self._probe_generation(element)
            if (
                isinstance(generation_before, int)
                and isinstance(probed, int)
                and probed > generation_before
            ):
                return events + [
                    {
                        "type": "exchange",
                        "element": element,
                        "phase": "apply",
                        "op": "apply",
                        "outcome": "ok",
                        "elapsed": self.policy.rtt_s,
                    }
                ]
        return [event for event in events if event.get("phase") == "stage"]

    def _probe_generation(self, element: str) -> Optional[int]:
        """Out-of-band generation read-back for in-doubt apply triggers."""
        from repro.snmp.agent import ADMIN_COMMUNITY, NMSL_CONFIG_GENERATION
        from repro.snmp.manager import SnmpManager

        manager = SnmpManager(ADMIN_COMMUNITY, self.channels[element])
        try:
            value = manager.get_one(NMSL_CONFIG_GENERATION)
        except (SnmpError, RolloutError):
            return None
        return value if isinstance(value, int) else None

    # ------------------------------------------------------------------
    # Per-element steps.
    # ------------------------------------------------------------------
    def _step(
        self, element: str, ready_at: float, now: float, report: RolloutReport
    ) -> Optional[float]:
        """Run one attempt for *element*; returns the next wake-up time,
        or None when the element reached a terminal state."""
        record = report.elements[element]
        if record.state is RolloutState.FAILED:
            return self._step_rollback(element, ready_at, now, record)
        return self._step_forward(element, ready_at, now, record)

    def _step_forward(
        self, element: str, ready_at: float, now: float, record: ElementRollout
    ) -> Optional[float]:
        o = obs.current()
        record.attempts += 1
        self._journal_record(
            {
                "type": "attempt_start",
                "element": element,
                "attempt": record.attempts,
                "ready_at": ready_at,
                "now": now,
                "rollback": False,
            }
        )
        replay = self._replays.pop(element, None)
        with o.span(
            "rollout.attempt", element=element, attempt=record.attempts
        ) as span:
            outcome = self._deliver(
                element, self.configs[element], record, rollback=False,
                replay=replay,
            )
            phase, reason, elapsed, exchanges, generation = outcome
            at = now + elapsed
            o.set_time(at)
            ok = phase is None
            span.annotate(
                phase=phase or "commit", outcome="ok" if ok else reason
            )
        entry = AttemptRecord(
            attempt=record.attempts,
            phase=phase or "commit",
            outcome="ok" if ok else reason,
            at_s=at,
            exchanges=exchanges,
        )
        record.history.append(entry)
        if ok:
            record.generation = generation
            self._journal_attempt(
                element, entry, rollback=False, next_ready=None,
                generation=generation,
            )
            return None
        if record.attempts < self.policy.max_attempts:
            self._transition(record, RolloutState.PENDING)
            if o.enabled:
                o.counter(
                    "repro_rollout_retries_total",
                    "attempt-level retries scheduled",
                    element=element,
                ).inc()
            next_ready = at + self.policy.backoff(
                record.attempts, key=element, seed=self.seed
            )
            self._journal_attempt(
                element, entry, rollback=False, next_ready=next_ready
            )
            return next_ready
        # Budget exhausted: dead-letter; try to restore last-known-good.
        self._transition(record, RolloutState.FAILED)
        if self.last_known_good.get(element):
            next_ready = at + self.policy.backoff(
                self.policy.max_attempts, key=element, seed=self.seed
            )
            self._journal_attempt(
                element, entry, rollback=False, next_ready=next_ready
            )
            return next_ready
        self._journal_attempt(element, entry, rollback=False, next_ready=None)
        return None

    def _step_rollback(
        self, element: str, ready_at: float, now: float, record: ElementRollout
    ) -> Optional[float]:
        attempt = self._rollback_attempts.get(element, 0) + 1
        self._rollback_attempts[element] = attempt
        self._journal_record(
            {
                "type": "attempt_start",
                "element": element,
                "attempt": attempt,
                "ready_at": ready_at,
                "now": now,
                "rollback": True,
            }
        )
        replay = self._replays.pop(element, None)
        outcome = self._deliver(
            element, self.last_known_good[element], record, rollback=True,
            replay=replay,
        )
        phase, reason, elapsed, exchanges, _generation = outcome
        at = now + elapsed
        ok = phase is None
        entry = AttemptRecord(
            attempt=attempt,
            phase="rollback",
            outcome="ok" if ok else f"{phase}: {reason}",
            at_s=at,
            exchanges=exchanges,
        )
        record.history.append(entry)
        if ok:
            self._transition(record, RolloutState.ROLLED_BACK)
            self._journal_attempt(element, entry, rollback=True, next_ready=None)
            return None
        if attempt < self.policy.rollback_attempts:
            next_ready = at + self.policy.backoff(
                attempt, key=f"{element}#rollback", seed=self.seed
            )
            self._journal_attempt(
                element, entry, rollback=True, next_ready=next_ready
            )
            return next_ready
        self._journal_attempt(element, entry, rollback=True, next_ready=None)
        return None  # stays FAILED: nothing more we can do from here

    # ------------------------------------------------------------------
    # One two-phase delivery attempt.
    # ------------------------------------------------------------------
    def _deliver(
        self,
        element: str,
        text: str,
        record: ElementRollout,
        rollback: bool,
        replay: Optional[List[dict]] = None,
    ) -> Tuple[Optional[str], str, float, int, Optional[int]]:
        """Stage, verify, apply, confirm.  Returns
        ``(failed_phase | None, reason, elapsed_s, exchanges, generation)``.

        ``replay`` is the journaled exchange tail of an interrupted
        attempt: those outcomes are consumed positionally instead of
        touching the wire, and the attempt continues live from the first
        un-journaled exchange.
        """
        from repro.snmp.agent import (
            ADMIN_COMMUNITY,
            NMSL_CONFIG_APPLY,
            NMSL_CONFIG_DIGEST,
            NMSL_CONFIG_GENERATION,
            NMSL_CONFIG_RESET,
            NMSL_CONFIG_TEXT,
        )
        from repro.snmp.manager import SnmpManager

        manager = SnmpManager(ADMIN_COMMUNITY, self.channels[element])
        elapsed = 0.0
        exchanges = 0
        o = obs.current()
        replay_queue = deque(replay or ())

        def exchange(op, phase: str, opname: str):
            nonlocal elapsed, exchanges
            retries = self.policy.exchange_retries
            while True:
                exchanges += 1
                if replay_queue:
                    event = replay_queue.popleft()
                    if event.get("op") != opname:
                        raise JournalError(
                            f"journal replay for {element} expected exchange "
                            f"{opname!r}, found {event.get('op')!r}"
                        )
                    elapsed += event.get("elapsed", 0.0)
                    outcome = event.get("outcome")
                    if outcome == "ok":
                        return _decode_result(event.get("result"))
                    if outcome == "timeout":
                        if retries <= 0:
                            raise _AttemptFailed(
                                phase, event.get("reason", "timeout")
                            )
                        retries -= 1
                        continue
                    raise _AttemptFailed(phase, event.get("reason", outcome))
                if o.enabled:
                    o.counter(
                        "repro_rollout_exchanges_total",
                        "protocol exchanges attempted, by delivery phase",
                        phase=phase,
                    ).inc()
                try:
                    result = op()
                except DeliveryTimeout as exc:
                    elapsed += self.policy.timeout_s
                    reason = f"timeout: {exc}"
                    self._journal_exchange(
                        element, phase, opname, "timeout",
                        self.policy.timeout_s, reason=reason,
                    )
                    if o.enabled:
                        o.counter(
                            "repro_rollout_timeouts_total",
                            "exchanges that timed out",
                            phase=phase,
                        ).inc()
                    if retries <= 0:
                        raise _AttemptFailed(phase, reason) from exc
                    retries -= 1
                    if o.enabled:
                        o.counter(
                            "repro_rollout_retransmissions_total",
                            "exchange-level retransmissions after a timeout",
                            phase=phase,
                        ).inc()
                    continue
                except DeliveryError as exc:
                    elapsed += self.policy.rtt_s
                    reason = f"delivery: {exc}"
                    self._journal_exchange(
                        element, phase, opname, "delivery",
                        self.policy.rtt_s, reason=reason,
                    )
                    raise _AttemptFailed(phase, reason) from exc
                except SnmpError as exc:
                    elapsed += self.policy.rtt_s
                    reason = f"protocol: {exc}"
                    self._journal_exchange(
                        element, phase, opname, "protocol",
                        self.policy.rtt_s, reason=reason,
                    )
                    raise _AttemptFailed(phase, reason) from exc
                elapsed += self.policy.rtt_s
                self._journal_exchange(
                    element, phase, opname, "ok", self.policy.rtt_s,
                    result=result,
                )
                return result

        octets = text.encode("utf-8")
        try:
            generation_before = exchange(
                lambda: manager.get_one(NMSL_CONFIG_GENERATION),
                "stage",
                "generation-before",
            )
            exchange(
                lambda: manager.set([(NMSL_CONFIG_RESET, 1)]), "stage", "reset"
            )
            for index, start in enumerate(range(0, len(octets), self.chunk_size)):
                chunk = octets[start : start + self.chunk_size]
                exchange(
                    lambda c=chunk: manager.set([(NMSL_CONFIG_TEXT, c)]),
                    "stage",
                    f"chunk-{index}",
                )
            if not rollback:
                self._transition(record, RolloutState.STAGED)
            staged_digest = exchange(
                lambda: manager.get_one(NMSL_CONFIG_DIGEST), "verify", "digest"
            )
            if bytes(staged_digest) != config_fingerprint(text):
                raise _AttemptFailed(
                    "verify", "fingerprint mismatch on staged configuration"
                )
            if not rollback:
                self._transition(record, RolloutState.VERIFIED)
            if not replay_queue:
                # WAL the in-doubt window: if we die between this record
                # and the apply outcome, resume asks the agent whether
                # the trigger landed instead of guessing.
                self._journal_record({"type": "apply_intent", "element": element})
            exchange(
                lambda: manager.set([(NMSL_CONFIG_APPLY, 1)]), "apply", "apply"
            )
            generation_after = exchange(
                lambda: manager.get_one(NMSL_CONFIG_GENERATION),
                "confirm",
                "generation-after",
            )
            if not isinstance(generation_after, int) or (
                isinstance(generation_before, int)
                and generation_after <= generation_before
            ):
                raise _AttemptFailed(
                    "confirm",
                    f"generation did not advance "
                    f"({generation_before!r} -> {generation_after!r})",
                )
            if not rollback:
                self._transition(record, RolloutState.COMMITTED)
            return None, "", elapsed, exchanges, generation_after
        except _AttemptFailed as failure:
            return failure.phase, failure.reason, elapsed, exchanges, None

    # ------------------------------------------------------------------
    # State machine enforcement.
    # ------------------------------------------------------------------
    def _transition(self, record: ElementRollout, state: RolloutState) -> None:
        """Journal, then apply, one state-machine move."""
        if record.state is state:
            return
        if state not in TRANSITIONS[record.state]:
            raise RolloutError(
                f"illegal transition {record.state.value} -> {state.value} "
                f"for {record.element}"
            )
        self._journal_record(
            {
                "type": "transition",
                "element": record.element,
                "from": record.state.value,
                "to": state.value,
            }
        )
        self._move(record, state)

    @staticmethod
    def _move(record: ElementRollout, state: RolloutState) -> None:
        if record.state is state:
            return
        if state not in TRANSITIONS[record.state]:
            raise RolloutError(
                f"illegal transition {record.state.value} -> {state.value} "
                f"for {record.element}"
            )
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_rollout_transitions_total",
                "per-element state-machine transitions",
                from_state=record.state.value,
                to_state=state.value,
            ).inc()
        record.state = state
