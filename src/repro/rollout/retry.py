"""Retry budgets and deterministic exponential backoff.

One :class:`RetryPolicy` is shared by everything that re-delivers
configuration: the protocol-path :class:`~repro.rollout.coordinator.
RolloutCoordinator` and the file/mail :class:`~repro.codegen.transport.
ReliableTransport`.  Backoff grows exponentially and is jittered, but the
jitter is a pure function of ``(seed, key, attempt)`` — two runs with the
same seed produce bit-identical schedules regardless of scheduling order,
which is what lets the chaos suite assert reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import RolloutError


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving an element up to the dead letter list.

    ``max_attempts``
        Full two-phase delivery attempts per element (stage, verify,
        apply, confirm).  Exhaustion triggers rollback.
    ``exchange_retries``
        Retransmissions of a single protocol exchange on timeout before
        the whole attempt is failed — SNMP runs over a datagram service,
        so a lost request is retransmitted like any UDP manager would.
    ``timeout_s``
        Per-exchange deadline; a stalled or lost exchange costs this much
        logical time.
    ``rtt_s``
        Logical cost of one successful exchange.
    ``base_backoff_s`` / ``multiplier`` / ``max_backoff_s``
        Exponential backoff between attempts: attempt *n* (1-based) waits
        ``base * multiplier**(n-1)`` capped at ``max_backoff_s``.
    ``jitter``
        Fraction of the backoff added as deterministic jitter in
        ``[0, jitter * backoff)``.
    ``rollback_attempts``
        Delivery attempts granted to the restore of the last-known-good
        configuration after the forward budget is exhausted.
    """

    max_attempts: int = 5
    exchange_retries: int = 2
    timeout_s: float = 2.0
    rtt_s: float = 0.05
    base_backoff_s: float = 0.5
    multiplier: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.1
    rollback_attempts: int = 2

    def __post_init__(self):
        if self.max_attempts < 1:
            raise RolloutError("max_attempts must be at least 1")
        if self.exchange_retries < 0:
            raise RolloutError("exchange_retries must be non-negative")
        if self.timeout_s <= 0:
            raise RolloutError("timeout_s must be positive")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise RolloutError("backoff bounds must be non-negative")
        if self.multiplier < 1.0:
            raise RolloutError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise RolloutError("jitter must be in [0, 1)")

    def backoff(self, attempt: int, key: str = "", seed: int = 0) -> float:
        """Delay before retry number *attempt* (1-based) of *key*.

        The jitter draw is seeded from ``(seed, key, attempt)`` alone so
        the schedule does not depend on how tasks interleave.
        """
        if attempt < 1:
            raise RolloutError(f"attempt numbers are 1-based, got {attempt}")
        try:
            scaled = self.base_backoff_s * (self.multiplier ** (attempt - 1))
        except OverflowError:
            # Large attempt numbers overflow the float pow; the ceiling
            # would have clamped the result anyway.
            scaled = self.max_backoff_s
        base = min(scaled, self.max_backoff_s)
        if not self.jitter or not base:
            return base
        draw = random.Random(f"{seed}:{key}:{attempt}").random()
        return base * (1.0 + self.jitter * draw)

    def schedule(self, key: str = "", seed: int = 0) -> tuple:
        """The full backoff schedule for *key* (one entry per retry gap)."""
        return tuple(
            self.backoff(attempt, key=key, seed=seed)
            for attempt in range(1, self.max_attempts)
        )
