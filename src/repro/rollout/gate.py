"""The relational rollout gate: impact sets decide what ships.

A :class:`RolloutGate` is the contract between differential verification
(:mod:`repro.consistency.impact`) and the delivery machinery: a campaign
built from revision B after diffing against revision A

* stages **only the impacted elements** (most real changes are small, so
  a verified-delta rollout is near-O(change) instead of fleet-wide), and
* is **refused outright** when the diff contains unwaived blocking
  findings — an NM401 access-widening grant is the canonical one —
  before a single element is touched.

Build one with :func:`RolloutGate.from_impact` from an impact set and
its (waiver-applied) NM4xx report, then hand it to
:class:`~repro.rollout.coordinator.RolloutCoordinator` (or
``ManagementRuntime.rollout(..., gate=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.consistency.impact import ImpactSet
from repro.errors import RolloutVetoed

#: Diagnostic codes that veto a campaign when unwaived.
BLOCKING_CODES = ("NM401",)


@dataclass(frozen=True)
class RolloutGate:
    """What a relational diff allows a campaign to ship."""

    #: elements the campaign may stage (targets are matched on their
    #: element part, so per-instance targets like ``host/agent@host#0``
    #: follow their element).
    impacted_elements: FrozenSet[str]
    #: unwaived blocking findings; non-empty means the campaign is vetoed.
    blocking: Tuple[Diagnostic, ...] = ()
    description: str = ""

    @classmethod
    def from_impact(
        cls, impact: ImpactSet, report: AnalysisReport
    ) -> "RolloutGate":
        """Gate a campaign on an impact set and its NM4xx report.

        *report* should already have the waiver applied (via
        :meth:`~repro.analysis.baseline.Baseline.apply`): a waived NM401
        is suppressed, hence not gating, hence not blocking here.
        """
        blocking = tuple(
            diagnostic
            for diagnostic in report.gating()
            if diagnostic.code in BLOCKING_CODES
        )
        return cls(
            impacted_elements=frozenset(impact.impacted_elements),
            blocking=blocking,
            description=(
                f"relational gate: {len(impact.impacted_elements)} impacted "
                f"element(s), {len(blocking)} blocking finding(s)"
            ),
        )

    def permits(self) -> bool:
        return not self.blocking

    def check(self) -> None:
        """Raise :class:`RolloutVetoed` when the campaign may not ship."""
        if self.blocking:
            summary = "; ".join(
                f"{d.code} {d.subject}: {d.message}" for d in self.blocking[:3]
            )
            if len(self.blocking) > 3:
                summary += f" (+{len(self.blocking) - 3} more)"
            raise RolloutVetoed(
                f"refusing to ship: {len(self.blocking)} unwaived blocking "
                f"finding(s) — {summary}"
            )

    def filter_targets(self, configs: Dict[str, str]) -> Dict[str, str]:
        """The subset of campaign targets this gate stages.

        Targets are keyed as ``element`` or ``element/instance-id``; a
        target is staged iff its element part is impacted.
        """
        return {
            target: text
            for target, text in configs.items()
            if target.partition("/")[0] in self.impacted_elements
        }
