"""``nmslc`` — the NMSL compiler command line.

Mirrors the paper's usage: one tool, run either for consistency checking
(descriptive aspect) or with a parameter requesting configuration output
of a specific type (prescriptive aspect).

Examples::

    nmslc internet.nmsl --check
    nmslc internet.nmsl --check --engine clpr
    nmslc internet.nmsl --output BartsSnmpd
    nmslc internet.nmsl --output BartsSnmpd --ship-dir /var/spool/nmsl
    nmslc internet.nmsl --output consistency       # dump CLP(R) facts
    nmslc internet.nmsl --extensions billing.nmslx --output DavesSnmpd

The static analyzer runs as a subcommand::

    nmslc analyze internet.nmsl
    nmslc analyze examples/*.nmsl --format sarif > analysis.sarif
    nmslc analyze examples/*.nmsl --baseline analysis-baseline.json

``analyze`` exits 1 when any non-baselined error-severity diagnostic is
found (and 2 on compile failure), so it can gate CI.  The old ``--lint``
flag remains as a deprecated alias.

The relational diff verifies the *delta* between two revisions::

    nmslc diff old.nmsl new.nmsl
    nmslc diff old.nmsl new.nmsl --format sarif > diff.sarif
    nmslc diff old.nmsl new.nmsl --waiver approved-widenings.json

``diff`` computes the impact set — which permissions widened or
tightened (NM401/NM404), which references flipped verdict (NM402),
which generated configurations change byte-wise, which elements need
redrive (NM405) — and exits 1 on unwaived gating findings, 2 on
compile failure.  ``--update-waiver`` records the current gating
findings as explicitly approved; ``rollout --diff-base OLD.nmsl``
consumes the same impact set to stage only impacted elements and
refuse unwaived access widenings.

Fault-tolerant configuration rollout is also a subcommand::

    nmslc rollout internet.nmsl --output BartsSnmpd --jobs 8
    nmslc rollout internet.nmsl --max-attempts 8 --timeout 1.0 \
        --report json --chaos-loss 0.2 --chaos-crash gw.cs.campus.edu:4

``rollout`` drives the two-phase protocol install (stage, verify
fingerprint, apply, confirm generation) against simulated agents built
from the specification, with retry/backoff, rollback and a dead-letter
list; it exits 1 when any element lands in the dead letter.  With
``--journal FILE`` the campaign is write-ahead-logged and an interrupted
run (e.g. ``--chaos-crash-coordinator N``) can be continued with
``--resume``.

The self-healing loop and the runtime verifier are subcommands too::

    nmslc heal internet.nmsl --rounds 8 --interval 30 --report json
    nmslc heal internet.nmsl --resume campaign.journal
    nmslc verify-runtime internet.nmsl --duration 1800
    nmslc verify-runtime internet.nmsl --misbehave bart.watcher:5 --format json

``heal`` polls every element's running-config digest + generation,
re-drives drifted elements, and quarantines unreachable ones through
per-element circuit breakers; it exits 0 on convergence (zero drift on
reachable elements), 1 when the round budget runs out first, 2 on
errors.  ``verify-runtime`` replays the paper's verification aspect —
run the simulated internet, then check the observed query streams
against the specification's frequency promises — and exits 1 when the
network violates its specification.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from collections import Counter
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro import obs
from repro.codegen.base import ConfigurationGenerator
from repro.codegen.transport import FileDropTransport, MailSpoolTransport
from repro.consistency.checker import ConsistencyChecker, check_with_clpr
from repro.errors import ReproError
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.nmsl.extension import parse_extension


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability surface, available on every command."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="FILE",
        help="write a trace of this run to FILE (.jsonl for one span per "
        "line, anything else for Chrome trace_event JSON / Perfetto)",
    )
    group.add_argument(
        "--metrics",
        metavar="FILE",
        help="write run metrics to FILE in Prometheus text exposition",
    )
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log progress to stderr (-v info, -vv debug)",
    )
    group.add_argument(
        "--clock",
        choices=("wall", "logical"),
        default="wall",
        help="trace timestamps: wall time (default) or a deterministic "
        "logical clock (bit-identical traces for fixed seeds)",
    )


@contextlib.contextmanager
def _obs_session(
    args: argparse.Namespace, force: bool = False
) -> Iterator[Optional[obs.Observability]]:
    """Install an :class:`Observability` for one CLI command.

    Exports the trace and metrics files on the way out.  Without any
    observability flags (and without *force*) the command runs on the
    null observability — the instrumented paths cost one attribute read.
    """
    obs.configure_logging(getattr(args, "verbose", 0))
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    if not (force or trace or metrics):
        yield None
        return
    clock = (
        obs.LogicalClock()
        if getattr(args, "clock", "wall") == "logical"
        else obs.WallClock()
    )
    session = obs.Observability(clock=clock)
    previous = obs.set_current(session)
    try:
        yield session
    finally:
        obs.set_current(previous)
        if trace:
            fmt = session.tracer.write(trace)
            print(f"nmslc: wrote {fmt} trace to {trace}", file=sys.stderr)
        if metrics:
            # Mirror tracer counters (span count, cap drops) into the
            # registry so the export shows when a trace was truncated.
            session.publish_tracer_stats()
            session.metrics.write(metrics)
            print(f"nmslc: wrote metrics to {metrics}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmslc",
        description="NMSL compiler: check consistency and generate "
        "network-manager configuration",
    )
    parser.add_argument("specification", help="NMSL specification file")
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the consistency checker and report inconsistencies",
    )
    parser.add_argument(
        "--engine",
        choices=("closure", "scan", "clpr"),
        default="closure",
        help="consistency engine: indexed closure (default), the "
        "unindexed reference scan (ablation baseline), or the faithful "
        "CLP(R) path",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the consistency reduction step per administrative "
        "domain across N worker processes (closure engines only; "
        "verdicts are byte-identical to a serial check)",
    )
    parser.add_argument(
        "--output",
        metavar="TAG",
        help="generate output of this type (consistency, BartsSnmpd, "
        "acl-table, osi, or an extension tag)",
    )
    parser.add_argument(
        "--extensions",
        nargs="*",
        default=(),
        metavar="FILE",
        help="extension-language files to prepend",
    )
    parser.add_argument(
        "--ship-dir",
        metavar="DIR",
        help="ship per-element configuration as files into DIR",
    )
    parser.add_argument(
        "--mail-dir",
        metavar="DIR",
        help="ship per-element configuration as mail messages into DIR",
    )
    parser.add_argument(
        "--capacity",
        action="store_true",
        help="also warn about elements likely to be swamped",
    )
    parser.add_argument(
        "--lax",
        action="store_true",
        help="report semantic errors without aborting compilation",
    )
    parser.add_argument(
        "--format",
        action="store_true",
        help="print the specification re-rendered in canonical layout",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="deprecated alias for the 'analyze' subcommand: report "
        "static-analysis findings in text form",
    )
    parser.add_argument(
        "--list-tags",
        action="store_true",
        help="list the registered output types and exit",
    )
    parser.add_argument(
        "--diff-against",
        metavar="OLDFILE",
        help="show what changed relative to OLDFILE and which consistency "
        "problems the change introduces or fixes",
    )
    _add_obs_arguments(parser)
    return parser


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmslc analyze",
        description="Static analysis of NMSL specifications: hygiene, "
        "permission and frequency/type passes with stable diagnostic "
        "codes (NM1xx/NM2xx/NM3xx)",
    )
    parser.add_argument(
        "specifications", nargs="+", help="NMSL specification file(s)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of suppressed findings; findings in it are "
        "reported but never fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the --baseline file and exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="alias for --write-baseline",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated diagnostic codes to run (default: all)",
    )
    parser.add_argument(
        "--extensions",
        nargs="*",
        default=(),
        metavar="FILE",
        help="extension-language files to prepend",
    )
    parser.add_argument(
        "--lax",
        action="store_true",
        help="analyze even when the specification has semantic errors",
    )
    _add_obs_arguments(parser)
    return parser


def build_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmslc diff",
        description="Relational spec diff: verify the delta between two "
        "specification revisions — permission widenings/tightenings, "
        "verdict flips, configuration rewrites and redrives — reported "
        "as NM4xx diagnostics",
    )
    parser.add_argument("old", help="baseline (A-side) NMSL specification")
    parser.add_argument("new", help="revised (B-side) NMSL specification")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--waiver",
        metavar="FILE",
        help="waiver file of explicitly approved findings (same format "
        "as an analysis baseline, tool 'nmslc-diff'); waived findings "
        "are reported but never fail the run",
    )
    parser.add_argument(
        "--update-waiver",
        action="store_true",
        help="write the current gating findings to the --waiver file "
        "and exit 0",
    )
    parser.add_argument(
        "--output",
        metavar="TAGS",
        default="BartsSnmpd",
        help="comma-separated configuration output tags to fingerprint "
        "for byte-wise change detection (default: BartsSnmpd)",
    )
    parser.add_argument(
        "--full-config-scan",
        action="store_true",
        help="fingerprint every element, not just impacted ones; "
        "enables NM403 (config rewrite without spec cause) at the cost "
        "of two full generation runs",
    )
    parser.add_argument(
        "--engine",
        choices=("indexed", "scan"),
        default="indexed",
        help="consistency engine for the baseline check (default: indexed)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the baseline check (default: 1)",
    )
    parser.add_argument(
        "--extensions",
        nargs="*",
        default=(),
        metavar="FILE",
        help="extension-language files to prepend to both revisions",
    )
    parser.add_argument(
        "--report-file",
        metavar="FILE",
        help="also write the JSON diagnostic report to FILE (CI artifact)",
    )
    _add_obs_arguments(parser)
    return parser


def build_rollout_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmslc rollout",
        description="Fault-tolerant configuration rollout: transactional "
        "two-phase delivery with retry/backoff, rollback to "
        "last-known-good, and a dead-letter list",
    )
    parser.add_argument("specification", help="NMSL specification file")
    parser.add_argument(
        "--output",
        metavar="TAG",
        default="BartsSnmpd",
        help="configuration output type to roll out (default: BartsSnmpd)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        metavar="N",
        help="delivery attempts per element before dead-lettering (default: 5)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="per-exchange deadline in logical seconds (default: 2.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="bounded in-flight concurrency (default: 4)",
    )
    parser.add_argument(
        "--report",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--report-file",
        metavar="FILE",
        help="also write the JSON RolloutReport to FILE (CI artifact)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1989,
        metavar="N",
        help="seed for backoff jitter and chaos injection (default: 1989)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=1024,
        metavar="OCTETS",
        help="staging chunk size per Set (default: 1024)",
    )
    parser.add_argument(
        "--baseline-install",
        action="store_true",
        help="direct-install the configuration first so every agent has a "
        "last-known-good to roll back to (simulates a brownfield campus)",
    )
    parser.add_argument(
        "--diff-base",
        metavar="FILE",
        help="previously shipped specification revision; the campaign "
        "stages only elements impacted by the delta and refuses to "
        "ship unwaived access widenings (NM401)",
    )
    parser.add_argument(
        "--waiver",
        metavar="FILE",
        help="waiver file of approved relational findings "
        "(see nmslc diff --update-waiver); only used with --diff-base",
    )
    parser.add_argument(
        "--journal",
        metavar="FILE",
        help="write-ahead-log every campaign event to FILE (JSONL); makes "
        "the campaign resumable after a coordinator crash",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the journal after every record (durability over speed)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume the interrupted campaign recorded in --journal FILE "
        "instead of starting fresh",
    )
    chaos = parser.add_argument_group("chaos injection (seeded, deterministic)")
    chaos.add_argument(
        "--chaos-loss", type=float, default=0.0, metavar="RATE",
        help="drop this fraction of deliveries (timeout)",
    )
    chaos.add_argument(
        "--chaos-stall", type=float, default=0.0, metavar="RATE",
        help="stall this fraction of responses past the deadline",
    )
    chaos.add_argument(
        "--chaos-corrupt", type=float, default=0.0, metavar="RATE",
        help="corrupt one octet of this fraction of deliveries",
    )
    chaos.add_argument(
        "--chaos-duplicate", type=float, default=0.0, metavar="RATE",
        help="deliver this fraction of requests twice",
    )
    chaos.add_argument(
        "--chaos-crash", action="append", default=[], metavar="ELEMENT[:N]",
        help="crash ELEMENT's agent after N delivered messages (default 3); "
        "repeatable",
    )
    chaos.add_argument(
        "--chaos-wedge", action="append", default=[], metavar="ELEMENT[:N]",
        help="stall every response from ELEMENT after N messages "
        "(default 0); repeatable",
    )
    chaos.add_argument(
        "--chaos-flap", action="append", default=[], metavar="ELEMENT[:N]",
        help="flap ELEMENT's agent: crash after every N delivered messages "
        "(default 6), restarting on the next contact; repeatable",
    )
    chaos.add_argument(
        "--chaos-corrupt-store", action="append", default=[],
        metavar="ELEMENT[:N]",
        help="corrupt ELEMENT's persisted config store after N delivered "
        "messages (default 6); repeatable",
    )
    chaos.add_argument(
        "--chaos-crash-coordinator", type=int, metavar="N",
        help="kill the coordinator itself after N journaled events "
        "(exit 2; combine with --journal, then --resume)",
    )
    _add_obs_arguments(parser)
    return parser


def build_heal_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmslc heal",
        description="Self-healing reconciliation loop: poll every "
        "element's running-config digest and generation, re-drive "
        "drifted elements through the rollout machinery, and quarantine "
        "persistently unreachable ones via circuit breakers",
    )
    parser.add_argument("specification", help="NMSL specification file")
    parser.add_argument(
        "--output",
        metavar="TAG",
        default="BartsSnmpd",
        help="configuration output type to reconcile (default: BartsSnmpd)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=10,
        metavar="N",
        help="reconciliation round budget (default: 10)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="logical seconds between rounds (default: 30)",
    )
    parser.add_argument(
        "--resume",
        metavar="JOURNAL",
        help="first finish the interrupted rollout campaign recorded in "
        "JOURNAL, then reconcile",
    )
    parser.add_argument(
        "--report",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--report-file",
        metavar="FILE",
        help="also write the JSON HealReport to FILE (CI artifact)",
    )
    parser.add_argument(
        "--seed", type=int, default=1989, metavar="N",
        help="seed for backoff jitter and chaos injection (default: 1989)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="re-drive concurrency (default: 4)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=5, metavar="N",
        help="delivery attempts per re-driven element (default: 5)",
    )
    parser.add_argument(
        "--timeout", type=float, default=2.0, metavar="SECONDS",
        help="per-exchange deadline in logical seconds (default: 2.0)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=1024, metavar="OCTETS",
        help="staging chunk size per Set (default: 1024)",
    )
    parser.add_argument(
        "--install",
        action="store_true",
        help="direct-install the configuration first (otherwise round 1 "
        "treats every element as drifted and converges by re-driving)",
    )
    breaker = parser.add_argument_group("circuit breakers")
    breaker.add_argument(
        "--failure-threshold", type=int, default=3, metavar="N",
        help="consecutive failures that open an element's breaker "
        "(default: 3)",
    )
    breaker.add_argument(
        "--cooldown", type=float, default=60.0, metavar="SECONDS",
        help="base breaker cool-down, doubling per open (default: 60)",
    )
    breaker.add_argument(
        "--quarantine-after", type=int, default=3, metavar="N",
        help="breaker opens before an element is quarantined (default: 3)",
    )
    chaos = parser.add_argument_group("chaos injection (seeded, deterministic)")
    chaos.add_argument(
        "--chaos-loss", type=float, default=0.0, metavar="RATE",
        help="drop this fraction of deliveries (timeout)",
    )
    chaos.add_argument(
        "--chaos-stall", type=float, default=0.0, metavar="RATE",
        help="stall this fraction of responses past the deadline",
    )
    chaos.add_argument(
        "--chaos-crash", action="append", default=[], metavar="ELEMENT[:N]",
        help="crash ELEMENT's agent (permanently) after N delivered "
        "messages (default 3); repeatable",
    )
    chaos.add_argument(
        "--chaos-flap", action="append", default=[], metavar="ELEMENT[:N]",
        help="flap ELEMENT's agent every N delivered messages (default 6); "
        "repeatable",
    )
    chaos.add_argument(
        "--chaos-corrupt-store", action="append", default=[],
        metavar="ELEMENT[:N]",
        help="corrupt ELEMENT's persisted config store after N delivered "
        "messages (default 6); repeatable",
    )
    _add_obs_arguments(parser)
    return parser


def build_verify_runtime_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmslc verify-runtime",
        description="The paper's verification aspect: run the simulated "
        "internet under the installed configuration, then check the "
        "observed query streams against the specification's frequency "
        "promises",
    )
    parser.add_argument("specification", help="NMSL specification file")
    parser.add_argument(
        "--duration", type=float, default=1800.0, metavar="SECONDS",
        help="simulated runtime (default: 1800)",
    )
    parser.add_argument(
        "--misbehave", action="append", default=[],
        metavar="INSTANCE[:PERIOD]",
        help="make INSTANCE query every PERIOD seconds (default 1), "
        "violating its promise; repeatable",
    )
    parser.add_argument(
        "--loss", type=float, default=0.0, metavar="RATE",
        help="drop this fraction of queries in the network (default: 0)",
    )
    parser.add_argument(
        "--seed", type=int, default=1989, metavar="N",
        help="seed for loss injection (default: 1989)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=1e-6, metavar="SECONDS",
        help="slack when comparing inter-arrival times (default: 1e-6)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    _add_obs_arguments(parser)
    return parser


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmslc profile",
        description="Profile a compile + consistency check (+ optional "
        "codegen): per-phase time breakdown from the tracer, per-rule "
        "and per-keyword detail from the metrics registry",
    )
    parser.add_argument("specification", help="NMSL specification file")
    parser.add_argument(
        "--engine",
        choices=("closure", "scan", "clpr", "datalog"),
        default="closure",
        help="consistency engine to profile (default: closure)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="reduction worker threads (closure engines only)",
    )
    parser.add_argument(
        "--output",
        metavar="TAG",
        help="also profile generating output of this type",
    )
    parser.add_argument(
        "--extensions",
        nargs="*",
        default=(),
        metavar="FILE",
        help="extension-language files to prepend",
    )
    parser.add_argument(
        "--lax",
        action="store_true",
        help="profile even when the specification has semantic errors",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows in the per-rule and per-keyword tables (default: 10)",
    )
    _add_obs_arguments(parser)
    return parser


def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmslc top",
        description="Live per-class SLO and queue view of a running "
        "nmsld: polls the status and slo operations and renders one "
        "table per tick",
    )
    parser.add_argument("--socket", help="nmsld unix socket path")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, help="nmsld TCP port")
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval (default: %(default)s)",
    )
    parser.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="exit after N ticks (default: run until interrupted)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit raw status+slo snapshots as JSONL instead of tables",
    )
    return parser


def _render_top(snapshot: dict) -> str:
    """One tick of ``nmslc top``: summary line + per-class SLO table."""
    from repro.service.client import render_watch_line

    slo = snapshot.get("slo", {})
    lines = [render_watch_line(snapshot)]
    classes = slo.get("classes", {})
    if classes:
        lines.append(
            f"{'class':<12} {'objective':<16} {'avail':>8} "
            f"{'burn':>8} {'p99_s':>10} {'alert':>8}"
        )
    for cls in sorted(classes):
        entry = classes[cls]
        objective = entry.get("objective", {})
        target = (
            f"{objective.get('latency_s', '-')}s@"
            f"{objective.get('availability', '-')}"
            if objective
            else "-"
        )
        windows = entry.get("windows", [])
        shortest = windows[0] if windows else {}
        burn = max(
            (window.get("burn_rate", 0.0) for window in windows),
            default=0.0,
        )
        lines.append(
            f"{cls:<12} {target:<16} "
            f"{shortest.get('availability', 1.0):>8.4f} "
            f"{burn:>8.2f} "
            f"{str(shortest.get('p99_s', '-')):>10} "
            f"{entry.get('alert') or '-':>8}"
        )
    pool = (snapshot.get("status") or {}).get("pool")
    if pool:
        lines.append(
            f"{'worker':<8} {'state':<8} {'pid':>8} {'served':>8} "
            f"{'restarts':>9} {'hb_age_s':>9} {'op':<10}"
        )
        for worker in pool.get("workers", []):
            lines.append(
                f"{worker.get('worker', '-'):<8} "
                f"{worker.get('state', '-'):<8} "
                f"{str(worker.get('pid', '-')):>8} "
                f"{worker.get('served', 0):>8} "
                f"{worker.get('restarts', 0):>9} "
                f"{str(worker.get('heartbeat_age_s', '-')):>9} "
                f"{worker.get('op', '-'):<10}"
            )
        quarantine = pool.get("quarantine", {})
        if quarantine.get("size"):
            lines.append(
                f"quarantine: {quarantine['size']} fingerprint(s): "
                + ", ".join(
                    f"{e.get('fingerprint')}({e.get('op')})"
                    for e in quarantine.get("entries", [])[:4]
                )
            )
    return "\n".join(lines)


def _run_top(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from repro.service.client import ServiceClient

    with ServiceClient(
        socket_path=args.socket, host=args.host, port=args.port
    ) as client:
        ticks = 0
        while True:
            snapshot = client.watch_snapshot()
            if args.json:
                print(
                    _json.dumps(
                        snapshot, sort_keys=True, separators=(",", ":")
                    )
                )
            else:
                print(_render_top(snapshot))
            ticks += 1
            if args.count is not None and ticks >= args.count:
                return 0
            _time.sleep(args.interval)


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    try:
        if argv and argv[0] == "top":
            args = build_top_parser().parse_args(argv[1:])
            try:
                return _run_top(args)
            except (ConnectionError, ValueError) as exc:
                print(f"nmslc: top: {exc}", file=sys.stderr)
                return 2
        if argv and argv[0] == "analyze":
            args = build_analyze_parser().parse_args(argv[1:])
            with _obs_session(args):
                return _run_analyze(args)
        if argv and argv[0] == "diff":
            args = build_diff_parser().parse_args(argv[1:])
            with _obs_session(args):
                return _run_diff(args)
        if argv and argv[0] == "rollout":
            args = build_rollout_parser().parse_args(argv[1:])
            with _obs_session(args):
                return _run_rollout(args)
        if argv and argv[0] == "heal":
            args = build_heal_parser().parse_args(argv[1:])
            with _obs_session(args):
                return _run_heal(args)
        if argv and argv[0] == "verify-runtime":
            args = build_verify_runtime_parser().parse_args(argv[1:])
            with _obs_session(args):
                return _run_verify_runtime(args)
        if argv and argv[0] == "profile":
            args = build_profile_parser().parse_args(argv[1:])
            with _obs_session(args, force=True) as session:
                return _run_profile(args, session)
        args = build_parser().parse_args(argv)
        with _obs_session(args):
            return _run(args)
    except ReproError as exc:
        print(f"nmslc: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"nmslc: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Campaign journals are closed by the finally blocks on the
        # way out, so an interrupted rollout stays resumable; exit with
        # the conventional 128 + SIGINT instead of a raw traceback.
        print("nmslc: interrupted", file=sys.stderr)
        return 130


def _run(args: argparse.Namespace) -> int:
    text = Path(args.specification).read_text(encoding="utf-8")
    extensions = tuple(
        parse_extension(Path(name).read_text(encoding="utf-8"))
        for name in args.extensions
    )
    compiler = NmslCompiler(
        CompilerOptions(
            filename=args.specification,
            strict=not args.lax,
            extensions=extensions,
        )
    )
    if args.list_tags:
        for tag in sorted(set(compiler.registry.tags())):
            print(tag)
        return 0
    result = compiler.compile(text)
    if args.format:
        from repro.nmsl.pprint import render_specification

        sys.stdout.write(render_specification(result.specification))
        return 0
    counts = result.specification.counts()
    print(
        f"compiled {args.specification}: "
        + ", ".join(f"{count} {kind}" for kind, count in counts.items())
    )
    for warning in result.report.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if result.report.errors:
        for error in result.report.errors:
            print(f"error: {error}", file=sys.stderr)
        return 1

    status = 0
    if args.diff_against:
        status = max(status, _diff_against(args, compiler, result))

    if args.lint:
        from repro.analysis import default_registry, render_text

        print(
            "nmslc: warning: --lint is deprecated; use 'nmslc analyze'",
            file=sys.stderr,
        )
        report = default_registry().run(compiler.analysis_context(result))
        print(render_text(report))
        if report.gating():
            status = max(status, 1)

    if args.check:
        if args.engine == "clpr":
            outcome = check_with_clpr(result.specification, compiler.tree)
        else:
            checker = ConsistencyChecker(
                result.specification,
                compiler.tree,
                engine="scan" if args.engine == "scan" else "indexed",
            )
            outcome = checker.check(
                check_capacity=args.capacity, jobs=args.jobs
            )
        print(outcome.render())
        if not outcome.consistent:
            status = 1

    if args.output:
        if args.ship_dir or args.mail_dir:
            generator = ConfigurationGenerator(compiler, result)
            if args.ship_dir:
                transport = FileDropTransport(Path(args.ship_dir))
            else:
                transport = MailSpoolTransport(Path(args.mail_dir))
            records = generator.ship(args.output, transport)
            for record in records:
                print(
                    f"shipped {record.element} via {record.method} -> "
                    f"{record.destination} ({record.octets} octets)"
                )
        else:
            bundle = compiler.generate(args.output, result)
            sys.stdout.write(bundle.text())
    return status


def _run_analyze(args: argparse.Namespace) -> int:
    """The ``nmslc analyze`` subcommand: the static-analysis CI gate."""
    from repro.analysis import (
        AnalysisReport,
        Baseline,
        default_registry,
        render,
    )

    codes: Optional[Sequence[str]] = None
    if args.select:
        codes = tuple(
            code.strip() for code in args.select.split(",") if code.strip()
        )
    extensions = tuple(
        parse_extension(Path(name).read_text(encoding="utf-8"))
        for name in args.extensions
    )
    registry = default_registry()
    merged = AnalysisReport()
    for spec_path in args.specifications:
        text = Path(spec_path).read_text(encoding="utf-8")
        compiler = NmslCompiler(
            CompilerOptions(
                filename=spec_path,
                strict=not args.lax,
                extensions=extensions,
                extension_files=tuple(args.extensions),
            )
        )
        result = compiler.compile(text)
        if result.report.errors and not args.lax:
            for error in result.report.errors:
                print(f"nmslc: error: {error}", file=sys.stderr)
            return 2
        report = registry.run(compiler.analysis_context(result), codes=codes)
        merged = merged.merged_with(report)

    if args.write_baseline or args.update_baseline:
        if not args.baseline:
            print(
                "nmslc: error: --write-baseline needs --baseline FILE",
                file=sys.stderr,
            )
            return 2
        baseline = Baseline.from_report(merged)
        baseline.save(args.baseline)
        print(
            f"wrote {len(baseline)} suppression(s) to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline and Path(args.baseline).exists():
        merged = Baseline.load(args.baseline).apply(merged)

    sys.stdout.write(render(merged, args.format, registry.passes()))
    if args.format == "text":
        sys.stdout.write("\n")
    return 1 if merged.gating() else 0


def _compile_revision(path, extensions, extension_files, lax=False):
    """Compile one revision for the diff; None + stderr on errors."""
    text = Path(path).read_text(encoding="utf-8")
    compiler = NmslCompiler(
        CompilerOptions(
            filename=str(path),
            strict=not lax,
            extensions=extensions,
            extension_files=extension_files,
        )
    )
    result = compiler.compile(text)
    if result.report.errors:
        for error in result.report.errors:
            print(f"nmslc: error: {error}", file=sys.stderr)
        return None
    return compiler, result


def _run_diff(args: argparse.Namespace) -> int:
    """The ``nmslc diff`` subcommand: relational differential verify."""
    from repro.analysis import (
        Waiver,
        relational_registry,
        relational_report,
        render,
        render_json,
    )
    from repro.consistency.impact import ImpactAnalyzer

    extensions = tuple(
        parse_extension(Path(name).read_text(encoding="utf-8"))
        for name in args.extensions
    )
    extension_files = tuple(args.extensions)
    old = _compile_revision(args.old, extensions, extension_files)
    if old is None:
        return 2
    new = _compile_revision(args.new, extensions, extension_files)
    if new is None:
        return 2
    old_compiler, old_result = old
    _, new_result = new

    tags = tuple(
        tag.strip() for tag in args.output.split(",") if tag.strip()
    )
    analyzer = ImpactAnalyzer(
        old_compiler.tree,
        engine=args.engine,
        jobs=args.jobs,
        tags=tags,
        config_scope="full" if args.full_config_scan else "impacted",
    )
    analyzer.baseline(old_result.specification)
    impact = analyzer.analyze(new_result.specification)

    registry = relational_registry()
    report = relational_report(impact, registry=registry)

    if args.update_waiver:
        if not args.waiver:
            print(
                "nmslc: error: --update-waiver needs --waiver FILE",
                file=sys.stderr,
            )
            return 2
        waiver = Waiver.from_gating(report)
        waiver.save(args.waiver)
        print(
            f"wrote {len(waiver)} waiver(s) to {args.waiver}",
            file=sys.stderr,
        )
        return 0

    if args.waiver and Path(args.waiver).exists():
        report = Waiver.load(args.waiver).apply(report)

    sys.stdout.write(render(report, args.format, registry.passes()))
    if args.format == "text":
        sys.stdout.write("\n")
    stats = impact.stats
    print(
        f"nmslc: diff: {stats.get('diff_entries', 0)} spec delta "
        f"entr{'y' if stats.get('diff_entries', 0) == 1 else 'ies'}, "
        f"{len(impact.impacted_elements)} impacted element(s), "
        f"{len(impact.redrive_elements())} redrive(s), "
        f"{len(report.diagnostics)} finding(s)",
        file=sys.stderr,
    )
    if args.report_file:
        Path(args.report_file).write_text(
            render_json(report), encoding="utf-8"
        )
    return 1 if report.gating() else 0


def _build_rollout_gate(args: argparse.Namespace, runtime):
    """Relational gate for ``rollout --diff-base``; (gate, report)."""
    from repro.analysis import Waiver, relational_report
    from repro.consistency.impact import ImpactAnalyzer
    from repro.rollout import RolloutGate

    base = _compile_revision(args.diff_base, (), ())
    if base is None:
        return None
    base_compiler, base_result = base
    analyzer = ImpactAnalyzer(base_compiler.tree, tags=(args.output,))
    analyzer.baseline(base_result.specification)
    impact = analyzer.analyze(runtime.result.specification)
    report = relational_report(impact)
    if args.waiver and Path(args.waiver).exists():
        report = Waiver.load(args.waiver).apply(report)
    return RolloutGate.from_impact(impact, report), report


def _parse_chaos_targets(entries, default_count):
    targets = {}
    for entry in entries:
        element, _, count = entry.partition(":")
        try:
            targets[element] = int(count) if count else default_count
        except ValueError:
            raise ReproError(
                f"malformed chaos target {entry!r} (want ELEMENT[:N])"
            ) from None
    return targets


def _build_injector(args: argparse.Namespace):
    """Shared chaos-flag handling for ``rollout`` and ``heal``."""
    import dataclasses

    from repro.netsim.faults import FaultInjector, FaultSpec

    loss = getattr(args, "chaos_loss", 0.0)
    stall = getattr(args, "chaos_stall", 0.0)
    corrupt = getattr(args, "chaos_corrupt", 0.0)
    duplicate = getattr(args, "chaos_duplicate", 0.0)
    default_spec = FaultSpec(
        loss_rate=loss,
        stall_rate=stall,
        corrupt_rate=corrupt,
        duplicate_rate=duplicate,
    )
    per_element = {}

    def update(element, **changes):
        spec = per_element.get(element, default_spec)
        per_element[element] = dataclasses.replace(spec, **changes)

    for element, after in _parse_chaos_targets(
        getattr(args, "chaos_crash", []), default_count=3
    ).items():
        update(element, crash_after=after)
    for element, after in _parse_chaos_targets(
        getattr(args, "chaos_wedge", []), default_count=0
    ).items():
        per_element[element] = FaultSpec(stall_after=after)
    for element, after in _parse_chaos_targets(
        getattr(args, "chaos_flap", []), default_count=6
    ).items():
        update(element, flap_after=after, flap_restart_after=1)
    for element, after in _parse_chaos_targets(
        getattr(args, "chaos_corrupt_store", []), default_count=6
    ).items():
        update(element, corrupt_store_after=after)
    if per_element or any((loss, stall, corrupt, duplicate)):
        return FaultInjector(
            seed=args.seed, default=default_spec, per_element=per_element
        )
    return None


def _compile_for_runtime(args: argparse.Namespace):
    """Compile a specification and build its simulated runtime, or None."""
    from repro.netsim.processes import ManagementRuntime

    text = Path(args.specification).read_text(encoding="utf-8")
    compiler = NmslCompiler(CompilerOptions(filename=args.specification))
    result = compiler.compile(text)
    if result.report.errors:
        for error in result.report.errors:
            print(f"nmslc: error: {error}", file=sys.stderr)
        return None
    return ManagementRuntime(compiler, result)


def _run_rollout(args: argparse.Namespace) -> int:
    """The ``nmslc rollout`` subcommand: fault-tolerant delivery."""
    from repro.rollout import RetryPolicy, RolloutJournal

    runtime = _compile_for_runtime(args)
    if runtime is None:
        return 2

    gate = None
    if args.diff_base:
        from repro.analysis import render_text

        gated = _build_rollout_gate(args, runtime)
        if gated is None:
            return 2
        gate, gate_report = gated
        if not gate.permits():
            print(render_text(gate_report))
            print(
                "nmslc: rollout refused: the delta widens access without "
                "a waiver (see nmslc diff --update-waiver)",
                file=sys.stderr,
            )
            return 1
        print(
            f"nmslc: relational gate: staging "
            f"{len(gate.impacted_elements)} impacted element(s)",
            file=sys.stderr,
        )

    if args.baseline_install:
        runtime.install_configuration(tag=args.output)

    injector = _build_injector(args)
    policy = RetryPolicy(
        max_attempts=args.max_attempts, timeout_s=args.timeout
    )
    journal = None
    resume_from = None
    if args.resume:
        if not args.journal:
            raise ReproError("--resume needs --journal FILE")
        resume_from = RolloutJournal.load(args.journal)
        resume_from.fsync = args.fsync
    elif args.journal:
        # A fresh campaign must not append onto a stale journal.
        journal_path = Path(args.journal)
        if journal_path.exists():
            journal_path.unlink()
        journal = RolloutJournal(path=args.journal, fsync=args.fsync)
    try:
        report = runtime.rollout(
            tag=args.output,
            policy=policy,
            jobs=args.jobs,
            seed=args.seed,
            injector=injector,
            chunk_size=args.chunk_size,
            journal=journal,
            crash_coordinator_after=args.chaos_crash_coordinator,
            resume_from=resume_from,
            gate=gate,
        )
    finally:
        if journal is not None:
            journal.close()
        if resume_from is not None:
            resume_from.close()
    if args.report == "json":
        print(report.to_json())
    else:
        print(report.render())
    if args.report_file:
        Path(args.report_file).write_text(
            report.to_json() + "\n", encoding="utf-8"
        )
    return 0 if report.complete else 1


def _run_heal(args: argparse.Namespace) -> int:
    """The ``nmslc heal`` subcommand: the drift-reconciliation loop."""
    from repro.heal import HealthRegistry
    from repro.rollout import RetryPolicy, RolloutJournal

    runtime = _compile_for_runtime(args)
    if runtime is None:
        return 2
    if args.install:
        runtime.install_configuration(tag=args.output)

    injector = _build_injector(args)
    policy = RetryPolicy(
        max_attempts=args.max_attempts, timeout_s=args.timeout
    )
    if args.resume:
        journal = RolloutJournal.load(args.resume)
        try:
            campaign = runtime.rollout(
                tag=args.output,
                policy=policy,
                jobs=args.jobs,
                seed=args.seed,
                injector=injector,
                chunk_size=args.chunk_size,
                resume_from=journal,
            )
        finally:
            journal.close()
        print(
            f"nmslc: resumed campaign from {args.resume}: "
            f"{len(campaign.committed())}/{len(campaign.elements)} committed",
            file=sys.stderr,
        )
    targets = runtime.rollout_targets(args.output)
    registry = HealthRegistry(
        sorted(targets),
        failure_threshold=args.failure_threshold,
        cooldown_s=args.cooldown,
        quarantine_after=args.quarantine_after,
    )
    heal = runtime.heal(
        tag=args.output,
        policy=policy,
        jobs=args.jobs,
        seed=args.seed,
        injector=injector,
        chunk_size=args.chunk_size,
        registry=registry,
        interval_s=args.interval,
        rounds=args.rounds,
    )
    if args.report == "json":
        print(heal.to_json())
    else:
        print(heal.render())
    if args.report_file:
        Path(args.report_file).write_text(
            heal.to_json() + "\n", encoding="utf-8"
        )
    return 0 if heal.converged else 1


def _run_verify_runtime(args: argparse.Namespace) -> int:
    """The ``nmslc verify-runtime`` subcommand: adherence checking."""
    import json

    from repro.netsim.monitor import RuntimeVerifier

    runtime = _compile_for_runtime(args)
    if runtime is None:
        return 2
    runtime.install_configuration()
    misbehaving = {}
    for entry in args.misbehave:
        instance, _, period = entry.partition(":")
        try:
            misbehaving[instance] = float(period) if period else 1.0
        except ValueError:
            raise ReproError(
                f"malformed --misbehave {entry!r} (want INSTANCE[:PERIOD])"
            ) from None
    runtime.start(
        duration_s=args.duration,
        misbehaving=misbehaving or None,
        loss_rate=args.loss,
        seed=args.seed,
    )
    runtime.run(args.duration)
    verifier = RuntimeVerifier(runtime.specification, runtime.facts)
    report = verifier.verify(runtime.log, tolerance=args.tolerance)
    traps = verifier.trap_summary(runtime.traps)
    discrepancies = verifier.cross_check_enforcement(runtime.log, report)
    if args.format == "json":
        payload = {
            "adheres": report.adheres,
            "observed_queries": report.observed_queries,
            "checked_pairs": report.checked_pairs,
            "rate_limited_queries": report.rate_limited_queries,
            "violating_clients": list(report.violating_clients),
            "violations": [
                {
                    "client": violation.client,
                    "server_agent": violation.server_agent,
                    "observed_interval_s": violation.observed_interval_s,
                    "promised_min_period_s": violation.promised_min_period_s,
                    "at_time": violation.at_time,
                }
                for violation in report.violations
            ],
            "traps": {str(key): value for key, value in traps.items()},
            "enforcement_discrepancies": list(discrepancies),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
        for line in discrepancies:
            print(f"enforcement: {line}")
        for agent_id, counts in sorted(traps.items()):
            rendered = ", ".join(
                f"{name}={count}" for name, count in sorted(counts.items())
            )
            print(f"traps[{agent_id}]: {rendered}")
    return 0 if report.adheres else 1


def _run_profile(args: argparse.Namespace, session: obs.Observability) -> int:
    """The ``nmslc profile`` subcommand: where does the time go?

    Runs compile → check (→ generate) under one top-level span and
    prints a per-phase breakdown (from the tracer), a per-rule table
    (datalog engine), and the keyword-dispatch counts (from metrics).
    """
    text = Path(args.specification).read_text(encoding="utf-8")
    extensions = tuple(
        parse_extension(Path(name).read_text(encoding="utf-8"))
        for name in args.extensions
    )
    outcome = None
    with session.span("profile", file=args.specification) as top:
        with session.span("profile.setup"):
            compiler = NmslCompiler(
                CompilerOptions(
                    filename=args.specification,
                    strict=not args.lax,
                    extensions=extensions,
                )
            )
        result = compiler.compile(text)
        if result.report.errors and not args.lax:
            for error in result.report.errors:
                print(f"nmslc: error: {error}", file=sys.stderr)
            return 2
        if args.engine == "clpr":
            outcome = check_with_clpr(result.specification, compiler.tree)
        elif args.engine == "datalog":
            from repro.consistency.datalog_path import check_with_datalog

            outcome = check_with_datalog(result.specification, compiler.tree)
        else:
            checker = ConsistencyChecker(
                result.specification,
                compiler.tree,
                engine="scan" if args.engine == "scan" else "indexed",
            )
            outcome = checker.check(jobs=args.jobs)
        if args.output:
            compiler.generate(args.output, result)

    records = session.tracer.finished()
    total = top.elapsed
    phases: dict = {}
    for record in records:
        if record.depth != 1:
            continue
        seconds, spans = phases.get(record.name, (0.0, 0))
        phases[record.name] = (seconds + record.duration_s, spans + 1)

    print(f"profile: {args.specification} (engine={args.engine})")
    print(f"{'phase':<28} {'seconds':>12} {'share':>7} {'spans':>6}")
    accounted = 0.0
    for name, (seconds, spans) in sorted(
        phases.items(), key=lambda item: -item[1][0]
    ):
        accounted += seconds
        share = 100.0 * seconds / total if total else 0.0
        print(f"  {name:<26} {seconds:>12.6f} {share:>6.1f}% {spans:>6}")
    if total:
        untraced = max(0.0, total - accounted)
        print(
            f"  {'(untraced)':<26} {untraced:>12.6f} "
            f"{100.0 * untraced / total:>6.1f}%"
        )
    print(f"{'total':<28} {total:>12.6f}")

    rule_stats = (outcome.stats or {}).get("rule_stats") if outcome else None
    if rule_stats:
        print()
        print(f"top rules by time ({args.engine}):")
        print(f"  {'rule':<34} {'firings':>8} {'seconds':>12}")
        ranked = sorted(
            rule_stats.items(), key=lambda item: -item[1]["seconds"]
        )
        for rule, stats in ranked[: args.top]:
            print(
                f"  {rule:<34} {int(stats['firings']):>8} "
                f"{stats['seconds']:>12.6f}"
            )

    snapshot = session.metrics.snapshot()
    keywords = snapshot.get("repro_compile_declarations_total", {}).get(
        "samples", {}
    )
    if keywords:
        print()
        print("keyword dispatch (pass 2):")
        ranked = sorted(keywords.items(), key=lambda item: (-item[1], item[0]))
        for label_text, count in ranked[: args.top]:
            keyword = label_text.partition("=")[2] or label_text
            print(f"  {keyword:<26} {int(count):>8}")

    if outcome is not None and not outcome.consistent:
        print()
        print(
            f"note: specification is inconsistent "
            f"({len(outcome.inconsistencies)} problem(s)); timings above "
            "cover the full check"
        )
    return 0


def _diff_against(args, compiler, result) -> int:
    """Diff the compiled spec against an older version and delta-check."""
    from repro.consistency.evolution import DeltaChecker, diff_specifications

    old_text = Path(args.diff_against).read_text(encoding="utf-8")
    old_result = compiler.compile(old_text, strict=False)
    diff = diff_specifications(old_result.specification, result.specification)
    print(f"--- changes vs {args.diff_against} ---")
    print(diff.render())
    checker = DeltaChecker(compiler.tree)
    old_outcome = checker.check(old_result.specification)
    new_outcome = checker.check(result.specification)
    # Count problems by (kind, message, causes) — headline messages
    # alone collide (every uncoverable reference says "no instantiated
    # server ..."), which would let a breaking change slip through as
    # "0 introduced" whenever an identical-looking problem already
    # existed elsewhere.
    def problem_counts(outcome):
        return Counter(
            (p.kind.value, p.message, p.causes)
            for p in outcome.inconsistencies
        )

    old_problems = problem_counts(old_outcome)
    new_problems = problem_counts(new_outcome)
    introduced = new_problems - old_problems
    fixed = old_problems - new_problems
    print(
        f"--- verdict: {sum(introduced.values())} problem(s) introduced, "
        f"{sum(fixed.values())} fixed "
        f"(re-checked {new_outcome.stats.get('rechecked', '?')} of "
        f"{new_outcome.stats.get('references', '?')} references) ---"
    )
    for (kind, message, _causes), count in sorted(introduced.items()):
        suffix = f" (x{count})" if count > 1 else ""
        print(f"introduced: [{kind}] {message}{suffix}")
    for (kind, message, _causes), count in sorted(fixed.items()):
        suffix = f" (x{count})" if count > 1 else ""
        print(f"fixed:      [{kind}] {message}{suffix}")
    return 1 if introduced else 0


if __name__ == "__main__":
    sys.exit(main())
