"""Synthetic internet generator for the Section 3.1 scale evaluation.

The paper's stated target: "very large networks, on the order of 100,000
networks (and gateways), 100,000 to a million hosts, and 10,000
administrative domains."  :class:`SyntheticInternet` builds parameterised
internets two ways:

* :meth:`text` — NMSL source text, exercising the full compiler path;
* :meth:`specification` — the typed model built directly, for measuring
  the consistency checker alone.

Both produce the same structure: ``n_domains`` administrative domains,
each containing ``systems_per_domain`` network elements running a shared
read-only agent and exporting the MIB to the public domain, plus
``applications_per_domain`` poller applications querying elements of the
*next* domain (so every check crosses an administrative boundary).

Deliberate inconsistencies can be injected by kind to verify detection at
scale: ``missing_permission`` (a domain that exports nothing),
``frequency_conflict`` (a poller allowed to query every 30 seconds against
a 5-minute export), and ``unsupported_data`` (a poller requesting EGP
variables that no element supports).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.nmsl.frequency import FrequencySpec
from repro.nmsl.specs import (
    DomainSpec,
    ExportSpec,
    InterfaceSpec,
    ProcessInvocation,
    ProcessSpec,
    QuerySpec,
    Specification,
    SystemSpec,
)
from repro.mib.tree import Access

#: The MIB groups every synthetic element supports (EGP excluded, as on
#: the paper's romano.cs.wisc.edu).
SUPPORTED_GROUPS = (
    "mgmt.mib.system",
    "mgmt.mib.interfaces",
    "mgmt.mib.ip",
    "mgmt.mib.icmp",
    "mgmt.mib.tcp",
    "mgmt.mib.udp",
)

REQUESTED_PATH = "mgmt.mib.ip.ipAddrTable.IpAddrEntry"
UNSUPPORTED_PATH = "mgmt.mib.egp"


@dataclass(frozen=True)
class InternetParameters:
    """Size and fault-injection knobs for a synthetic internet."""

    n_domains: int = 10
    systems_per_domain: int = 10
    applications_per_domain: int = 2
    export_period_s: float = 300.0
    query_period_s: float = 900.0
    #: Domains (by index) that export nothing -> missing permissions.
    silent_domains: Tuple[int, ...] = ()
    #: Applications (by global index) that query too fast.
    fast_pollers: Tuple[int, ...] = ()
    #: Applications (by global index) that request unsupported EGP data.
    egp_pollers: Tuple[int, ...] = ()
    #: When > 0, group base domains under umbrella domains of this fanout
    #: (one per group, plus one root over the umbrellas) — deeper
    #: containment chains exercising the transitive rules.  Umbrellas
    #: grant nothing, so verdicts are unchanged.
    umbrella_fanout: int = 0
    seed: int = 1989

    @property
    def n_systems(self) -> int:
        return self.n_domains * self.systems_per_domain

    @property
    def n_applications(self) -> int:
        return self.n_domains * self.applications_per_domain


class SyntheticInternet:
    """Deterministic synthetic internet builder."""

    def __init__(self, parameters: InternetParameters):
        self.parameters = parameters
        self._random = random.Random(parameters.seed)

    # ------------------------------------------------------------------
    # Naming scheme.
    # ------------------------------------------------------------------
    @staticmethod
    def domain_name(index: int) -> str:
        return f"dom{index:05d}"

    @staticmethod
    def system_name(domain_index: int, system_index: int) -> str:
        return f"host{system_index:05d}.dom{domain_index:05d}.net"

    # ------------------------------------------------------------------
    # NMSL text.
    # ------------------------------------------------------------------
    def text(self) -> str:
        p = self.parameters
        parts: List[str] = [self._process_texts()]
        for domain_index in range(p.n_domains):
            for system_index in range(p.systems_per_domain):
                parts.append(self._system_text(domain_index, system_index))
        for domain_index in range(p.n_domains):
            parts.append(self._domain_text(domain_index))
        parts.extend(self._umbrella_texts())
        return "\n".join(parts)

    def _umbrella_groups(self) -> List[List[str]]:
        p = self.parameters
        if p.umbrella_fanout <= 0:
            return []
        names = [self.domain_name(index) for index in range(p.n_domains)]
        return [
            names[start : start + p.umbrella_fanout]
            for start in range(0, len(names), p.umbrella_fanout)
        ]

    def _umbrella_texts(self) -> List[str]:
        groups = self._umbrella_groups()
        parts = []
        umbrella_names = []
        for index, members in enumerate(groups):
            name = f"region{index:04d}"
            umbrella_names.append(name)
            lines = [f"domain {name} ::="]
            lines.extend(f"    domain {member};" for member in members)
            lines.append(f"end domain {name}.")
            parts.append("\n".join(lines))
        if umbrella_names:
            lines = ["domain root ::="]
            lines.extend(f"    domain {name};" for name in umbrella_names)
            lines.append("end domain root.")
            parts.append("\n".join(lines))
        return parts

    def _process_texts(self) -> str:
        p = self.parameters
        query_minutes = p.query_period_s / 60.0
        # The agent exports nothing itself: permissions come from the
        # domain exports, so a "silent" domain really grants nothing.
        return f"""
process stdAgent ::=
    supports mgmt.mib;
end process stdAgent.

process poller(Target: Process) ::=
    queries Target
        requests {REQUESTED_PATH}
        frequency >= {query_minutes:g} minutes;
end process poller.

process fastPoller(Target: Process) ::=
    queries Target
        requests {REQUESTED_PATH}
        frequency = 30 seconds;
end process fastPoller.

process egpPoller(Target: Process) ::=
    queries Target
        requests {UNSUPPORTED_PATH}
        frequency >= {query_minutes:g} minutes;
end process egpPoller.
"""

    def _system_text(self, domain_index: int, system_index: int) -> str:
        name = self.system_name(domain_index, system_index)
        supports = ",\n        ".join(SUPPORTED_GROUPS)
        return f"""
system "{name}" ::=
    cpu sparc;
    interface ie0 net net{domain_index:05d}
        type ethernet-csmacd
        speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports
        {supports};
    process stdAgent;
end system "{name}".
"""

    def _domain_text(self, domain_index: int) -> str:
        p = self.parameters
        name = self.domain_name(domain_index)
        lines = [f"domain {name} ::="]
        for system_index in range(p.systems_per_domain):
            lines.append(
                f"    system {self.system_name(domain_index, system_index)};"
            )
        for app_index in range(p.applications_per_domain):
            global_index = domain_index * p.applications_per_domain + app_index
            process = "poller"
            if global_index in p.fast_pollers:
                process = "fastPoller"
            elif global_index in p.egp_pollers:
                process = "egpPoller"
            target = self._target_for(domain_index, app_index)
            lines.append(f"    process {process}({target});")
        if domain_index not in p.silent_domains:
            minutes = p.export_period_s / 60.0
            lines.append(
                f'    exports mgmt.mib to "public"\n'
                f"        access ReadOnly\n"
                f"        frequency >= {minutes:g} minutes;"
            )
        lines.append(f"end domain {name}.")
        return "\n".join(lines)

    def _target_for(self, domain_index: int, app_index: int) -> str:
        p = self.parameters
        target_domain = (domain_index + 1) % p.n_domains
        target_system = app_index % p.systems_per_domain
        return self.system_name(target_domain, target_system)

    # ------------------------------------------------------------------
    # Direct typed-model construction (bypasses the parser).
    # ------------------------------------------------------------------
    def specification(self) -> Specification:
        p = self.parameters
        spec = Specification()
        export = ExportSpec(
            variables=("mgmt.mib",),
            to_domain="public",
            access=Access.READ_ONLY,
            frequency=FrequencySpec.at_most_every(p.export_period_s),
        )
        spec.add_process(ProcessSpec(name="stdAgent", supports=("mgmt.mib",)))
        spec.add_process(self._poller("poller", REQUESTED_PATH,
                                      FrequencySpec.at_most_every(p.query_period_s)))
        spec.add_process(self._poller("fastPoller", REQUESTED_PATH,
                                      FrequencySpec.exactly_every(30)))
        spec.add_process(self._poller("egpPoller", UNSUPPORTED_PATH,
                                      FrequencySpec.at_most_every(p.query_period_s)))
        for domain_index in range(p.n_domains):
            for system_index in range(p.systems_per_domain):
                name = self.system_name(domain_index, system_index)
                spec.add_system(
                    SystemSpec(
                        name=name,
                        cpu="sparc",
                        interfaces=(
                            InterfaceSpec(
                                name="ie0",
                                network=f"net{domain_index:05d}",
                                if_type="ethernet-csmacd",
                                speed_bps=10_000_000,
                            ),
                        ),
                        opsys="SunOS",
                        opsys_version="4.0.1",
                        supports=SUPPORTED_GROUPS,
                        processes=(ProcessInvocation("stdAgent"),),
                    )
                )
        for domain_index in range(p.n_domains):
            invocations = []
            for app_index in range(p.applications_per_domain):
                global_index = domain_index * p.applications_per_domain + app_index
                process = "poller"
                if global_index in p.fast_pollers:
                    process = "fastPoller"
                elif global_index in p.egp_pollers:
                    process = "egpPoller"
                invocations.append(
                    ProcessInvocation(
                        process, (self._target_for(domain_index, app_index),)
                    )
                )
            exports = ()
            if domain_index not in p.silent_domains:
                exports = (export,)
            spec.add_domain(
                DomainSpec(
                    name=self.domain_name(domain_index),
                    systems=tuple(
                        self.system_name(domain_index, system_index)
                        for system_index in range(p.systems_per_domain)
                    ),
                    processes=tuple(invocations),
                    exports=exports,
                )
            )
        umbrella_names = []
        for index, members in enumerate(self._umbrella_groups()):
            name = f"region{index:04d}"
            umbrella_names.append(name)
            spec.add_domain(DomainSpec(name=name, subdomains=tuple(members)))
        if umbrella_names:
            spec.add_domain(
                DomainSpec(name="root", subdomains=tuple(umbrella_names))
            )
        return spec

    @staticmethod
    def _poller(name: str, path: str, frequency: FrequencySpec) -> ProcessSpec:
        return ProcessSpec(
            name=name,
            params=(("Target", "Process"),),
            queries=(
                QuerySpec(target="Target", requests=(path,), frequency=frequency),
            ),
        )

    def expected_inconsistent_references(self) -> int:
        """How many references the checker should flag, by construction.

        A poller in domain *d* targets domain *d+1*: its reference fails
        when it is a fast/EGP poller, or when the target domain is silent
        (exports nothing — element agents also export nothing here, so the
        permission must come from the domain).
        """
        p = self.parameters
        count = 0
        for domain_index in range(p.n_domains):
            target_domain = (domain_index + 1) % p.n_domains
            for app_index in range(p.applications_per_domain):
                global_index = domain_index * p.applications_per_domain + app_index
                if global_index in p.fast_pollers or global_index in p.egp_pollers:
                    count += 1
                elif target_domain in p.silent_domains:
                    count += 1
        return count
