"""Workloads: the paper's verbatim examples and synthetic internets.

* :mod:`repro.workloads.paper` — the exact specification texts of paper
  Figures 4.2, 4.4, 4.6 and 4.8 (plus the small completions needed to make
  the four figures one closed internet);
* :mod:`repro.workloads.generator` — synthetic internet generator for the
  Section 3.1 scale evaluation (parameterised #domains, #systems/domain,
  #applications, inconsistency injection);
* :mod:`repro.workloads.scenarios` — richer canned scenarios used by the
  examples and benchmarks (campus internet, new-organisation join).
"""

from repro.workloads.paper import (
    FIG_42_TYPE_SPECS,
    FIG_44_PROCESS_SPECS,
    FIG_46_SYSTEM_SPEC,
    FIG_48_DOMAIN_SPEC,
    PAPER_SPEC_TEXT,
    PaperScaleInternet,
    PaperScaleParameters,
)
from repro.workloads.generator import InternetParameters, SyntheticInternet
from repro.workloads.scenarios import campus_internet, new_organization

__all__ = [
    "FIG_42_TYPE_SPECS",
    "FIG_44_PROCESS_SPECS",
    "FIG_46_SYSTEM_SPEC",
    "FIG_48_DOMAIN_SPEC",
    "InternetParameters",
    "PAPER_SPEC_TEXT",
    "PaperScaleInternet",
    "PaperScaleParameters",
    "SyntheticInternet",
    "campus_internet",
    "new_organization",
]
