"""The paper's example specifications, verbatim — and at paper scale.

Figures 4.2 (type specifications), 4.4 (process specifications), 4.6
(network element specification) and 4.8 (domain specification), with the
paper's own spelling — ``SEQUENCE of``, parenthesised field lists, quoted
system names, ``*`` invocation arguments and line-wrapped MIB paths.

``PAPER_SPEC_TEXT`` concatenates all four; together they form a closed
internet: the ``wisc-cs`` domain containing ``romano.cs.wisc.edu`` (which
runs the read-only SNMP agent) and an ``snmpaddr`` application instance.
``cs.wisc.edu``, named as a second system in Figure 4.8 but never given
its own figure, is completed minimally here.

:class:`PaperScaleInternet` scales the same structure up to the target
the paper states for itself — "on the order of 100,000 networks (and
gateways), 100,000 to a million hosts, and 10,000 administrative
domains" — with two properties the smaller
:class:`~repro.workloads.generator.SyntheticInternet` does not have:

* **streaming emission**: :meth:`PaperScaleInternet.iter_text` yields
  the NMSL source one declaration at a time, so a 10,000-domain
  internet can be written to disk or piped to the compiler without the
  tens of megabytes of source ever being resident at once;
* **reference locality**: instead of every poller targeting the next
  domain, targets follow the distribution real internets show — most
  references stay within a nearby administrative neighbourhood
  (geometric fall-off), and the rest go to a small set of popular hub
  domains (Zipf over the low indices, the "backbone" of the synthetic
  internet).  Both draws are deterministic in the seed.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.mib.tree import Access
from repro.nmsl.frequency import FrequencySpec
from repro.nmsl.specs import (
    DomainSpec,
    ExportSpec,
    InterfaceSpec,
    ProcessInvocation,
    ProcessSpec,
    Specification,
    SystemSpec,
)
from repro.workloads.generator import (
    REQUESTED_PATH,
    SUPPORTED_GROUPS,
    UNSUPPORTED_PATH,
    SyntheticInternet,
    InternetParameters,
)

FIG_42_TYPE_SPECS = """
type ipAddrTable ::=
    SEQUENCE of IpAddrEntry;
    access ReadOnly;
end type ipAddrTable.

type IpAddrEntry ::=
    SEQUENCE (
        ipAdEntAddr IpAddress,
        ipAdEntIfIndex INTEGER,
        ipAdEntNetMask IpAddress,
        ipAdEntBcastAddr INTEGER
    );
end type IpAddrEntry.
"""

FIG_44_PROCESS_SPECS = """
process snmpdReadOnly ::=
    supports mgmt.mib; -- entire MIB subtree

    exports mgmt.mib to "public"
        access ReadOnly
        frequency >= 5 minutes;
end process snmpdReadOnly.

process snmpaddr(
        SysAddr: Process; Dest: IpAddress) ::=
    queries SysAddr
        requests
            mgmt.mib.ip.ipAddrTable.IpAddrEntry
        using
            mgmt.mib.ip.ipAddrTable.
                IpAddrEntry.ipAdEntAddr := Dest
        frequency infrequent;
end process snmpaddr.
"""

FIG_46_SYSTEM_SPEC = """
system "romano.cs.wisc.edu" ::=
    cpu sparc;
    interface ie0 net wisc-research
        type ethernet-csmacd
        speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports
        mgmt.mib.system, mgmt.mib.at,
        mgmt.mib.interfaces,
        mgmt.mib.ip, mgmt.mib.icmp,
        mgmt.mib.tcp, mgmt.mib.udp;
    process snmpdReadOnly;
end system "romano.cs.wisc.edu".
"""

#: Figure 4.8 also names a second system; the paper never shows its
#: specification, so a minimal one is provided.
CS_WISC_EDU_SYSTEM_SPEC = """
system "cs.wisc.edu" ::=
    cpu sparc;
    interface le0 net wisc-research
        type ethernet-csmacd
        speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports
        mgmt.mib.system, mgmt.mib.at,
        mgmt.mib.interfaces,
        mgmt.mib.ip, mgmt.mib.icmp,
        mgmt.mib.tcp, mgmt.mib.udp;
    process snmpdReadOnly;
end system "cs.wisc.edu".
"""

FIG_48_DOMAIN_SPEC = """
domain wisc-cs ::=
    system romano.cs.wisc.edu;
    system cs.wisc.edu;
    process snmpaddr(*, *);
    exports mgmt.mib to "public"
        access ReadOnly
        frequency >= 5 minutes;
end domain wisc-cs.
"""

#: The paper's figures in one compilable text.
PAPER_SPEC_TEXT = (
    FIG_42_TYPE_SPECS
    + FIG_44_PROCESS_SPECS
    + FIG_46_SYSTEM_SPEC
    + CS_WISC_EDU_SYSTEM_SPEC
    + FIG_48_DOMAIN_SPEC
)


# ----------------------------------------------------------------------
# Paper scale: the Section 3.1 numbers.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PaperScaleParameters:
    """Size, locality and fault-injection knobs for a paper-scale internet.

    The defaults reproduce the paper's own target: 10,000 administrative
    domains of 10 network elements each (100,000 systems).
    """

    n_domains: int = 10_000
    systems_per_domain: int = 10
    applications_per_domain: int = 2
    export_period_s: float = 300.0
    query_period_s: float = 900.0
    #: Fraction of references that stay in the local neighbourhood.
    locality: float = 0.7
    #: Width of the neighbourhood (domain-index distance); within it,
    #: distances fall off geometrically (halving per step).
    locality_span: int = 8
    #: Skew of hub popularity for the non-local references; weight of
    #: hub *k* is ``1 / (k + 1) ** zipf_s``.
    zipf_s: float = 1.1
    #: How many low-index domains act as hubs.
    hub_count: int = 256
    #: Domains (by index) that export nothing -> missing permissions.
    silent_domains: Tuple[int, ...] = ()
    #: Applications (by global index) that query too fast.
    fast_pollers: Tuple[int, ...] = ()
    #: Applications (by global index) that request unsupported EGP data.
    egp_pollers: Tuple[int, ...] = ()
    #: Umbrella-domain fanout (0 = flat), as in the synthetic generator.
    umbrella_fanout: int = 100
    seed: int = 1989

    @property
    def n_systems(self) -> int:
        return self.n_domains * self.systems_per_domain

    @property
    def n_applications(self) -> int:
        return self.n_domains * self.applications_per_domain

    def as_internet_parameters(self) -> InternetParameters:
        """The equivalent knobs of the small synthetic generator."""
        return InternetParameters(
            n_domains=self.n_domains,
            systems_per_domain=self.systems_per_domain,
            applications_per_domain=self.applications_per_domain,
            export_period_s=self.export_period_s,
            query_period_s=self.query_period_s,
            silent_domains=self.silent_domains,
            fast_pollers=self.fast_pollers,
            egp_pollers=self.egp_pollers,
            umbrella_fanout=self.umbrella_fanout,
            seed=self.seed,
        )


class PaperScaleInternet:
    """A 10,000-domain / 100,000-system internet, streamed and shared.

    Reuses :class:`SyntheticInternet`'s naming scheme and declaration
    texts so small and large workloads are structurally comparable, but
    draws poller targets from the locality distribution and builds the
    typed model with aggressive structure sharing (one interface object
    per domain, one shared process-invocation tuple for all elements) so
    100,000 :class:`SystemSpec` objects stay cheap.
    """

    def __init__(self, parameters: Optional[PaperScaleParameters] = None):
        self.parameters = parameters or PaperScaleParameters()
        self._base = SyntheticInternet(self.parameters.as_internet_parameters())
        self._target_rows: Optional[List[Tuple[int, ...]]] = None

    # ------------------------------------------------------------------
    # Locality: who references whom.
    # ------------------------------------------------------------------
    def target_domain(self, domain_index: int, app_index: int) -> int:
        """The (deterministic) target domain of one poller."""
        return self._targets()[domain_index][app_index]

    def _targets(self) -> List[Tuple[int, ...]]:
        if self._target_rows is not None:
            return self._target_rows
        p = self.parameters
        rng = random.Random(p.seed)
        hubs = max(1, min(p.hub_count, p.n_domains))
        cumulative: List[float] = []
        total = 0.0
        for rank in range(hubs):
            total += 1.0 / (rank + 1) ** p.zipf_s
            cumulative.append(total)
        rows: List[Tuple[int, ...]] = []
        for domain_index in range(p.n_domains):
            row = []
            for _app in range(p.applications_per_domain):
                if rng.random() < p.locality:
                    # Geometric fall-off inside the neighbourhood:
                    # distance d+1 is half as likely as distance d.
                    draw = max(rng.random(), 1e-12)
                    distance = 1 + min(
                        int(-math.log2(draw)), max(p.locality_span - 1, 0)
                    )
                    target = (domain_index + distance) % p.n_domains
                else:
                    draw = rng.random() * cumulative[-1]
                    target = bisect.bisect_left(cumulative, draw)
                if target == domain_index:
                    target = (domain_index + 1) % p.n_domains
                row.append(target)
            rows.append(tuple(row))
        self._target_rows = rows
        return rows

    def _target_for(self, domain_index: int, app_index: int) -> str:
        target = self.target_domain(domain_index, app_index)
        system_index = app_index % self.parameters.systems_per_domain
        return SyntheticInternet.system_name(target, system_index)

    def _process_name_for(self, domain_index: int, app_index: int) -> str:
        p = self.parameters
        global_index = domain_index * p.applications_per_domain + app_index
        if global_index in p.fast_pollers:
            return "fastPoller"
        if global_index in p.egp_pollers:
            return "egpPoller"
        return "poller"

    # ------------------------------------------------------------------
    # Streaming NMSL emission.
    # ------------------------------------------------------------------
    def iter_text(self) -> Iterator[str]:
        """Yield the NMSL source one declaration at a time.

        ``"".join(net.iter_text())`` equals :meth:`text`, but a consumer
        that writes chunks as they arrive (a file, a pipe into the
        compiler) never holds more than one declaration in memory.
        """
        p = self.parameters
        yield self._base._process_texts()
        for domain_index in range(p.n_domains):
            for system_index in range(p.systems_per_domain):
                yield self._base._system_text(domain_index, system_index)
        for domain_index in range(p.n_domains):
            yield self._domain_text(domain_index)
        for part in self._base._umbrella_texts():
            yield part + "\n"

    def text(self) -> str:
        return "\n".join(self.iter_text())

    def write_text(self, path) -> int:
        """Stream the source to *path*; returns bytes written."""
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for chunk in self.iter_text():
                written += handle.write(chunk)
                written += handle.write("\n")
        return written

    def _domain_text(self, domain_index: int) -> str:
        p = self.parameters
        name = SyntheticInternet.domain_name(domain_index)
        lines = [f"domain {name} ::="]
        for system_index in range(p.systems_per_domain):
            lines.append(
                f"    system {SyntheticInternet.system_name(domain_index, system_index)};"
            )
        for app_index in range(p.applications_per_domain):
            process = self._process_name_for(domain_index, app_index)
            target = self._target_for(domain_index, app_index)
            lines.append(f"    process {process}({target});")
        if domain_index not in p.silent_domains:
            minutes = p.export_period_s / 60.0
            lines.append(
                f'    exports mgmt.mib to "public"\n'
                f"        access ReadOnly\n"
                f"        frequency >= {minutes:g} minutes;"
            )
        lines.append(f"end domain {name}.")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Direct typed-model construction, structure-shared.
    # ------------------------------------------------------------------
    def specification(self) -> Specification:
        p = self.parameters
        spec = Specification()
        export = ExportSpec(
            variables=("mgmt.mib",),
            to_domain="public",
            access=Access.READ_ONLY,
            frequency=FrequencySpec.at_most_every(p.export_period_s),
        )
        spec.add_process(ProcessSpec(name="stdAgent", supports=("mgmt.mib",)))
        spec.add_process(self._base._poller(
            "poller", REQUESTED_PATH,
            FrequencySpec.at_most_every(p.query_period_s)))
        spec.add_process(self._base._poller(
            "fastPoller", REQUESTED_PATH, FrequencySpec.exactly_every(30)))
        spec.add_process(self._base._poller(
            "egpPoller", UNSUPPORTED_PATH,
            FrequencySpec.at_most_every(p.query_period_s)))
        agent_invocations = (ProcessInvocation("stdAgent"),)
        exports_tuple = (export,)
        for domain_index in range(p.n_domains):
            # One interface object per domain, shared by its elements.
            interface = InterfaceSpec(
                name="ie0",
                network=f"net{domain_index:05d}",
                if_type="ethernet-csmacd",
                speed_bps=10_000_000,
            )
            interfaces = (interface,)
            for system_index in range(p.systems_per_domain):
                spec.add_system(
                    SystemSpec(
                        name=SyntheticInternet.system_name(
                            domain_index, system_index
                        ),
                        cpu="sparc",
                        interfaces=interfaces,
                        opsys="SunOS",
                        opsys_version="4.0.1",
                        supports=SUPPORTED_GROUPS,
                        processes=agent_invocations,
                    )
                )
        for domain_index in range(p.n_domains):
            invocations = tuple(
                ProcessInvocation(
                    self._process_name_for(domain_index, app_index),
                    (self._target_for(domain_index, app_index),),
                )
                for app_index in range(p.applications_per_domain)
            )
            spec.add_domain(
                DomainSpec(
                    name=SyntheticInternet.domain_name(domain_index),
                    systems=tuple(
                        SyntheticInternet.system_name(domain_index, system_index)
                        for system_index in range(p.systems_per_domain)
                    ),
                    processes=invocations,
                    exports=(
                        () if domain_index in p.silent_domains
                        else exports_tuple
                    ),
                )
            )
        umbrella_names = []
        for index, members in enumerate(self._base._umbrella_groups()):
            name = f"region{index:04d}"
            umbrella_names.append(name)
            spec.add_domain(DomainSpec(name=name, subdomains=tuple(members)))
        if umbrella_names:
            spec.add_domain(
                DomainSpec(name="root", subdomains=tuple(umbrella_names))
            )
        return spec

    def expected_inconsistent_references(self) -> int:
        """How many references the checker should flag, by construction."""
        p = self.parameters
        silent = set(p.silent_domains)
        bad = set(p.fast_pollers) | set(p.egp_pollers)
        count = 0
        for domain_index in range(p.n_domains):
            for app_index in range(p.applications_per_domain):
                global_index = (
                    domain_index * p.applications_per_domain + app_index
                )
                if global_index in bad:
                    count += 1
                elif self.target_domain(domain_index, app_index) in silent:
                    count += 1
        return count
