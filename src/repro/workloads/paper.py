"""The paper's example specifications, verbatim.

Figures 4.2 (type specifications), 4.4 (process specifications), 4.6
(network element specification) and 4.8 (domain specification), with the
paper's own spelling — ``SEQUENCE of``, parenthesised field lists, quoted
system names, ``*`` invocation arguments and line-wrapped MIB paths.

``PAPER_SPEC_TEXT`` concatenates all four; together they form a closed
internet: the ``wisc-cs`` domain containing ``romano.cs.wisc.edu`` (which
runs the read-only SNMP agent) and an ``snmpaddr`` application instance.
``cs.wisc.edu``, named as a second system in Figure 4.8 but never given
its own figure, is completed minimally here.
"""

FIG_42_TYPE_SPECS = """
type ipAddrTable ::=
    SEQUENCE of IpAddrEntry;
    access ReadOnly;
end type ipAddrTable.

type IpAddrEntry ::=
    SEQUENCE (
        ipAdEntAddr IpAddress,
        ipAdEntIfIndex INTEGER,
        ipAdEntNetMask IpAddress,
        ipAdEntBcastAddr INTEGER
    );
end type IpAddrEntry.
"""

FIG_44_PROCESS_SPECS = """
process snmpdReadOnly ::=
    supports mgmt.mib; -- entire MIB subtree

    exports mgmt.mib to "public"
        access ReadOnly
        frequency >= 5 minutes;
end process snmpdReadOnly.

process snmpaddr(
        SysAddr: Process; Dest: IpAddress) ::=
    queries SysAddr
        requests
            mgmt.mib.ip.ipAddrTable.IpAddrEntry
        using
            mgmt.mib.ip.ipAddrTable.
                IpAddrEntry.ipAdEntAddr := Dest
        frequency infrequent;
end process snmpaddr.
"""

FIG_46_SYSTEM_SPEC = """
system "romano.cs.wisc.edu" ::=
    cpu sparc;
    interface ie0 net wisc-research
        type ethernet-csmacd
        speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports
        mgmt.mib.system, mgmt.mib.at,
        mgmt.mib.interfaces,
        mgmt.mib.ip, mgmt.mib.icmp,
        mgmt.mib.tcp, mgmt.mib.udp;
    process snmpdReadOnly;
end system "romano.cs.wisc.edu".
"""

#: Figure 4.8 also names a second system; the paper never shows its
#: specification, so a minimal one is provided.
CS_WISC_EDU_SYSTEM_SPEC = """
system "cs.wisc.edu" ::=
    cpu sparc;
    interface le0 net wisc-research
        type ethernet-csmacd
        speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports
        mgmt.mib.system, mgmt.mib.at,
        mgmt.mib.interfaces,
        mgmt.mib.ip, mgmt.mib.icmp,
        mgmt.mib.tcp, mgmt.mib.udp;
    process snmpdReadOnly;
end system "cs.wisc.edu".
"""

FIG_48_DOMAIN_SPEC = """
domain wisc-cs ::=
    system romano.cs.wisc.edu;
    system cs.wisc.edu;
    process snmpaddr(*, *);
    exports mgmt.mib to "public"
        access ReadOnly
        frequency >= 5 minutes;
end domain wisc-cs.
"""

#: The paper's figures in one compilable text.
PAPER_SPEC_TEXT = (
    FIG_42_TYPE_SPECS
    + FIG_44_PROCESS_SPECS
    + FIG_46_SYSTEM_SPEC
    + CS_WISC_EDU_SYSTEM_SPEC
    + FIG_48_DOMAIN_SPEC
)
