"""Canned scenarios for examples, tests and benchmarks.

* :func:`campus_internet` — a three-domain campus (computer science,
  engineering, and a campus NOC) with nested domains, cross-domain
  monitoring, and optional deliberate inconsistencies;
* :func:`new_organization` — a new department about to join the campus,
  used by the Section 4.2 speculative scenario.
"""

from __future__ import annotations

CAMPUS_PROCESSES = """
process snmpAgent ::=
    supports mgmt.mib;
    exports mgmt.mib.system to "public"
        access ReadOnly
        frequency >= 10 minutes;
end process snmpAgent.

process nocMonitor(Target: Process) ::=
    queries Target
        requests mgmt.mib.interfaces, mgmt.mib.ip
        frequency >= 5 minutes;
end process nocMonitor.

process linkWatcher(Target: Process) ::=
    queries Target
        requests mgmt.mib.interfaces.ifTable.IfEntry.ifOperStatus
        frequency >= 1 minutes;
end process linkWatcher.

"""


def _system(name: str, network: str, uplink: str = "", groups: str = "") -> str:
    supports = groups or (
        "mgmt.mib.system, mgmt.mib.interfaces,\n"
        "        mgmt.mib.ip, mgmt.mib.icmp, mgmt.mib.tcp, mgmt.mib.udp"
    )
    uplink_clause = ""
    if uplink:
        uplink_clause = f"""    interface ie1 net {uplink}
        type ethernet-csmacd
        speed 10000000 bps;
"""
    return f"""
system "{name}" ::=
    cpu sparc;
    interface ie0 net {network}
        type ethernet-csmacd
        speed 10000000 bps;
{uplink_clause}    opsys SunOS version 4.0.1;
    supports
        {supports};
    process snmpAgent;
end system "{name}".
"""


def campus_internet(
    include_noc_permission: bool = True,
    noc_frequency_minutes: float = 5.0,
) -> str:
    """The campus scenario.

    With defaults the specification is consistent.  Two knobs create the
    inconsistencies the campus example demonstrates:

    * ``include_noc_permission=False`` — the engineering domain forgets to
      export to the NOC: the NOC monitor's references lose their
      permissions (missing-permission);
    * ``noc_frequency_minutes < 5`` — the NOC wants to poll faster than
      the departments allow (frequency-conflict) ... set e.g. 1.0 together
      with departments exporting ``>= 5 minutes``.
    """
    # The gateways are multi-homed onto the campus backbone, so the NOC
    # can reach every department element through them.
    systems = (
        _system("gw.cs.campus.edu", "cs-backbone", uplink="campus-backbone")
        + _system("db.cs.campus.edu", "cs-backbone")
        + _system("gw.engr.campus.edu", "engr-backbone", uplink="campus-backbone")
        + _system("sim.engr.campus.edu", "engr-backbone")
        + _system("noc.campus.edu", "campus-backbone")
    )
    cs_exports = """
    exports mgmt.mib to noc-domain
        access ReadOnly
        frequency >= 5 minutes;
"""
    engr_exports = (
        """
    exports mgmt.mib to noc-domain
        access ReadOnly
        frequency >= 5 minutes;
"""
        if include_noc_permission
        else ""
    )
    monitors = "\n".join(
        f"    process nocMonitor({target});"
        for target in (
            "gw.cs.campus.edu",
            "db.cs.campus.edu",
            "gw.engr.campus.edu",
            "sim.engr.campus.edu",
        )
    )
    noc_monitor_process = f"""
process nocMonitor(Target: Process) ::=
    queries Target
        requests mgmt.mib.interfaces, mgmt.mib.ip
        frequency >= {noc_frequency_minutes:g} minutes;
end process nocMonitor.
"""
    processes = CAMPUS_PROCESSES.replace(
        """
process nocMonitor(Target: Process) ::=
    queries Target
        requests mgmt.mib.interfaces, mgmt.mib.ip
        frequency >= 5 minutes;
end process nocMonitor.
""",
        noc_monitor_process,
    )
    return (
        processes
        + systems
        + f"""
domain cs-domain ::=
    system gw.cs.campus.edu;
    system db.cs.campus.edu;
    process linkWatcher(gw.cs.campus.edu);
{cs_exports}end domain cs-domain.

domain engr-domain ::=
    system gw.engr.campus.edu;
    system sim.engr.campus.edu;
{engr_exports}end domain engr-domain.

domain noc-domain ::=
    system noc.campus.edu;
{monitors}
    exports mgmt.mib.system to "public"
        access ReadOnly
        frequency >= 10 minutes;
end domain noc-domain.

domain campus ::=
    domain cs-domain;
    domain engr-domain;
    domain noc-domain;
end domain campus.
"""
    )


def new_organization(query_minutes: float = 15.0) -> str:
    """A new department joining the campus (speculative what-if input).

    The new domain brings one element with an agent and a poller that
    monitors the campus NOC element's system group — which the NOC domain
    exports to the public at a 10-minute floor.  With
    ``query_minutes >= 10`` the combined specification stays consistent
    against :func:`campus_internet`; below the floor it introduces a
    frequency conflict.
    """
    return (
        _system("gw.newdept.campus.edu", "newdept-backbone", uplink="campus-backbone")
        + f"""
process deptPoller(Target: Process) ::=
    queries Target
        requests mgmt.mib.system
        frequency >= {query_minutes:g} minutes;
end process deptPoller.

domain newdept-domain ::=
    system gw.newdept.campus.edu;
    process deptPoller(noc.campus.edu);
    exports mgmt.mib to noc-domain
        access ReadOnly
        frequency >= 5 minutes;
end domain newdept-domain.
"""
    )
