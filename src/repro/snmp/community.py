"""Community-based access policy, loadable from generated configuration.

SNMP's "protection mechanism that allows flexibility in determining the
accesses a remote domain of administration can make" (paper Section 2.1)
is the community string.  A :class:`CommunityPolicy` maps community names
to grants: a MIB view, an access mode, and — NMSL's addition — a minimum
inter-request interval enforcing the specification's frequency clause.

:meth:`CommunityPolicy.from_snmpd_conf` parses the ``BartsSnmpd`` output
of the NMSL compiler, closing the prescriptive loop: the same text the
Configuration Generator ships is what the agent enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SnmpError
from repro.mib.oid import Oid
from repro.mib.tree import Access, MibTree
from repro.mib.view import MibView


@dataclass
class CommunityGrant:
    """One community's rights."""

    community: str
    view: MibView
    access: Access
    min_interval_s: float = 0.0

    def allows_operation(self, write: bool) -> bool:
        return self.access.allows_write() if write else self.access.allows_read()


@dataclass
class PolicyDecision:
    """The outcome of an access check."""

    allowed: bool
    reason: str = ""
    rate_violation: bool = False


class CommunityPolicy:
    """Per-community grants plus rate enforcement state."""

    def __init__(self, tree: MibTree):
        self._tree = tree
        self._grants: Dict[str, CommunityGrant] = {}
        self._last_seen: Dict[str, float] = {}
        self.rate_violations = 0
        self.denials = 0

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def add_grant(self, grant: CommunityGrant) -> None:
        existing = self._grants.get(grant.community)
        if existing is None:
            self._grants[grant.community] = grant
            return
        # Multiple grants for one community merge: union view, widest
        # access, loosest interval.
        merged_access = existing.access
        if grant.access.allows_write() and not merged_access.allows_write():
            merged_access = (
                Access.READ_WRITE if merged_access.allows_read() else grant.access
            )
        if grant.access.allows_read() and not merged_access.allows_read():
            merged_access = (
                Access.READ_WRITE
                if merged_access.allows_write()
                else grant.access
            )
        self._grants[grant.community] = CommunityGrant(
            community=grant.community,
            view=existing.view.union(grant.view),
            access=merged_access,
            min_interval_s=min(existing.min_interval_s, grant.min_interval_s),
        )

    @classmethod
    def from_snmpd_conf(cls, text: str, tree: MibTree) -> "CommunityPolicy":
        """Parse the ``BartsSnmpd`` configuration format.

        Recognised lines (others ignored)::

            view <name> include <mib-path>
            community <name> <view-name> <Access> min-interval <seconds>
        """
        policy = cls(tree)
        views: Dict[str, List[str]] = {}
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            words = line.split()
            if words[0] == "view" and len(words) == 4 and words[2] == "include":
                views.setdefault(words[1], []).append(words[3])
            elif words[0] == "community":
                if len(words) != 6 or words[4] != "min-interval":
                    raise SnmpError(f"malformed community line: {line!r}")
                _kw, community, view_name, access_text, _mi, seconds = words
                if view_name not in views:
                    raise SnmpError(
                        f"community {community!r} references unknown view "
                        f"{view_name!r}"
                    )
                policy.add_grant(
                    CommunityGrant(
                        community=community,
                        view=MibView(tree, views[view_name]),
                        access=Access.parse(access_text),
                        min_interval_s=float(seconds),
                    )
                )
        return policy

    # ------------------------------------------------------------------
    # Lookup / enforcement.
    # ------------------------------------------------------------------
    def grant_for(self, community: str) -> Optional[CommunityGrant]:
        return self._grants.get(community)

    def communities(self) -> Tuple[str, ...]:
        return tuple(sorted(self._grants))

    def check(
        self,
        community: str,
        oid: Oid,
        write: bool,
        now: Optional[float] = None,
        count_rate: bool = True,
    ) -> PolicyDecision:
        """Authorize one object access, updating rate state when *now* given.

        Rate limiting is per community: requests closer together than the
        grant's ``min_interval_s`` are flagged (the agent answers genErr
        and the violation is counted for the runtime verifier).
        """
        grant = self._grants.get(community)
        if grant is None:
            self.denials += 1
            return PolicyDecision(False, f"unknown community {community!r}")
        if not grant.allows_operation(write):
            self.denials += 1
            operation = "write" if write else "read"
            return PolicyDecision(
                False, f"community {community!r} may not {operation}"
            )
        if not grant.view.covers_oid(oid):
            self.denials += 1
            return PolicyDecision(
                False, f"object {oid} outside community {community!r} view"
            )
        if now is not None and count_rate and grant.min_interval_s > 0:
            last = self._last_seen.get(community)
            self._last_seen[community] = now
            # The epsilon forgives float rounding when queries arrive at
            # exactly the permitted interval.
            epsilon = 1e-6 * max(1.0, grant.min_interval_s)
            if last is not None and (now - last) < grant.min_interval_s - epsilon:
                self.rate_violations += 1
                return PolicyDecision(
                    False,
                    f"community {community!r} exceeded its rate "
                    f"(interval {now - last:.1f}s < {grant.min_interval_s}s)",
                    rate_violation=True,
                )
        return PolicyDecision(True)
