"""The SNMP agent: serves an instance store under a community policy.

An agent handles GetRequest / GetNextRequest / SetRequest messages with
RFC 1067 semantics (all-or-nothing bindings, error-status + error-index),
after the community policy authorizes each object.  Rate violations
answer ``genErr`` so a misbehaving manager is visible on the wire; the
counts feed the runtime verifier.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import obs
from repro.errors import AgentDownError, MibError, SnmpError
from repro.mib.instances import InstanceStore
from repro.mib.tree import MibTree
from repro.snmp.codec import decode_message, encode_message
from repro.snmp.community import CommunityPolicy, PolicyDecision
from repro.snmp.messages import (
    ERROR_STATUS_NAMES,
    ErrorStatus,
    GenericTrap,
    Message,
    Pdu,
    PduType,
    VarBind,
)
from repro.mib.oid import Oid

#: Where this implementation registers itself under enterprises.
NMSL_ENTERPRISE = Oid("1.3.6.1.4.1.42989")

#: Enterprise objects for protocol-based configuration installation
#: (paper Section 5: ship configuration "via the normal network
#: management protocol").  A manager writes the configuration text into
#: nmslConfigText (possibly in several chunks) and then sets
#: nmslConfigApply to 1; the agent replaces its policy atomically.
#: The rollout coordinator's two-phase apply additionally uses:
#: nmslConfigReset (set 1: truncate the staging buffer), nmslConfigDigest
#: (get: SHA-256 hex fingerprint of the staged text, for read-back
#: verification) and nmslConfigGeneration (get: how many configurations
#: this agent has committed since it last booted — the apply trigger
#: advances it; a reboot resets it, which is how a reconciler notices a
#: restart).  nmslConfigRunningDigest (get: fingerprint of the committed
#: configuration store) is what the drift detector polls.
NMSL_CONFIG_TEXT = NMSL_ENTERPRISE + "1.1.0"
NMSL_CONFIG_APPLY = NMSL_ENTERPRISE + "1.2.0"
NMSL_CONFIG_RESET = NMSL_ENTERPRISE + "1.3.0"
NMSL_CONFIG_DIGEST = NMSL_ENTERPRISE + "1.4.0"
NMSL_CONFIG_GENERATION = NMSL_ENTERPRISE + "1.5.0"
NMSL_CONFIG_RUNNING_DIGEST = NMSL_ENTERPRISE + "1.6.0"

#: The bootstrap community through which configuration arrives.
ADMIN_COMMUNITY = "nmsl-admin"


@dataclass
class AgentStats:
    """Counters kept by one agent."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    auth_failures: int = 0
    rate_violations: int = 0
    traps_sent: int = 0


class SnmpAgent:
    """A simulated SNMP agent process."""

    def __init__(
        self,
        name: str,
        store: InstanceStore,
        policy: Optional[CommunityPolicy] = None,
        tree: Optional[MibTree] = None,
        trap_sink=None,
        agent_addr: bytes = b"\x00\x00\x00\x00",
    ):
        if policy is None and tree is None:
            raise SnmpError("agent needs a policy or a tree to build one")
        self.name = name
        self.store = store
        self.policy = policy if policy is not None else CommunityPolicy(tree)
        self.stats = AgentStats()
        self.trap_sink = trap_sink
        self.agent_addr = agent_addr
        self._tree = tree
        self._pending_config: List[bytes] = []
        self.configs_applied = 0
        self.crashed = False
        self._last_good_config: Optional[str] = None

    # ------------------------------------------------------------------
    # Traps (RFC 1067 Section 4.1.6).
    # ------------------------------------------------------------------
    def _send_trap(
        self, generic_trap: GenericTrap, now: Optional[float] = None
    ) -> None:
        if self.trap_sink is None:
            return
        self.stats.traps_sent += 1
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_snmp_traps_total",
                "traps emitted by agents, by generic-trap code",
                agent=self.name,
                trap=generic_trap.name,
            ).inc()
        self.trap_sink(
            Message.trap(
                community="public",
                enterprise=NMSL_ENTERPRISE,
                agent_addr=self.agent_addr,
                generic_trap=generic_trap,
                time_stamp=int((now or 0.0) * 100),  # TimeTicks: 1/100 s
            )
        )

    def emit_cold_start(self, now: Optional[float] = None) -> None:
        """Announce (re)initialisation — sent after configuration install."""
        self._send_trap(GenericTrap.COLD_START, now)

    # ------------------------------------------------------------------
    # Configuration installation (the prescriptive loop).
    # ------------------------------------------------------------------
    def load_config(self, text: str, tree: MibTree) -> None:
        """Replace the agent's policy from generated snmpd.conf text.

        A successfully applied configuration becomes the last-known-good
        snapshot that :meth:`restart` restores after a crash and that a
        rollout coordinator rolls back to.
        """
        self.policy = CommunityPolicy.from_snmpd_conf(text, tree)
        self._last_good_config = text

    @property
    def last_good_config(self) -> Optional[str]:
        """The most recently committed configuration text, if any."""
        return self._last_good_config

    def staged_digest(self) -> bytes:
        """SHA-256 hex fingerprint of the staging buffer (read-back check)."""
        return (
            hashlib.sha256(b"".join(self._pending_config))
            .hexdigest()
            .encode("ascii")
        )

    def running_digest(self) -> bytes:
        """SHA-256 hex fingerprint of the persisted configuration store.

        This is what drift detection polls: it covers the committed
        (last-known-good) text, so out-of-band store corruption shows up
        here even while the in-memory policy keeps serving.
        """
        text = self._last_good_config or ""
        return hashlib.sha256(text.encode("utf-8")).hexdigest().encode("ascii")

    def corrupt_store(self, mutation: str = "\n# bit-rot\n") -> None:
        """Mutate the persisted config store out-of-band (chaos hook).

        Models post-commit bit-rot or a hand edit behind the manager's
        back: the running policy is untouched, but the stored text — the
        one :meth:`restart` would reload and :meth:`running_digest`
        fingerprints — has drifted.
        """
        self._last_good_config = (self._last_good_config or "") + mutation

    # ------------------------------------------------------------------
    # Crash / restart (driven by the chaos-injection harness).
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Stop serving.  In-memory staging state is lost on restart."""
        self.crashed = True

    def restart(self, now: Optional[float] = None) -> None:
        """Come back up: discard staged state, restore last-known-good.

        Mirrors a real agent rereading its on-disk configuration after a
        reboot — the half-staged (uncommitted) text never survives, so a
        crash mid-rollout can only ever leave the element at its previous
        committed configuration.  The generation counter is in-memory on
        real agents, so it regresses to zero here: that regression is the
        signal a reconciler uses to notice the restart.
        """
        self.crashed = False
        self._pending_config = []
        self.configs_applied = 0
        if self._last_good_config is not None and self._tree is not None:
            self.policy = CommunityPolicy.from_snmpd_conf(
                self._last_good_config, self._tree
            )
        self.emit_cold_start(now)

    # ------------------------------------------------------------------
    # Message handling.
    # ------------------------------------------------------------------
    def handle_octets(self, octets: bytes, now: Optional[float] = None) -> bytes:
        """Wire-level entry point: BER in, BER out."""
        if self.crashed:
            raise AgentDownError(f"agent {self.name!r} is down")
        return encode_message(self.handle(decode_message(octets), now))

    def handle(self, message: Message, now: Optional[float] = None) -> Message:
        """Process one request message, returning the response message."""
        if self.crashed:
            raise AgentDownError(f"agent {self.name!r} is down")
        self.stats.requests += 1
        pdu = message.pdu
        response = self._handle_admin(message, now)
        if response is None:
            if pdu.pdu_type == PduType.GET_REQUEST:
                response = self._serve(
                    message, write=False, next_=False, now=now
                )
            elif pdu.pdu_type == PduType.GET_NEXT_REQUEST:
                response = self._serve(
                    message, write=False, next_=True, now=now
                )
            elif pdu.pdu_type == PduType.SET_REQUEST:
                response = self._serve(
                    message, write=True, next_=False, now=now
                )
            else:
                response = pdu.response(error_status=ErrorStatus.GEN_ERR)
        # Single exit: every response — admin or serve, success or error —
        # is accounted here, so no error status can bypass the counters.
        self.stats.responses += 1
        if response.error_status != ErrorStatus.NO_ERROR:
            self.stats.errors += 1
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_snmp_pdus_total",
                "PDUs handled by agents, by request type",
                agent=self.name,
                type=pdu.pdu_type.name,
            ).inc()
            if response.error_status != ErrorStatus.NO_ERROR:
                o.counter(
                    "repro_snmp_errors_total",
                    "agent error responses, by error-status",
                    agent=self.name,
                    status=ERROR_STATUS_NAMES[response.error_status],
                ).inc()
        return Message(message.community, response)

    def _handle_admin(
        self, message: Message, now: Optional[float]
    ) -> Optional[Pdu]:
        """Protocol-based configuration install (enterprise objects).

        Returns a response PDU when the message addressed the NMSL
        enterprise config objects, else None (normal serving continues).
        Only the bootstrap :data:`ADMIN_COMMUNITY` may touch them.
        """
        pdu = message.pdu
        if not pdu.bindings:
            return None
        oids = set(pdu.oids())
        config_oids = {
            NMSL_CONFIG_TEXT,
            NMSL_CONFIG_APPLY,
            NMSL_CONFIG_RESET,
            NMSL_CONFIG_DIGEST,
            NMSL_CONFIG_GENERATION,
            NMSL_CONFIG_RUNNING_DIGEST,
        }
        if not oids & config_oids:
            return None
        if message.community != ADMIN_COMMUNITY:
            self.stats.auth_failures += 1
            self._send_trap(GenericTrap.AUTHENTICATION_FAILURE, now)
            return pdu.response(
                error_status=ErrorStatus.NO_SUCH_NAME, error_index=1
            )
        if pdu.pdu_type == PduType.GET_REQUEST:
            results = []
            for index, binding in enumerate(pdu.bindings, start=1):
                if binding.oid == NMSL_CONFIG_TEXT:
                    results.append(
                        VarBind(binding.oid, b"".join(self._pending_config))
                    )
                elif binding.oid in (NMSL_CONFIG_APPLY, NMSL_CONFIG_GENERATION):
                    results.append(VarBind(binding.oid, self.configs_applied))
                elif binding.oid == NMSL_CONFIG_DIGEST:
                    results.append(VarBind(binding.oid, self.staged_digest()))
                elif binding.oid == NMSL_CONFIG_RUNNING_DIGEST:
                    results.append(VarBind(binding.oid, self.running_digest()))
                elif binding.oid == NMSL_CONFIG_RESET:
                    results.append(
                        VarBind(binding.oid, len(self._pending_config))
                    )
                else:
                    # RFC 1067: error-index names the offending binding.
                    return pdu.response(
                        error_status=ErrorStatus.NO_SUCH_NAME,
                        error_index=index,
                    )
            return pdu.response(bindings=results)
        if pdu.pdu_type != PduType.SET_REQUEST:
            return pdu.response(error_status=ErrorStatus.GEN_ERR)
        for index, binding in enumerate(pdu.bindings, start=1):
            if binding.oid == NMSL_CONFIG_TEXT:
                if not isinstance(binding.value, (bytes, bytearray)):
                    return pdu.response(
                        error_status=ErrorStatus.BAD_VALUE, error_index=index
                    )
                self._pending_config.append(bytes(binding.value))
            elif binding.oid == NMSL_CONFIG_RESET:
                if binding.value != 1:
                    return pdu.response(
                        error_status=ErrorStatus.BAD_VALUE, error_index=index
                    )
                self._pending_config = []
            elif binding.oid in (
                NMSL_CONFIG_DIGEST,
                NMSL_CONFIG_GENERATION,
                NMSL_CONFIG_RUNNING_DIGEST,
            ):
                return pdu.response(
                    error_status=ErrorStatus.READ_ONLY, error_index=index
                )
            elif binding.oid == NMSL_CONFIG_APPLY:
                if binding.value != 1:
                    return pdu.response(
                        error_status=ErrorStatus.BAD_VALUE, error_index=index
                    )
                if not self._pending_config:
                    # Nothing staged: a duplicated or retransmitted apply
                    # trigger must never re-commit an empty configuration.
                    return pdu.response(
                        error_status=ErrorStatus.BAD_VALUE, error_index=index
                    )
                if self._tree is None:
                    return pdu.response(
                        error_status=ErrorStatus.GEN_ERR, error_index=index
                    )
                try:
                    text = b"".join(self._pending_config).decode("utf-8")
                    self.load_config(text, self._tree)
                except (SnmpError, UnicodeDecodeError):
                    return pdu.response(
                        error_status=ErrorStatus.BAD_VALUE, error_index=index
                    )
                self._pending_config = []
                self.configs_applied += 1
                self.emit_cold_start(now)
            else:
                return pdu.response(
                    error_status=ErrorStatus.NO_SUCH_NAME, error_index=index
                )
        return pdu.response(bindings=pdu.bindings)

    def _serve(
        self, message: Message, write: bool, next_: bool, now: Optional[float]
    ) -> Pdu:
        pdu = message.pdu
        if not pdu.bindings:
            return pdu.response(error_status=ErrorStatus.GEN_ERR)
        # Rate/auth check once per message, against the first object.
        decision = self.policy.check(
            message.community, pdu.bindings[0].oid, write, now=now
        )
        if not decision.allowed:
            if decision.rate_violation:
                self.stats.rate_violations += 1
                return pdu.response(error_status=ErrorStatus.GEN_ERR)
            self.stats.auth_failures += 1
            if "unknown community" in decision.reason or "may not" in decision.reason:
                self._send_trap(GenericTrap.AUTHENTICATION_FAILURE, now)
            return pdu.response(
                error_status=ErrorStatus.NO_SUCH_NAME, error_index=1
            )
        results: List[VarBind] = []
        # RFC 1067 Sets are all-or-nothing: "if ... the value of any
        # variable named cannot be altered, then no variables' values are
        # altered."  Remember each applied write so a later failing
        # binding rolls the earlier ones back.
        applied: List[Tuple[Oid, bool, object]] = []

        def undo_writes() -> None:
            for oid, had_old, old_value in reversed(applied):
                if had_old:
                    self.store.bind(oid, old_value, validate=False)
                else:
                    self.store.unbind(oid)

        for index, binding in enumerate(pdu.bindings, start=1):
            if index > 1:
                # Per-object view check for the remaining bindings
                # (without double-charging the rate limiter).
                decision = self.policy.check(
                    message.community, binding.oid, write, now=None
                )
                if not decision.allowed:
                    undo_writes()
                    return pdu.response(
                        error_status=ErrorStatus.NO_SUCH_NAME, error_index=index
                    )
            if write:
                had_old = self.store.contains(binding.oid)
                old_value = self.store.get(binding.oid) if had_old else None
            outcome = self._serve_binding(binding, write, next_)
            if isinstance(outcome, ErrorStatus):
                undo_writes()
                return pdu.response(error_status=outcome, error_index=index)
            if write:
                applied.append((binding.oid, had_old, old_value))
            # Get-next may step outside the community's view: skip forward.
            if next_:
                outcome = self._skip_outside_view(
                    message.community, outcome, write
                )
                if outcome is None:
                    return pdu.response(
                        error_status=ErrorStatus.NO_SUCH_NAME, error_index=index
                    )
            results.append(outcome)
        return pdu.response(bindings=results)

    def _serve_binding(self, binding: VarBind, write: bool, next_: bool):
        if write:
            try:
                self.store.set(binding.oid, binding.value)
            except MibError as exc:
                if "not writable" in str(exc):
                    return ErrorStatus.READ_ONLY
                if "no leaf object" in str(exc) or "no such" in str(exc):
                    return ErrorStatus.NO_SUCH_NAME
                return ErrorStatus.BAD_VALUE
            return VarBind(binding.oid, binding.value)
        if next_:
            found = self.store.get_next(binding.oid)
            if found is None:
                return ErrorStatus.NO_SUCH_NAME
            oid, value = found
            return VarBind(oid, value)
        try:
            value = self.store.get(binding.oid)
        except MibError:
            return ErrorStatus.NO_SUCH_NAME
        return VarBind(binding.oid, value)

    def _skip_outside_view(
        self, community: str, binding: VarBind, write: bool
    ) -> Optional[VarBind]:
        """Advance get-next results past objects outside the view."""
        guard = 0
        current = binding
        while guard < 10_000:
            decision = self.policy.check(community, current.oid, write, now=None)
            if decision.allowed:
                return current
            found = self.store.get_next(current.oid)
            if found is None:
                return None
            current = VarBind(found[0], found[1])
            guard += 1
        return None
