"""BER wire encoding of SNMPv1 messages.

The message syntax follows RFC 1067 exactly in tag structure::

    Message ::= SEQUENCE { version INTEGER, community OCTET STRING,
                           data PDUs }
    PDUs    ::= CHOICE { get-request [0] PDU, get-next-request [1] PDU,
                         get-response [2] PDU, set-request [3] PDU }
    PDU     ::= SEQUENCE { request-id INTEGER, error-status INTEGER,
                           error-index INTEGER,
                           variable-bindings SEQUENCE OF VarBind }
    VarBind ::= SEQUENCE { name OBJECT IDENTIFIER, value ObjectSyntax }

``ObjectSyntax`` here is the CHOICE of the simple and application types
this subset supports.  Python value types select the alternative when
encoding (int -> INTEGER, bytes -> OCTET STRING, None -> NULL, tuple/Oid
-> OBJECT IDENTIFIER).
"""

from __future__ import annotations

from typing import Tuple

from repro.asn1.ber import ber_decode, ber_encode
from repro.asn1.nodes import (
    ChoiceType,
    IntegerType,
    NamedField,
    NullType,
    ObjectIdentifierType,
    OctetStringType,
    SequenceOfType,
    SequenceType,
    TaggedType,
)
from repro.errors import BerError, SnmpError
from repro.mib.oid import Oid
from repro.snmp.messages import (
    ErrorStatus,
    GenericTrap,
    Message,
    Pdu,
    PduType,
    TrapPdu,
    VarBind,
)

_OBJECT_SYNTAX = ChoiceType(
    alternatives=(
        NamedField("number", IntegerType()),
        NamedField("string", OctetStringType()),
        NamedField("object", ObjectIdentifierType()),
        NamedField("empty", NullType()),
        NamedField(
            "address",
            TaggedType(
                tag_class="APPLICATION", tag_number=0, inner=OctetStringType()
            ),
        ),
        NamedField(
            "counter",
            TaggedType(tag_class="APPLICATION", tag_number=1, inner=IntegerType()),
        ),
        NamedField(
            "gauge",
            TaggedType(tag_class="APPLICATION", tag_number=2, inner=IntegerType()),
        ),
        NamedField(
            "ticks",
            TaggedType(tag_class="APPLICATION", tag_number=3, inner=IntegerType()),
        ),
    )
)

_VARBIND = SequenceType(
    fields=(
        NamedField("name", ObjectIdentifierType()),
        NamedField("value", _OBJECT_SYNTAX),
    )
)

_PDU_BODY = SequenceType(
    fields=(
        NamedField("request-id", IntegerType()),
        NamedField("error-status", IntegerType()),
        NamedField("error-index", IntegerType()),
        NamedField("variable-bindings", SequenceOfType(element=_VARBIND)),
    )
)

_TRAP_BODY = SequenceType(
    fields=(
        NamedField("enterprise", ObjectIdentifierType()),
        NamedField(
            "agent-addr",
            TaggedType(
                tag_class="APPLICATION", tag_number=0, inner=OctetStringType()
            ),
        ),
        NamedField("generic-trap", IntegerType()),
        NamedField("specific-trap", IntegerType()),
        NamedField(
            "time-stamp",
            TaggedType(tag_class="APPLICATION", tag_number=3, inner=IntegerType()),
        ),
        NamedField("variable-bindings", SequenceOfType(element=_VARBIND)),
    )
)

_PDUS = ChoiceType(
    alternatives=tuple(
        NamedField(
            pdu_type.name.lower().replace("_", "-"),
            TaggedType(
                tag_class="CONTEXT", tag_number=int(pdu_type), inner=_PDU_BODY
            ),
        )
        for pdu_type in (
            PduType.GET_REQUEST,
            PduType.GET_NEXT_REQUEST,
            PduType.GET_RESPONSE,
            PduType.SET_REQUEST,
        )
    )
    + (
        NamedField(
            "trap",
            TaggedType(
                tag_class="CONTEXT",
                tag_number=int(PduType.TRAP),
                inner=_TRAP_BODY,
            ),
        ),
    )
)

_MESSAGE = SequenceType(
    fields=(
        NamedField("version", IntegerType()),
        NamedField("community", OctetStringType()),
        NamedField("data", _PDUS),
    )
)

_ALTERNATIVE_BY_TYPE = {
    PduType.GET_REQUEST: "get-request",
    PduType.GET_NEXT_REQUEST: "get-next-request",
    PduType.GET_RESPONSE: "get-response",
    PduType.SET_REQUEST: "set-request",
}
_TYPE_BY_ALTERNATIVE = {name: t for t, name in _ALTERNATIVE_BY_TYPE.items()}


def _value_to_choice(value) -> Tuple[str, object]:
    if value is None:
        return ("empty", None)
    if isinstance(value, bool):
        raise SnmpError("booleans are not SNMP values")
    if isinstance(value, int):
        return ("number", value)
    if isinstance(value, (bytes, bytearray)):
        return ("string", bytes(value))
    if isinstance(value, str):
        return ("string", value.encode("utf-8"))
    if isinstance(value, Oid):
        return ("object", value.components)
    if isinstance(value, tuple):
        return ("object", value)
    raise SnmpError(f"cannot encode SNMP value {value!r}")


def _choice_to_value(choice: Tuple[str, object]):
    name, value = choice
    if name == "object":
        return Oid(value)  # type: ignore[arg-type]
    return value


def _bindings_value(bindings) -> list:
    return [
        {
            "name": binding.oid.components,
            "value": _value_to_choice(binding.value),
        }
        for binding in bindings
    ]


def encode_message(message: Message) -> bytes:
    """Encode a message to BER octets."""
    pdu = message.pdu
    if isinstance(pdu, TrapPdu):
        body = {
            "enterprise": pdu.enterprise.components,
            "agent-addr": pdu.agent_addr,
            "generic-trap": int(pdu.generic_trap),
            "specific-trap": pdu.specific_trap,
            "time-stamp": pdu.time_stamp,
            "variable-bindings": _bindings_value(pdu.bindings),
        }
        alternative = "trap"
    else:
        if pdu.pdu_type not in _ALTERNATIVE_BY_TYPE:
            raise SnmpError(f"cannot encode PDU type {pdu.pdu_type!r}")
        body = {
            "request-id": pdu.request_id,
            "error-status": int(pdu.error_status),
            "error-index": pdu.error_index,
            "variable-bindings": _bindings_value(pdu.bindings),
        }
        alternative = _ALTERNATIVE_BY_TYPE[pdu.pdu_type]
    value = {
        "version": message.version,
        "community": message.community.encode("utf-8"),
        "data": (alternative, body),
    }
    return ber_encode(value, _MESSAGE)


def decode_message(octets: bytes) -> Message:
    """Decode BER octets into a message."""
    try:
        raw = ber_decode(octets, _MESSAGE)
    except BerError as exc:
        raise SnmpError(f"malformed SNMP message: {exc}") from exc
    alternative, body = raw["data"]
    bindings = tuple(
        VarBind(Oid(item["name"]), _choice_to_value(item["value"]))
        for item in body["variable-bindings"]
    )
    if alternative == "trap":
        pdu: object = TrapPdu(
            enterprise=Oid(body["enterprise"]),
            agent_addr=body["agent-addr"],
            generic_trap=GenericTrap(body["generic-trap"]),
            specific_trap=body["specific-trap"],
            time_stamp=body["time-stamp"],
            bindings=bindings,
        )
    else:
        pdu = Pdu(
            pdu_type=_TYPE_BY_ALTERNATIVE[alternative],
            request_id=body["request-id"],
            error_status=ErrorStatus(body["error-status"]),
            error_index=body["error-index"],
            bindings=bindings,
        )
    return Message(
        community=raw["community"].decode("utf-8"),
        pdu=pdu,
        version=raw["version"],
    )
